//! The device-level VI model: interfaces, routing processes, firewall zones.

use super::acl::Acl;
use super::nat::NatRule;
use super::policy::{CommunityList, PrefixList, RouteMap};
use batnet_net::{Asn, Ip, Prefix};
use std::collections::BTreeMap;

/// Where a VI structure came from in the original configuration text.
///
/// Dialect parsers record the 1-based line number of the defining
/// statement at construction time and grow `end_line` as the block's
/// body lines arrive, so a span covers the whole structure (an ACL with
/// its lines, a route-map clause with its match/set statements, a BGP
/// neighbor stanza across its statements). The `file` component is
/// stamped once per device by [`Device::stamp_source_file`] (the
/// detect-layer entry point does this with the device name). A default
/// span (`line == 0`) means "location unknown" — hand-built models and
/// documented-default structures carry it. Single-line structures keep
/// `end_line == line`, and the reporting layers (lint JSON/SARIF) print
/// only `line`, so their output is unchanged by the range extension.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Default)]
pub struct SourceSpan {
    /// Source artifact the structure was parsed from (device/file stem).
    pub file: String,
    /// 1-based line number of the defining statement; 0 = unknown.
    pub line: u32,
    /// 1-based last line of the structure's block; equals `line` for
    /// single-line structures, 0 = unknown.
    pub end_line: u32,
}

impl SourceSpan {
    /// A single-line span at `line` with the file left for later stamping.
    pub fn at(line: usize) -> SourceSpan {
        SourceSpan {
            file: String::new(),
            line: line as u32,
            end_line: line as u32,
        }
    }

    /// A span covering `start..=end` (inclusive line range).
    pub fn range(start: usize, end: usize) -> SourceSpan {
        SourceSpan {
            file: String::new(),
            line: start as u32,
            end_line: end.max(start) as u32,
        }
    }

    /// Grows the span to include `line` (no-op for unknown spans, so a
    /// documented-default structure never acquires a phantom location).
    pub fn extend_to(&mut self, line: usize) {
        if self.is_known() {
            self.end_line = self.end_line.max(line as u32);
        }
    }

    /// Is this a real location (as opposed to the unknown default)?
    pub fn is_known(&self) -> bool {
        self.line != 0
    }

    /// The last line of the span (for robustness, never before `line`).
    pub fn end(&self) -> u32 {
        self.end_line.max(self.line)
    }
}

/// A layer-3 interface.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Interface {
    /// Interface name as configured (`Ethernet1`, `ge-0/0/0`, …).
    pub name: String,
    /// Primary IPv4 address and prefix length, if addressed.
    pub address: Option<(Ip, u8)>,
    /// Additional addresses (secondaries, VIPs).
    pub secondary_addresses: Vec<(Ip, u8)>,
    /// Administratively up? (`shutdown` clears this.)
    pub enabled: bool,
    /// Name of the inbound ACL, if any.
    pub acl_in: Option<String>,
    /// Name of the outbound ACL, if any.
    pub acl_out: Option<String>,
    /// OSPF interface cost override.
    pub ospf_cost: Option<u32>,
    /// OSPF area, if the interface runs OSPF.
    pub ospf_area: Option<u32>,
    /// OSPF passive: advertise the subnet but form no adjacency.
    pub ospf_passive: bool,
    /// Firewall zone membership.
    pub zone: Option<String>,
    /// Interface MTU (default 1500).
    pub mtu: u32,
    /// Free-text description.
    pub description: Option<String>,
}

impl Interface {
    /// A fresh, enabled, unaddressed interface.
    pub fn new(name: impl Into<String>) -> Interface {
        Interface {
            name: name.into(),
            address: None,
            secondary_addresses: Vec::new(),
            enabled: true,
            acl_in: None,
            acl_out: None,
            ospf_cost: None,
            ospf_area: None,
            ospf_passive: false,
            zone: None,
            mtu: 1500,
            description: None,
        }
    }

    /// The connected prefix implied by the primary address.
    pub fn connected_prefix(&self) -> Option<Prefix> {
        self.address.map(|(ip, len)| Prefix::new(ip, len))
    }

    /// The interface's own IP, if addressed.
    pub fn ip(&self) -> Option<Ip> {
        self.address.map(|(ip, _)| ip)
    }

    /// Is the interface up and addressed (i.e. participates in routing)?
    pub fn is_active(&self) -> bool {
        self.enabled && self.address.is_some()
    }
}

/// Next hop of a static route.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum NextHop {
    /// Forward towards this gateway address (recursively resolved).
    Ip(Ip),
    /// Discard (null interface) — used for aggregates and blackholes.
    Discard,
}

/// A configured static route.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StaticRoute {
    /// Destination prefix.
    pub prefix: Prefix,
    /// Where matching packets go.
    pub next_hop: NextHop,
    /// Administrative distance (default 1).
    pub admin_distance: u8,
}

/// The OSPF process of a device (single process, VRF "default" — the model
/// the generated networks exercise; multi-VRF is future work recorded in
/// DESIGN.md).
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct OspfProcess {
    /// Router id; defaults to the highest interface address when absent.
    pub router_id: Option<Ip>,
    /// Reference bandwidth for auto-cost, in Mbps (default 100_000).
    pub reference_bandwidth_mbps: u32,
    /// Redistribute connected routes into OSPF.
    pub redistribute_connected: bool,
    /// Redistribute static routes into OSPF.
    pub redistribute_static: bool,
    /// Default cost for interfaces without an explicit cost.
    pub default_cost: u32,
}

/// One configured BGP neighbor.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BgpNeighbor {
    /// Peer address the session is configured towards.
    pub peer_ip: Ip,
    /// Peer AS number.
    pub remote_as: Asn,
    /// Import routing policy (route-map applied `in`). `None` means the
    /// vendor default: accept everything.
    pub import_policy: Option<String>,
    /// Export routing policy (route-map applied `out`). `None` means the
    /// vendor default: advertise everything in the BGP RIB.
    pub export_policy: Option<String>,
    /// Rewrite next-hop to self on iBGP export (reflectors/borders).
    pub next_hop_self: bool,
    /// Propagate communities to this peer.
    pub send_community: bool,
    /// Free-text description.
    pub description: Option<String>,
    /// Where the neighbor block was defined.
    pub src: SourceSpan,
}

impl BgpNeighbor {
    /// A neighbor with vendor-default policies.
    pub fn new(peer_ip: Ip, remote_as: Asn) -> BgpNeighbor {
        BgpNeighbor {
            peer_ip,
            remote_as,
            import_policy: None,
            export_policy: None,
            next_hop_self: false,
            send_community: true,
            description: None,
            src: SourceSpan::default(),
        }
    }
}

/// The BGP process of a device.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BgpProcess {
    /// Local AS number.
    pub asn: Asn,
    /// Router id; defaults like OSPF's.
    pub router_id: Option<Ip>,
    /// Configured neighbors.
    pub neighbors: Vec<BgpNeighbor>,
    /// `network` statements: prefixes originated if present in the main RIB.
    pub networks: Vec<Prefix>,
    /// Redistribute connected routes into BGP.
    pub redistribute_connected: bool,
    /// Redistribute static routes into BGP.
    pub redistribute_static: bool,
    /// Redistribute OSPF routes into BGP.
    pub redistribute_ospf: bool,
}

impl BgpProcess {
    /// A BGP process with no neighbors yet.
    pub fn new(asn: Asn) -> BgpProcess {
        BgpProcess {
            asn,
            router_id: None,
            neighbors: Vec::new(),
            networks: Vec::new(),
            redistribute_connected: false,
            redistribute_static: false,
            redistribute_ospf: false,
        }
    }
}

/// A firewall zone: a named set of interfaces (§4.2.3, zone-based
/// firewalls).
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct Zone {
    /// Zone name.
    pub name: String,
    /// Member interface names.
    pub interfaces: Vec<String>,
}

/// An inter-zone policy: traffic entering via `from_zone` and leaving via
/// `to_zone` is filtered by `acl`. Absent policies fall back to the
/// device-wide default ([`Device::zone_default_permit`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ZonePolicy {
    /// Ingress zone name.
    pub from_zone: String,
    /// Egress zone name.
    pub to_zone: String,
    /// Filter applied to matching traffic.
    pub acl: Acl,
}

/// The vendor-independent model of one device.
///
/// `BTreeMap`s keep iteration deterministic, which the convergence and
/// reporting layers rely on (§4.1.2: stable results across runs).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Device {
    /// Device (host)name; unique within a snapshot.
    pub name: String,
    /// Interfaces by name.
    pub interfaces: BTreeMap<String, Interface>,
    /// Static routes.
    pub static_routes: Vec<StaticRoute>,
    /// OSPF process, if configured.
    pub ospf: Option<OspfProcess>,
    /// BGP process, if configured.
    pub bgp: Option<BgpProcess>,
    /// Route maps by name.
    pub route_maps: BTreeMap<String, RouteMap>,
    /// Prefix lists by name.
    pub prefix_lists: BTreeMap<String, PrefixList>,
    /// Community lists by name.
    pub community_lists: BTreeMap<String, CommunityList>,
    /// ACLs by name.
    pub acls: BTreeMap<String, Acl>,
    /// NAT rules in evaluation order.
    pub nat_rules: Vec<NatRule>,
    /// Firewall zones by name.
    pub zones: BTreeMap<String, Zone>,
    /// Inter-zone policies.
    pub zone_policies: Vec<ZonePolicy>,
    /// When no zone policy matches a (from, to) zone pair: permit?
    /// Vendor-default deny, as on real zone firewalls.
    pub zone_default_permit: bool,
    /// Does this device track firewall sessions (stateful)? Set for zone
    /// firewalls; enables return-traffic fast path in both engines.
    pub stateful: bool,
    /// Configured NTP servers (management-plane consistency checks).
    pub ntp_servers: Vec<Ip>,
    /// Configured DNS servers.
    pub dns_servers: Vec<Ip>,
    /// Lint checks disabled in this config via the inline
    /// `batnet-lint-disable <check>` comment directive (sorted, deduped).
    pub lint_suppressions: Vec<String>,
}

impl Device {
    /// An empty device model.
    pub fn new(name: impl Into<String>) -> Device {
        Device {
            name: name.into(),
            interfaces: BTreeMap::new(),
            static_routes: Vec::new(),
            ospf: None,
            bgp: None,
            route_maps: BTreeMap::new(),
            prefix_lists: BTreeMap::new(),
            community_lists: BTreeMap::new(),
            acls: BTreeMap::new(),
            nat_rules: Vec::new(),
            zones: BTreeMap::new(),
            zone_policies: Vec::new(),
            zone_default_permit: false,
            stateful: false,
            ntp_servers: Vec::new(),
            dns_servers: Vec::new(),
            lint_suppressions: Vec::new(),
        }
    }

    /// Stamps `file` onto every structure source span whose line is
    /// known. Called once after dialect parsing, when the caller knows
    /// which artifact the text came from.
    pub fn stamp_source_file(&mut self, file: &str) {
        let stamp = |src: &mut SourceSpan| {
            if src.is_known() && src.file.is_empty() {
                src.file = file.to_string();
            }
        };
        for acl in self.acls.values_mut() {
            stamp(&mut acl.src);
        }
        for rm in self.route_maps.values_mut() {
            stamp(&mut rm.src);
        }
        if let Some(bgp) = &mut self.bgp {
            for nb in &mut bgp.neighbors {
                stamp(&mut nb.src);
            }
        }
        for zp in &mut self.zone_policies {
            stamp(&mut zp.acl.src);
        }
    }

    /// The effective router id: configured, else highest interface address,
    /// else 0.0.0.0. Shared by OSPF and BGP per vendor convention.
    pub fn router_id(&self) -> Ip {
        if let Some(bgp) = &self.bgp {
            if let Some(id) = bgp.router_id {
                return id;
            }
        }
        if let Some(ospf) = &self.ospf {
            if let Some(id) = ospf.router_id {
                return id;
            }
        }
        self.interfaces
            .values()
            .filter_map(Interface::ip)
            .max()
            .unwrap_or(Ip::ZERO)
    }

    /// All active (up + addressed) interfaces, deterministically ordered.
    pub fn active_interfaces(&self) -> impl Iterator<Item = &Interface> {
        self.interfaces.values().filter(|i| i.is_active())
    }

    /// Looks up the zone an interface belongs to, via either the
    /// interface's own `zone` attribute or zone membership lists.
    pub fn zone_of_interface(&self, ifname: &str) -> Option<&str> {
        if let Some(iface) = self.interfaces.get(ifname) {
            if let Some(z) = &iface.zone {
                return Some(z.as_str());
            }
        }
        self.zones
            .values()
            .find(|z| z.interfaces.iter().any(|i| i == ifname))
            .map(|z| z.name.as_str())
    }

    /// Which of this device's active interfaces owns `ip` (exact interface
    /// address match)? Used for "does this packet terminate here".
    pub fn interface_owning_ip(&self, ip: Ip) -> Option<&Interface> {
        self.active_interfaces().find(|i| {
            i.ip() == Some(ip) || i.secondary_addresses.iter().any(|&(a, _)| a == ip)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ip(s: &str) -> Ip {
        s.parse().unwrap()
    }

    #[test]
    fn source_span_ranges() {
        let single = SourceSpan::at(7);
        assert_eq!((single.line, single.end()), (7, 7));
        assert!(single.is_known());
        let mut block = SourceSpan::range(10, 14);
        assert_eq!((block.line, block.end()), (10, 14));
        block.extend_to(12); // no shrink
        assert_eq!(block.end(), 14);
        block.extend_to(20);
        assert_eq!(block.end(), 20);
        // Unknown spans never acquire a phantom end.
        let mut unknown = SourceSpan::default();
        unknown.extend_to(5);
        assert!(!unknown.is_known());
        assert_eq!(unknown.end(), 0);
        // Degenerate range clamps end to start.
        assert_eq!(SourceSpan::range(9, 3).end(), 9);
    }

    #[test]
    fn router_id_precedence() {
        let mut d = Device::new("r1");
        let mut i1 = Interface::new("e1");
        i1.address = Some((ip("10.0.0.5"), 24));
        let mut i2 = Interface::new("e2");
        i2.address = Some((ip("192.168.0.1"), 30));
        d.interfaces.insert("e1".into(), i1);
        d.interfaces.insert("e2".into(), i2);
        // No processes: highest interface IP.
        assert_eq!(d.router_id(), ip("192.168.0.1"));
        // OSPF-configured id wins over interfaces.
        d.ospf = Some(OspfProcess {
            router_id: Some(ip("1.1.1.1")),
            ..OspfProcess::default()
        });
        assert_eq!(d.router_id(), ip("1.1.1.1"));
        // BGP-configured id wins over OSPF's.
        let mut bgp = BgpProcess::new(Asn(65001));
        bgp.router_id = Some(ip("2.2.2.2"));
        d.bgp = Some(bgp);
        assert_eq!(d.router_id(), ip("2.2.2.2"));
    }

    #[test]
    fn shutdown_interface_not_active() {
        let mut i = Interface::new("e1");
        i.address = Some((ip("10.0.0.1"), 24));
        assert!(i.is_active());
        i.enabled = false;
        assert!(!i.is_active());
        let unaddressed = Interface::new("e2");
        assert!(!unaddressed.is_active());
    }

    #[test]
    fn connected_prefix_masks_host_bits() {
        let mut i = Interface::new("e1");
        i.address = Some((ip("10.1.2.3"), 24));
        assert_eq!(i.connected_prefix().unwrap().to_string(), "10.1.2.0/24");
    }

    #[test]
    fn zone_lookup_both_paths() {
        let mut d = Device::new("fw");
        let mut i1 = Interface::new("e1");
        i1.zone = Some("trust".into());
        d.interfaces.insert("e1".into(), i1);
        d.interfaces.insert("e2".into(), Interface::new("e2"));
        d.zones.insert(
            "untrust".into(),
            Zone {
                name: "untrust".into(),
                interfaces: vec!["e2".into()],
            },
        );
        assert_eq!(d.zone_of_interface("e1"), Some("trust"));
        assert_eq!(d.zone_of_interface("e2"), Some("untrust"));
        assert_eq!(d.zone_of_interface("e3"), None);
    }

    #[test]
    fn interface_owning_ip_checks_secondaries() {
        let mut d = Device::new("r1");
        let mut i1 = Interface::new("e1");
        i1.address = Some((ip("10.0.0.1"), 24));
        i1.secondary_addresses.push((ip("10.0.0.99"), 24));
        d.interfaces.insert("e1".into(), i1);
        assert!(d.interface_owning_ip(ip("10.0.0.1")).is_some());
        assert!(d.interface_owning_ip(ip("10.0.0.99")).is_some());
        assert!(d.interface_owning_ip(ip("10.0.0.2")).is_none());
    }
}
