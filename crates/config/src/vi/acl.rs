//! Access control lists in the VI model.
//!
//! An ACL is an ordered list of permit/deny lines, each matching a
//! [`HeaderSpace`]. First match wins; the implicit default at the end is
//! deny (as on every vendor we model). The concrete evaluator here is one
//! half of the differential-testing pair — the symbolic BDD compilation
//! lives in `batnet-dataplane` and is deliberately a separate code path
//! (§4.3.2).

use super::device::SourceSpan;
use batnet_net::{Flow, HeaderSpace};
use std::fmt;

/// Permit or deny.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum AclAction {
    /// Allow matching packets.
    Permit,
    /// Drop matching packets.
    Deny,
}

impl fmt::Display for AclAction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AclAction::Permit => write!(f, "permit"),
            AclAction::Deny => write!(f, "deny"),
        }
    }
}

/// One line of an ACL.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct AclLine {
    /// Sequence number (ordering key; display only — the `lines` vector
    /// order is authoritative).
    pub seq: u32,
    /// Permit or deny.
    pub action: AclAction,
    /// The packets this line matches.
    pub space: HeaderSpace,
    /// The original configuration text, kept for violation annotation
    /// (§4.4.3: *"we annotate example packets with … the routing and ACL
    /// entries that they hit along their path"*).
    pub text: String,
}

/// An ordered ACL with implicit trailing deny.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Acl {
    /// ACL name.
    pub name: String,
    /// Lines in match order.
    pub lines: Vec<AclLine>,
    /// Where the ACL was defined in the source config.
    pub src: SourceSpan,
}

impl Acl {
    /// An empty ACL (denies everything, via the implicit default).
    pub fn new(name: impl Into<String>) -> Acl {
        Acl {
            name: name.into(),
            lines: Vec::new(),
            src: SourceSpan::default(),
        }
    }

    /// An ACL that permits everything (used as the documented default when
    /// a referenced ACL is undefined on permissive platforms).
    pub fn permit_any(name: impl Into<String>) -> Acl {
        Acl {
            name: name.into(),
            lines: vec![AclLine {
                seq: 10,
                action: AclAction::Permit,
                space: HeaderSpace::any(),
                text: "permit ip any any".into(),
            }],
            src: SourceSpan::default(),
        }
    }

    /// First-match evaluation. Returns the matching line index too, so
    /// callers can annotate results; `None` means the implicit deny fired.
    pub fn check(&self, flow: &Flow) -> (AclAction, Option<usize>) {
        for (i, line) in self.lines.iter().enumerate() {
            if line.space.matches(flow) {
                return (line.action, Some(i));
            }
        }
        (AclAction::Deny, None)
    }

    /// Does the ACL permit this flow?
    pub fn permits(&self, flow: &Flow) -> bool {
        self.check(flow).0 == AclAction::Permit
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use batnet_net::{Ip, IpProtocol};

    fn web_acl() -> Acl {
        Acl {
            name: "WEB".into(),
            lines: vec![
                AclLine {
                    seq: 10,
                    action: AclAction::Deny,
                    space: HeaderSpace::any()
                        .protocol(IpProtocol::Tcp)
                        .dst_port(22),
                    text: "deny tcp any any eq 22".into(),
                },
                AclLine {
                    seq: 20,
                    action: AclAction::Permit,
                    space: HeaderSpace::any().protocol(IpProtocol::Tcp),
                    text: "permit tcp any any".into(),
                },
            ],
            src: SourceSpan::default(),
        }
    }

    #[test]
    fn first_match_wins() {
        let acl = web_acl();
        let ssh = Flow::tcp(Ip::new(1, 1, 1, 1), 1000, Ip::new(2, 2, 2, 2), 22);
        let http = Flow::tcp(Ip::new(1, 1, 1, 1), 1000, Ip::new(2, 2, 2, 2), 80);
        assert_eq!(acl.check(&ssh), (AclAction::Deny, Some(0)));
        assert_eq!(acl.check(&http), (AclAction::Permit, Some(1)));
        assert!(!acl.permits(&ssh));
        assert!(acl.permits(&http));
    }

    #[test]
    fn implicit_deny() {
        let acl = web_acl();
        let udp = Flow::udp(Ip::new(1, 1, 1, 1), 1000, Ip::new(2, 2, 2, 2), 53);
        assert_eq!(acl.check(&udp), (AclAction::Deny, None));
        let empty = Acl::new("EMPTY");
        assert_eq!(empty.check(&udp), (AclAction::Deny, None));
    }

    #[test]
    fn permit_any_permits() {
        let acl = Acl::permit_any("DEFAULT");
        let udp = Flow::udp(Ip::new(9, 9, 9, 9), 1, Ip::new(8, 8, 8, 8), 53);
        assert!(acl.permits(&udp));
        assert!(acl.permits(&Flow::icmp_echo(Ip::ZERO, Ip::MAX)));
    }
}
