//! # batnet-config — Stage 1: configuration parsing and modeling
//!
//! The first stage of the pipeline (§2 of the paper): translate the
//! configuration text of every router into a normalized, vendor-independent
//! representation. The paper's original Batfish emitted Datalog facts here;
//! the evolved Batfish — and this crate — produces a typed in-memory data
//! structure instead (Lesson 1: *"Stage 1 still parses configuration text
//! into a vendor-intermediate format, but it now uses a [typed] data
//! structure rather than Datalog facts"*).
//!
//! Three dialect frontends stand in for the many vendor languages real
//! Batfish supports (see DESIGN.md §1 for the substitution argument):
//!
//! * [`ios`] — a Cisco-IOS-flavoured block dialect (`interface …` sections,
//!   `router bgp …`, numbered ACLs and route-maps);
//! * [`junos`] — a Juniper-flavoured `set`-path dialect;
//! * [`flat`] — a flat key=value dialect, standing in for config formats
//!   that are already structured (SONiC, cloud exports).
//!
//! Each frontend parses to its own AST and converts to the shared
//! vendor-independent model in [`vi`]. Parsing is total: unrecognized lines
//! become [`Diagnostic`]s rather than hard errors, because real-world
//! configurations always contain statements outside any tool's model
//! (Lesson 3), and partial models still find real errors.

pub mod detect;
pub mod diag;
pub mod flat;
pub mod ios;
pub mod junos;
pub mod suppress;
pub mod topology;
pub mod vi;

pub use detect::{parse_device, Dialect};
pub use diag::{Diagnostic, Severity};
pub use suppress::scan_suppressions;
pub use topology::{InterfaceRef, Topology};
