//! Dialect detection and the single-entry parse API.

use crate::diag::Diagnostics;
use crate::vi::Device;
use crate::{flat, ios, junos};
use std::fmt;

/// The configuration dialects batnet understands.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Dialect {
    /// Cisco-IOS-flavoured block dialect.
    Ios,
    /// Juniper-flavoured `set`-path dialect.
    Junos,
    /// Flat key=value dialect.
    Flat,
}

impl fmt::Display for Dialect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Dialect::Ios => write!(f, "ios"),
            Dialect::Junos => write!(f, "junos"),
            Dialect::Flat => write!(f, "flat"),
        }
    }
}

impl Dialect {
    /// Guesses the dialect from content. Real Batfish sniffs configs the
    /// same way (configs arrive as bare text files with no metadata).
    ///
    /// Heuristic: `set `-dominated files are junos; files opening with
    /// `device ` or containing `key=value` interface lines are flat;
    /// everything else is ios (the most forgiving frontend).
    pub fn detect(text: &str) -> Dialect {
        let mut set_lines = 0usize;
        let mut total = 0usize;
        for line in text.lines() {
            let t = line.trim();
            if t.is_empty() || t.starts_with('#') || t.starts_with('!') {
                continue;
            }
            total += 1;
            if t.starts_with("set ") {
                set_lines += 1;
            }
            if total == 1 && (t.starts_with("device ") || t == "device") {
                return Dialect::Flat;
            }
        }
        if total > 0 && set_lines * 2 > total {
            return Dialect::Junos;
        }
        // `interface NAME key=value` marks the flat dialect.
        for line in text.lines() {
            let t = line.trim();
            if t.starts_with("interface ") && t.contains("ip=") {
                return Dialect::Flat;
            }
        }
        Dialect::Ios
    }

    /// Parses `text` with this dialect's frontend.
    pub fn parse(self, name: &str, text: &str) -> (Device, Diagnostics) {
        match self {
            Dialect::Ios => ios::parse(name, text),
            Dialect::Junos => junos::parse(name, text),
            Dialect::Flat => flat::parse(name, text),
        }
    }
}

/// Parses a device config, auto-detecting the dialect. `name` is the
/// fallback hostname (usually the file name) if the config does not set
/// one.
///
/// Parse coverage is recorded per dialect in the observability registry
/// (`parse.devices.<dialect>`, `parse.lines.total.<dialect>`,
/// `parse.lines.missed.<dialect>`, and the `parse.coverage.permille`
/// histogram) — the §4.1 "red flag" surface: a dialect whose coverage
/// sags is a dialect whose model silently thinned out.
pub fn parse_device(name: &str, text: &str) -> (Device, Diagnostics) {
    let dialect = Dialect::detect(text);
    let (mut device, diags) = dialect.parse(name, text);
    // Source locations recorded by the dialect frontend get the artifact
    // name; lint findings carry it as their `file`.
    device.stamp_source_file(name);
    let device = device;
    let meaningful = text
        .lines()
        .filter(|l| {
            let t = l.trim();
            !t.is_empty() && !t.starts_with('!') && !t.starts_with('#')
        })
        .count();
    let missed = diags.count(crate::diag::Severity::UnrecognizedLine)
        + diags.count(crate::diag::Severity::ParseError);
    batnet_obs::counter_add(&format!("parse.devices.{dialect}"), 1);
    batnet_obs::counter_add(&format!("parse.lines.total.{dialect}"), meaningful as u64);
    batnet_obs::counter_add(&format!("parse.lines.missed.{dialect}"), missed as u64);
    batnet_obs::observe(
        "parse.coverage.permille",
        (diags.coverage(meaningful).max(0.0) * 1000.0) as u64,
    );
    for severity in [
        crate::diag::Severity::Info,
        crate::diag::Severity::UnrecognizedLine,
        crate::diag::Severity::UndefinedReference,
        crate::diag::Severity::ParseError,
    ] {
        let n = diags.count(severity);
        if n > 0 {
            batnet_obs::counter_add(&format!("parse.diag.{severity}"), n as u64);
        }
    }
    (device, diags)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detects_junos() {
        let text = "set system host-name j1\nset interfaces ge-0/0/0 unit 0 family inet address 1.1.1.1/24\n";
        assert_eq!(Dialect::detect(text), Dialect::Junos);
        let (d, _) = parse_device("x", text);
        assert_eq!(d.name, "j1");
    }

    #[test]
    fn detects_flat() {
        let text = "device f1\ninterface eth0 ip=10.0.0.1/24\n";
        assert_eq!(Dialect::detect(text), Dialect::Flat);
        let text2 = "# comment\ninterface eth0 ip=10.0.0.1/24\n";
        assert_eq!(Dialect::detect(text2), Dialect::Flat);
    }

    #[test]
    fn detects_ios() {
        let text = "hostname r1\ninterface Ethernet1\n ip address 10.0.0.1/24\n";
        assert_eq!(Dialect::detect(text), Dialect::Ios);
        let (d, _) = parse_device("x", text);
        assert_eq!(d.name, "r1");
    }

    #[test]
    fn fallback_name_used_when_unset() {
        let (d, _) = parse_device("fallback", "interface Ethernet1\n ip address 1.2.3.4/24\n");
        assert_eq!(d.name, "fallback");
    }

    #[test]
    fn empty_config_is_ios_and_empty() {
        assert_eq!(Dialect::detect(""), Dialect::Ios);
        let (d, diags) = parse_device("empty", "");
        assert!(d.interfaces.is_empty());
        assert!(diags.items().is_empty());
    }
}
