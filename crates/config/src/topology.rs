//! Layer-3 topology inference from interface addressing.
//!
//! Batfish infers which interfaces are adjacent from the configurations
//! alone: two active interfaces whose addresses fall in the same subnet are
//! assumed to share a link. (Real Batfish also accepts explicit layer-1
//! topology files; address-based inference is its default and is what the
//! generated networks rely on.) The inferred [`Topology`] drives OSPF and
//! BGP adjacency, the dataflow graph's inter-device edges, and the
//! host-facing-interface heuristics of §4.4.2.

use crate::vi::Device;
use batnet_net::Prefix;
use std::collections::BTreeMap;
use std::fmt;

/// A (device, interface) pair.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct InterfaceRef {
    /// Device name.
    pub device: String,
    /// Interface name.
    pub interface: String,
}

impl InterfaceRef {
    /// Convenience constructor.
    pub fn new(device: impl Into<String>, interface: impl Into<String>) -> InterfaceRef {
        InterfaceRef {
            device: device.into(),
            interface: interface.into(),
        }
    }
}

impl fmt::Display for InterfaceRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]", self.device, self.interface)
    }
}

/// The inferred layer-3 topology.
#[derive(Clone, Debug, Default)]
pub struct Topology {
    /// Point-to-point-or-LAN edges: every unordered pair of interfaces on a
    /// shared subnet, stored in both directions for O(1) neighbor lookup.
    neighbors: BTreeMap<InterfaceRef, Vec<InterfaceRef>>,
    /// Number of undirected edges.
    edge_count: usize,
}

impl Topology {
    /// Infers the topology from interface addressing: active interfaces
    /// sharing the same connected prefix are adjacent.
    ///
    /// `/32`s never form links, and an interface is never its own
    /// neighbor. Interfaces whose subnets contain no other interface are
    /// *edge interfaces* — candidates for the host-facing heuristic.
    pub fn infer(devices: &[Device]) -> Topology {
        // Group active interfaces by connected prefix.
        let mut by_prefix: BTreeMap<Prefix, Vec<InterfaceRef>> = BTreeMap::new();
        for d in devices {
            for i in d.active_interfaces() {
                if let Some(p) = i.connected_prefix() {
                    if p.len() < 32 {
                        by_prefix
                            .entry(p)
                            .or_default()
                            .push(InterfaceRef::new(&d.name, &i.name));
                    }
                }
            }
        }
        let mut topo = Topology::default();
        for refs in by_prefix.values() {
            for a in refs {
                for b in refs {
                    if a != b {
                        topo.neighbors.entry(a.clone()).or_default().push(b.clone());
                    }
                }
            }
            let n = refs.len();
            topo.edge_count += n * n.saturating_sub(1) / 2;
        }
        topo
    }

    /// Interfaces adjacent to `iface` (same subnet, other device or same
    /// device — same-device adjacency would indicate a duplicate-subnet
    /// misconfiguration that the lint layer flags).
    pub fn neighbors_of(&self, iface: &InterfaceRef) -> &[InterfaceRef] {
        self.neighbors.get(iface).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Does this interface have any L3 neighbor? Interfaces without one
    /// face hosts or the outside world (§4.4.2's scoping heuristic).
    pub fn has_neighbor(&self, iface: &InterfaceRef) -> bool {
        !self.neighbors_of(iface).is_empty()
    }

    /// Number of undirected inferred edges.
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// All interfaces that appear in at least one edge.
    pub fn connected_interfaces(&self) -> impl Iterator<Item = &InterfaceRef> {
        self.neighbors.keys()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vi::Interface;
    use batnet_net::Ip;

    fn device(name: &str, ifaces: &[(&str, &str, u8)]) -> Device {
        let mut d = Device::new(name);
        for (iname, ip, len) in ifaces {
            let mut i = Interface::new(*iname);
            i.address = Some((ip.parse::<Ip>().unwrap(), *len));
            d.interfaces.insert(iname.to_string(), i);
        }
        d
    }

    #[test]
    fn point_to_point_link() {
        let r1 = device("r1", &[("e1", "10.0.0.1", 31)]);
        let r2 = device("r2", &[("e1", "10.0.0.0", 31)]);
        let topo = Topology::infer(&[r1, r2]);
        assert_eq!(topo.edge_count(), 1);
        let n = topo.neighbors_of(&InterfaceRef::new("r1", "e1"));
        assert_eq!(n, &[InterfaceRef::new("r2", "e1")]);
    }

    #[test]
    fn lan_segment_full_mesh() {
        let r1 = device("r1", &[("e1", "10.0.0.1", 24)]);
        let r2 = device("r2", &[("e1", "10.0.0.2", 24)]);
        let r3 = device("r3", &[("e1", "10.0.0.3", 24)]);
        let topo = Topology::infer(&[r1, r2, r3]);
        assert_eq!(topo.edge_count(), 3);
        assert_eq!(topo.neighbors_of(&InterfaceRef::new("r1", "e1")).len(), 2);
    }

    #[test]
    fn different_subnets_no_link() {
        let r1 = device("r1", &[("e1", "10.0.0.1", 24)]);
        let r2 = device("r2", &[("e1", "10.0.1.1", 24)]);
        let topo = Topology::infer(&[r1, r2]);
        assert_eq!(topo.edge_count(), 0);
        assert!(!topo.has_neighbor(&InterfaceRef::new("r1", "e1")));
    }

    #[test]
    fn loopbacks_never_link() {
        let r1 = device("r1", &[("lo0", "1.1.1.1", 32)]);
        let r2 = device("r2", &[("lo0", "1.1.1.1", 32)]);
        let topo = Topology::infer(&[r1, r2]);
        assert_eq!(topo.edge_count(), 0);
    }

    #[test]
    fn shutdown_interface_excluded() {
        let r1 = device("r1", &[("e1", "10.0.0.1", 24)]);
        let mut r2 = device("r2", &[("e1", "10.0.0.2", 24)]);
        r2.interfaces.get_mut("e1").unwrap().enabled = false;
        let topo = Topology::infer(&[r1, r2]);
        assert_eq!(topo.edge_count(), 0);
    }
}
