//! The `flat` dialect: a structured key=value configuration format.
//!
//! This stands in for config sources that are already machine-structured
//! (SONiC JSON, cloud VPC exports). One statement per line; the first word
//! selects the statement type, positional words follow, and `key=value`
//! pairs carry options. `#` starts a comment.
//!
//! ## Grammar
//!
//! ```text
//! device NAME
//! ntp-server IP                     dns-server IP
//! interface NAME ip=IP/LEN [acl-in=ACL] [acl-out=ACL] [ospf-cost=N]
//!     [ospf-area=N] [passive] [shutdown] [mtu=N] [zone=Z] [desc=TEXT]
//! static PREFIX via IP [ad=N] | static PREFIX discard [ad=N]
//! ospf [router-id=IP] [redistribute=connected,static]
//! bgp asn=N [router-id=IP] [redistribute=connected,static,ospf]
//! bgp-neighbor IP remote-as=N [in=MAP] [out=MAP] [next-hop-self]
//! bgp-network PREFIX
//! prefix-list NAME permit|deny PREFIX [ge=N] [le=N]
//! community-list NAME permit|deny A:B
//! route-map NAME SEQ permit|deny [match-prefix-list=NAME[,NAME]]
//!     [match-community=NAME] [match-aspath=RE] [match-tag=N]
//!     [set-localpref=N] [set-metric=N] [set-tag=N]
//!     [set-community=A:B[,A:B]] [set-community-additive=A:B]
//!     [prepend=ASNxCOUNT] [set-nexthop=IP]
//! acl NAME SEQ permit|deny [proto=tcp] [src=PFX] [dst=PFX]
//!     [sport=N[-M]] [dport=N[-M]] [established] [icmp-type=N]
//! nat src|dst [iface=IF] [match-src=PFX] [match-dst=PFX]
//!     pool=IP[-IP] [port=N]
//! zone NAME iface=IF[,IF]
//! zone-policy FROM TO acl=ACL
//! zone-default-permit
//! ```

use crate::diag::{Diagnostics, Severity};
use crate::vi::*;
use batnet_net::{Community, HeaderSpace, Ip, IpProtocol, IpRange, PortRange, Prefix};

/// Splits a word into `(key, Some(value))` for `key=value` or `(word,
/// None)` for a bare flag.
fn kv(word: &str) -> (&str, Option<&str>) {
    match word.split_once('=') {
        Some((k, v)) => (k, Some(v)),
        None => (word, None),
    }
}

fn parse_port_opt(s: &str) -> Option<PortRange> {
    if let Some((a, b)) = s.split_once('-') {
        let a = a.parse().ok()?;
        let b = b.parse().ok()?;
        (a <= b).then(|| PortRange::new(a, b))
    } else {
        s.parse().ok().map(PortRange::single)
    }
}

fn parse_ip_range(s: &str) -> Option<IpRange> {
    if let Some((a, b)) = s.split_once('-') {
        let start: Ip = a.parse().ok()?;
        let end: Ip = b.parse().ok()?;
        (start <= end).then_some(IpRange { start, end })
    } else {
        s.parse::<Ip>().ok().map(IpRange::single)
    }
}

/// Parses a `flat`-dialect config into the VI model plus diagnostics.
pub fn parse(name: &str, text: &str) -> (Device, Diagnostics) {
    let mut d = Device::new(name);
    let mut diags = Diagnostics::new();
    // Zone policies may reference ACLs defined later; resolve after.
    let mut pending_zone_policies: Vec<(String, String, String, usize)> = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let no = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let words: Vec<&str> = line.split_whitespace().collect();
        match words[0] {
            "device" => {
                if let Some(n) = words.get(1) {
                    d.name = n.to_string();
                }
            }
            "ntp-server" => match words.get(1).unwrap_or(&"").parse() {
                Ok(ip) => d.ntp_servers.push(ip),
                Err(_) => diags.push(Severity::ParseError, no, "bad ntp-server"),
            },
            "dns-server" => match words.get(1).unwrap_or(&"").parse() {
                Ok(ip) => d.dns_servers.push(ip),
                Err(_) => diags.push(Severity::ParseError, no, "bad dns-server"),
            },
            "interface" => parse_interface(&words, no, &mut d, &mut diags),
            "static" => parse_static(&words, no, &mut d, &mut diags),
            "ospf" => {
                let proc = d.ospf.get_or_insert_with(|| OspfProcess {
                    router_id: None,
                    reference_bandwidth_mbps: 100_000,
                    redistribute_connected: false,
                    redistribute_static: false,
                    default_cost: 1,
                });
                for w in &words[1..] {
                    match kv(w) {
                        ("router-id", Some(v)) => proc.router_id = v.parse().ok(),
                        ("redistribute", Some(v)) => {
                            for r in v.split(',') {
                                match r {
                                    "connected" => proc.redistribute_connected = true,
                                    "static" => proc.redistribute_static = true,
                                    _ => diags.push(Severity::UnrecognizedLine, no, format!("ospf redistribute {r}")),
                                }
                            }
                        }
                        _ => diags.push(Severity::UnrecognizedLine, no, format!("ospf option {w}")),
                    }
                }
            }
            "bgp" => {
                let mut asn = None;
                let mut router_id = None;
                let mut redis = Vec::new();
                for w in &words[1..] {
                    match kv(w) {
                        ("asn", Some(v)) => asn = v.parse().ok(),
                        ("router-id", Some(v)) => router_id = v.parse().ok(),
                        ("redistribute", Some(v)) => redis = v.split(',').map(str::to_string).collect(),
                        _ => diags.push(Severity::UnrecognizedLine, no, format!("bgp option {w}")),
                    }
                }
                let Some(asn) = asn else {
                    diags.push(Severity::ParseError, no, "bgp needs asn=N");
                    continue;
                };
                let proc = d.bgp.get_or_insert_with(|| BgpProcess::new(asn));
                proc.asn = asn;
                if router_id.is_some() {
                    proc.router_id = router_id;
                }
                for r in redis {
                    match r.as_str() {
                        "connected" => proc.redistribute_connected = true,
                        "static" => proc.redistribute_static = true,
                        "ospf" => proc.redistribute_ospf = true,
                        other => diags.push(Severity::UnrecognizedLine, no, format!("bgp redistribute {other}")),
                    }
                }
            }
            "bgp-neighbor" => parse_bgp_neighbor(&words, no, &mut d, &mut diags),
            "bgp-network" => {
                let Some(bgp) = &mut d.bgp else {
                    diags.push(Severity::ParseError, no, "bgp-network before bgp");
                    continue;
                };
                match words.get(1).unwrap_or(&"").parse() {
                    Ok(p) => bgp.networks.push(p),
                    Err(_) => diags.push(Severity::ParseError, no, "bad bgp-network"),
                }
            }
            "prefix-list" => parse_prefix_list(&words, no, &mut d, &mut diags),
            "community-list" => parse_community_list(&words, no, &mut d, &mut diags),
            "route-map" => parse_route_map(&words, no, &mut d, &mut diags),
            "acl" => parse_acl(&words, no, line, &mut d, &mut diags),
            "nat" => parse_nat(&words, no, line, &mut d, &mut diags),
            "zone" => {
                let Some(zname) = words.get(1) else {
                    diags.push(Severity::ParseError, no, "zone needs a name");
                    continue;
                };
                d.stateful = true;
                let zone = d.zones.entry(zname.to_string()).or_insert_with(|| Zone {
                    name: zname.to_string(),
                    interfaces: Vec::new(),
                });
                for w in &words[2..] {
                    if let ("iface", Some(v)) = kv(w) {
                        zone.interfaces.extend(v.split(',').map(str::to_string));
                    } else {
                        diags.push(Severity::UnrecognizedLine, no, format!("zone option {w}"));
                    }
                }
            }
            "zone-policy" => {
                let (Some(from), Some(to)) = (words.get(1), words.get(2)) else {
                    diags.push(Severity::ParseError, no, "zone-policy FROM TO acl=ACL");
                    continue;
                };
                let mut acl = None;
                for w in &words[3..] {
                    if let ("acl", Some(v)) = kv(w) {
                        acl = Some(v.to_string());
                    }
                }
                match acl {
                    Some(a) => pending_zone_policies.push((from.to_string(), to.to_string(), a, no)),
                    None => diags.push(Severity::ParseError, no, "zone-policy needs acl="),
                }
            }
            "zone-default-permit" => d.zone_default_permit = true,
            _ => diags.push(Severity::UnrecognizedLine, no, line.to_string()),
        }
    }
    for (from, to, acl_name, no) in pending_zone_policies {
        let acl = match d.acls.get(&acl_name) {
            Some(a) => a.clone(),
            None => {
                diags.push(
                    Severity::UndefinedReference,
                    no,
                    format!("zone-policy references undefined acl {acl_name}"),
                );
                Acl::new(acl_name)
            }
        };
        d.zone_policies.push(ZonePolicy {
            from_zone: from,
            to_zone: to,
            acl,
        });
    }
    d.lint_suppressions = crate::suppress::scan_suppressions(text);
    (d, diags)
}

fn parse_interface(words: &[&str], no: usize, d: &mut Device, diags: &mut Diagnostics) {
    let Some(name) = words.get(1) else {
        diags.push(Severity::ParseError, no, "interface needs a name");
        return;
    };
    let iface = d
        .interfaces
        .entry(name.to_string())
        .or_insert_with(|| Interface::new(name.to_string()));
    for w in &words[2..] {
        match kv(w) {
            ("ip", Some(v)) => {
                let Some((ip_s, len_s)) = v.split_once('/') else {
                    diags.push(Severity::ParseError, no, format!("bad ip {v}"));
                    continue;
                };
                match (ip_s.parse(), len_s.parse()) {
                    (Ok(ip), Ok(len)) => iface.address = Some((ip, len)),
                    _ => diags.push(Severity::ParseError, no, format!("bad ip {v}")),
                }
            }
            ("acl-in", Some(v)) => iface.acl_in = Some(v.to_string()),
            ("acl-out", Some(v)) => iface.acl_out = Some(v.to_string()),
            ("ospf-cost", Some(v)) => iface.ospf_cost = v.parse().ok(),
            ("ospf-area", Some(v)) => iface.ospf_area = v.parse().ok(),
            ("mtu", Some(v)) => iface.mtu = v.parse().unwrap_or(1500),
            ("zone", Some(v)) => iface.zone = Some(v.to_string()),
            ("desc", Some(v)) => iface.description = Some(v.to_string()),
            ("passive", None) => iface.ospf_passive = true,
            ("shutdown", None) => iface.enabled = false,
            _ => diags.push(Severity::UnrecognizedLine, no, format!("interface option {w}")),
        }
    }
}

fn parse_static(words: &[&str], no: usize, d: &mut Device, diags: &mut Diagnostics) {
    let Ok(prefix) = words.get(1).unwrap_or(&"").parse::<Prefix>() else {
        diags.push(Severity::ParseError, no, "bad static prefix");
        return;
    };
    let mut admin_distance = 1;
    let next_hop = match words.get(2) {
        Some(&"discard") => NextHop::Discard,
        Some(&"via") => match words.get(3).unwrap_or(&"").parse() {
            Ok(ip) => NextHop::Ip(ip),
            Err(_) => {
                diags.push(Severity::ParseError, no, "bad static next hop");
                return;
            }
        },
        _ => {
            diags.push(Severity::ParseError, no, "static PREFIX via IP | discard");
            return;
        }
    };
    for w in &words[3..] {
        if let ("ad", Some(v)) = kv(w) {
            admin_distance = v.parse().unwrap_or(1);
        }
    }
    d.static_routes.push(StaticRoute {
        prefix,
        next_hop,
        admin_distance,
    });
}

fn parse_bgp_neighbor(words: &[&str], no: usize, d: &mut Device, diags: &mut Diagnostics) {
    let Some(bgp) = &mut d.bgp else {
        diags.push(Severity::ParseError, no, "bgp-neighbor before bgp");
        return;
    };
    let Ok(peer) = words.get(1).unwrap_or(&"").parse::<Ip>() else {
        diags.push(Severity::ParseError, no, "bad neighbor address");
        return;
    };
    let mut nb = BgpNeighbor::new(peer, batnet_net::Asn(0));
    nb.src = SourceSpan::at(no);
    for w in &words[2..] {
        match kv(w) {
            ("remote-as", Some(v)) => match v.parse() {
                Ok(a) => nb.remote_as = a,
                Err(_) => diags.push(Severity::ParseError, no, "bad remote-as"),
            },
            ("in", Some(v)) => nb.import_policy = Some(v.to_string()),
            ("out", Some(v)) => nb.export_policy = Some(v.to_string()),
            ("next-hop-self", None) => nb.next_hop_self = true,
            ("desc", Some(v)) => nb.description = Some(v.to_string()),
            _ => diags.push(Severity::UnrecognizedLine, no, format!("neighbor option {w}")),
        }
    }
    if nb.remote_as.0 == 0 {
        diags.push(Severity::ParseError, no, "bgp-neighbor needs remote-as=N");
        return;
    }
    bgp.neighbors.push(nb);
}

fn parse_prefix_list(words: &[&str], no: usize, d: &mut Device, diags: &mut Diagnostics) {
    // prefix-list NAME permit|deny PREFIX [ge=N] [le=N]
    let (Some(name), Some(act), Some(pfx)) = (words.get(1), words.get(2), words.get(3)) else {
        diags.push(Severity::ParseError, no, "prefix-list NAME permit|deny PREFIX");
        return;
    };
    let action = match *act {
        "permit" => AclAction::Permit,
        "deny" => AclAction::Deny,
        _ => {
            diags.push(Severity::ParseError, no, "prefix-list needs permit|deny");
            return;
        }
    };
    let Ok(prefix) = pfx.parse() else {
        diags.push(Severity::ParseError, no, "bad prefix");
        return;
    };
    let mut ge = None;
    let mut le = None;
    for w in &words[4..] {
        match kv(w) {
            ("ge", Some(v)) => ge = v.parse().ok(),
            ("le", Some(v)) => le = v.parse().ok(),
            _ => diags.push(Severity::UnrecognizedLine, no, format!("prefix-list option {w}")),
        }
    }
    let pl = d
        .prefix_lists
        .entry(name.to_string())
        .or_insert_with(|| PrefixList {
            name: name.to_string(),
            entries: Vec::new(),
        });
    pl.entries.push(PrefixListEntry {
        seq: (pl.entries.len() as u32 + 1) * 5,
        action,
        prefix,
        ge,
        le,
    });
}

fn parse_community_list(words: &[&str], no: usize, d: &mut Device, diags: &mut Diagnostics) {
    let (Some(name), Some(act), Some(c)) = (words.get(1), words.get(2), words.get(3)) else {
        diags.push(Severity::ParseError, no, "community-list NAME permit|deny A:B");
        return;
    };
    let action = match *act {
        "permit" => AclAction::Permit,
        "deny" => AclAction::Deny,
        _ => {
            diags.push(Severity::ParseError, no, "community-list needs permit|deny");
            return;
        }
    };
    let Ok(community) = c.parse::<Community>() else {
        diags.push(Severity::ParseError, no, "bad community");
        return;
    };
    d.community_lists
        .entry(name.to_string())
        .or_insert_with(|| CommunityList {
            name: name.to_string(),
            entries: Vec::new(),
        })
        .entries
        .push(CommunityListEntry { action, community });
}

fn parse_route_map(words: &[&str], no: usize, d: &mut Device, diags: &mut Diagnostics) {
    // route-map NAME SEQ permit|deny [options]
    let (Some(name), Some(seq_s), Some(act)) = (words.get(1), words.get(2), words.get(3)) else {
        diags.push(Severity::ParseError, no, "route-map NAME SEQ permit|deny");
        return;
    };
    let Ok(seq) = seq_s.parse::<u32>() else {
        diags.push(Severity::ParseError, no, "bad route-map seq");
        return;
    };
    let action = match *act {
        "permit" => AclAction::Permit,
        "deny" => AclAction::Deny,
        _ => {
            diags.push(Severity::ParseError, no, "route-map needs permit|deny");
            return;
        }
    };
    let mut clause = RouteMapClause {
        seq,
        action,
        matches: Vec::new(),
        sets: Vec::new(),
        src: SourceSpan::at(no),
    };
    for w in &words[4..] {
        match kv(w) {
            ("match-prefix-list", Some(v)) => clause
                .matches
                .push(RouteMapMatch::PrefixLists(v.split(',').map(str::to_string).collect())),
            ("match-community", Some(v)) => clause
                .matches
                .push(RouteMapMatch::CommunityLists(v.split(',').map(str::to_string).collect())),
            ("match-aspath", Some(v)) => clause.matches.push(RouteMapMatch::AsPathRegex(v.to_string())),
            ("match-tag", Some(v)) => match v.parse() {
                Ok(t) => clause.matches.push(RouteMapMatch::Tag(t)),
                Err(_) => diags.push(Severity::ParseError, no, "bad match-tag"),
            },
            ("set-localpref", Some(v)) => match v.parse() {
                Ok(lp) => clause.sets.push(RouteMapSet::LocalPref(lp)),
                Err(_) => diags.push(Severity::ParseError, no, "bad set-localpref"),
            },
            ("set-metric", Some(v)) => match v.parse() {
                Ok(m) => clause.sets.push(RouteMapSet::Metric(m)),
                Err(_) => diags.push(Severity::ParseError, no, "bad set-metric"),
            },
            ("set-tag", Some(v)) => match v.parse() {
                Ok(t) => clause.sets.push(RouteMapSet::Tag(t)),
                Err(_) => diags.push(Severity::ParseError, no, "bad set-tag"),
            },
            ("set-nexthop", Some(v)) => match v.parse() {
                Ok(ip) => clause.sets.push(RouteMapSet::NextHop(ip)),
                Err(_) => diags.push(Severity::ParseError, no, "bad set-nexthop"),
            },
            ("set-community", Some(v)) | ("set-community-additive", Some(v)) => {
                let additive = w.starts_with("set-community-additive");
                let communities: Vec<Community> =
                    v.split(',').filter_map(|c| c.parse().ok()).collect();
                clause.sets.push(RouteMapSet::Community { communities, additive });
            }
            ("prepend", Some(v)) => {
                // ASNxCOUNT, e.g. 65001x3
                let (asn_s, count_s) = v.split_once('x').unwrap_or((v, "1"));
                match (asn_s.parse(), count_s.parse()) {
                    (Ok(asn), Ok(count)) => clause.sets.push(RouteMapSet::AsPathPrepend { asn, count }),
                    _ => diags.push(Severity::ParseError, no, "bad prepend"),
                }
            }
            _ => diags.push(Severity::UnrecognizedLine, no, format!("route-map option {w}")),
        }
    }
    let rm = d
        .route_maps
        .entry(name.to_string())
        .or_insert_with(|| RouteMap {
            name: name.to_string(),
            clauses: Vec::new(),
            src: SourceSpan::at(no),
        });
    rm.src.extend_to(no);
    rm.clauses.push(clause);
    rm.clauses.sort_by_key(|c| c.seq);
}

fn parse_acl(words: &[&str], no: usize, line: &str, d: &mut Device, diags: &mut Diagnostics) {
    // acl NAME SEQ permit|deny [options]
    let (Some(name), Some(seq_s), Some(act)) = (words.get(1), words.get(2), words.get(3)) else {
        diags.push(Severity::ParseError, no, "acl NAME SEQ permit|deny");
        return;
    };
    let Ok(seq) = seq_s.parse::<u32>() else {
        diags.push(Severity::ParseError, no, "bad acl seq");
        return;
    };
    let action = match *act {
        "permit" => AclAction::Permit,
        "deny" => AclAction::Deny,
        _ => {
            diags.push(Severity::ParseError, no, "acl needs permit|deny");
            return;
        }
    };
    let mut space = HeaderSpace::any();
    for w in &words[4..] {
        match kv(w) {
            ("proto", Some(v)) => match IpProtocol::parse_keyword(v) {
                Some(Some(p)) => space.protocols.push(p),
                Some(None) => {}
                None => diags.push(Severity::ParseError, no, format!("bad proto {v}")),
            },
            ("src", Some(v)) => match v.parse::<Prefix>() {
                Ok(p) => space.src_ips.push(IpRange::from_prefix(p)),
                Err(_) => diags.push(Severity::ParseError, no, format!("bad src {v}")),
            },
            ("dst", Some(v)) => match v.parse::<Prefix>() {
                Ok(p) => space.dst_ips.push(IpRange::from_prefix(p)),
                Err(_) => diags.push(Severity::ParseError, no, format!("bad dst {v}")),
            },
            ("sport", Some(v)) => match parse_port_opt(v) {
                Some(r) => space.src_ports.push(r),
                None => diags.push(Severity::ParseError, no, format!("bad sport {v}")),
            },
            ("dport", Some(v)) => match parse_port_opt(v) {
                Some(r) => space.dst_ports.push(r),
                None => diags.push(Severity::ParseError, no, format!("bad dport {v}")),
            },
            ("icmp-type", Some(v)) => match v.parse() {
                Ok(t) => space.icmp_types.push(t),
                Err(_) => diags.push(Severity::ParseError, no, "bad icmp-type"),
            },
            ("established", None) => space.established = true,
            _ => diags.push(Severity::UnrecognizedLine, no, format!("acl option {w}")),
        }
    }
    let acl = d.acls.entry(name.to_string()).or_insert_with(|| {
        let mut a = Acl::new(name.to_string());
        a.src = SourceSpan::at(no);
        a
    });
    acl.src.extend_to(no);
    acl.lines.push(AclLine {
        seq,
        action,
        space,
        text: line.to_string(),
    });
    acl.lines.sort_by_key(|l| l.seq);
}

fn parse_nat(words: &[&str], no: usize, line: &str, d: &mut Device, diags: &mut Diagnostics) {
    // nat src|dst [iface=IF] [match-src=PFX] [match-dst=PFX] pool=IP[-IP] [port=N]
    let kind = match words.get(1) {
        Some(&"src") => NatKind::Source,
        Some(&"dst") => NatKind::Destination,
        _ => {
            diags.push(Severity::ParseError, no, "nat src|dst ...");
            return;
        }
    };
    let mut space = HeaderSpace::any();
    let mut interface = None;
    let mut pool = None;
    let mut port = None;
    for w in &words[2..] {
        match kv(w) {
            ("iface", Some(v)) => interface = Some(v.to_string()),
            ("match-src", Some(v)) => match v.parse::<Prefix>() {
                Ok(p) => space.src_ips.push(IpRange::from_prefix(p)),
                Err(_) => diags.push(Severity::ParseError, no, "bad match-src"),
            },
            ("match-dst", Some(v)) => match v.parse::<Prefix>() {
                Ok(p) => space.dst_ips.push(IpRange::from_prefix(p)),
                Err(_) => diags.push(Severity::ParseError, no, "bad match-dst"),
            },
            ("pool", Some(v)) => pool = parse_ip_range(v),
            ("port", Some(v)) => port = v.parse().ok(),
            _ => diags.push(Severity::UnrecognizedLine, no, format!("nat option {w}")),
        }
    }
    let Some(pool) = pool else {
        diags.push(Severity::ParseError, no, "nat needs pool=IP[-IP]");
        return;
    };
    d.nat_rules.push(NatRule {
        kind,
        interface,
        match_space: space,
        pool,
        port,
        text: line.to_string(),
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
# flat sample
device f1
ntp-server 10.255.0.1
interface eth0 ip=10.0.0.1/24 acl-in=EDGE ospf-cost=5 ospf-area=0
interface eth1 ip=10.0.1.1/24 shutdown zone=dmz
static 10.99.0.0/16 via 10.0.0.2 ad=10
static 10.98.0.0/16 discard
ospf router-id=3.3.3.3 redistribute=connected,static
bgp asn=65030 router-id=3.3.3.3 redistribute=ospf
bgp-neighbor 10.0.0.2 remote-as=65001 in=IMP out=EXP next-hop-self
bgp-network 10.50.0.0/16
prefix-list PL permit 10.0.0.0/8 le=24
community-list CL permit 65030:100
route-map IMP 10 permit match-prefix-list=PL set-localpref=150 set-community-additive=65030:1
route-map IMP 20 deny
route-map EXP 10 permit prepend=65030x2
acl EDGE 10 permit proto=tcp dst=10.0.5.0/24 dport=80
acl EDGE 20 permit proto=tcp established
acl EDGE 30 deny
nat src iface=eth1 match-src=10.0.0.0/8 pool=203.0.113.1-203.0.113.4
zone dmz iface=eth1
zone-policy dmz internal acl=EDGE
";

    fn parsed() -> (Device, Diagnostics) {
        parse("f1", SAMPLE)
    }

    #[test]
    fn sample_parses_cleanly() {
        let (_, diags) = parsed();
        if let Some(item) = diags.items().first() {
            panic!("unexpected diagnostic: {item}");
        }
    }

    #[test]
    fn structure_is_complete() {
        let (d, _) = parsed();
        assert_eq!(d.name, "f1");
        assert_eq!(d.interfaces.len(), 2);
        assert_eq!(d.interfaces["eth0"].ospf_cost, Some(5));
        assert!(!d.interfaces["eth1"].enabled);
        assert_eq!(d.interfaces["eth1"].zone.as_deref(), Some("dmz"));
        assert_eq!(d.static_routes.len(), 2);
        assert_eq!(d.static_routes[0].admin_distance, 10);
        let bgp = d.bgp.as_ref().unwrap();
        assert_eq!(bgp.asn.0, 65030);
        assert!(bgp.redistribute_ospf);
        assert!(bgp.neighbors[0].next_hop_self);
        assert_eq!(d.route_maps["IMP"].clauses.len(), 2);
        assert_eq!(d.acls["EDGE"].lines.len(), 3);
        assert_eq!(d.nat_rules.len(), 1);
        assert_eq!(d.nat_rules[0].pool.size(), 4);
        assert_eq!(d.zone_policies.len(), 1);
        assert_eq!(d.zone_policies[0].acl.lines.len(), 3);
    }

    #[test]
    fn prepend_syntax() {
        let (d, _) = parsed();
        let exp = &d.route_maps["EXP"];
        assert_eq!(
            exp.clauses[0].sets,
            vec![RouteMapSet::AsPathPrepend {
                asn: batnet_net::Asn(65030),
                count: 2
            }]
        );
    }

    #[test]
    fn zone_policy_undefined_acl() {
        let (_, diags) = parse("f1", "zone-policy a b acl=NOPE\n");
        assert_eq!(diags.count(Severity::UndefinedReference), 1);
    }

    #[test]
    fn bad_lines_reported() {
        let (_, diags) = parse("f1", "interface eth0 ip=oops\nmystery\nstatic banana via x\n");
        assert!(diags.count(Severity::ParseError) >= 2);
        assert_eq!(diags.count(Severity::UnrecognizedLine), 1);
    }

    #[test]
    fn acl_lines_sorted_by_seq() {
        let text = "acl A 20 deny\nacl A 10 permit proto=tcp\n";
        let (d, _) = parse("f1", text);
        assert_eq!(d.acls["A"].lines[0].seq, 10);
        assert_eq!(d.acls["A"].lines[1].seq, 20);
    }
}
