//! The inline lint-suppression directive.
//!
//! Network operators silence a known-and-accepted lint finding where it
//! lives — in the config — with a comment the dialect lexers would
//! otherwise skip:
//!
//! ```text
//! ! batnet-lint-disable unused-structure          (ios comments)
//! # batnet-lint-disable ntp-consistency mtu-mismatch   (flat / junos)
//! ```
//!
//! The directive names one or more check ids (or `all`) and applies to
//! every finding of those checks on the device whose config carries it.
//! Directives ride on comment syntax so configs with directives still
//! parse cleanly on devices and on older batnet versions.

/// The directive keyword, shared by all three dialect lexers.
pub const DIRECTIVE: &str = "batnet-lint-disable";

/// Scans config text for suppression directives inside `!` or `#`
/// comments. Returns the named check ids, sorted and deduped.
pub fn scan_suppressions(text: &str) -> Vec<String> {
    let mut out: Vec<String> = Vec::new();
    for line in text.lines() {
        let t = line.trim();
        let Some(body) = t.strip_prefix('!').or_else(|| t.strip_prefix('#')) else {
            continue;
        };
        // Tolerate repeated comment markers ("!!", "##") and whitespace.
        let body = body.trim_start_matches(['!', '#']).trim();
        if let Some(rest) = body.strip_prefix(DIRECTIVE) {
            for check in rest.split_whitespace() {
                out.push(check.to_string());
            }
        }
    }
    out.sort();
    out.dedup();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_directives_in_both_comment_styles() {
        let text = "hostname r1\n! batnet-lint-disable unused-structure\n# batnet-lint-disable ntp-consistency mtu-mismatch\ninterface e0\n";
        assert_eq!(
            scan_suppressions(text),
            vec!["mtu-mismatch", "ntp-consistency", "unused-structure"]
        );
    }

    #[test]
    fn ignores_plain_comments_and_dedupes() {
        let text = "! just a note\n!! batnet-lint-disable x\n# batnet-lint-disable x\nnot a comment batnet-lint-disable y\n";
        assert_eq!(scan_suppressions(text), vec!["x"]);
    }

    #[test]
    fn empty_when_absent() {
        assert!(scan_suppressions("hostname r1\n! comment\n").is_empty());
    }
}
