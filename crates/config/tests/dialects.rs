//! Cross-dialect equivalence: the same device intent written in all three
//! dialects must lower to behaviourally equivalent VI models. This is the
//! Stage-1 normalization promise — analyses must not be able to tell
//! which vendor a config came from.

use batnet_config::vi::Device;
use batnet_config::{parse_device, Dialect};
use batnet_net::{Flow, Ip};

const IOS: &str = "\
hostname rX
ntp server 192.168.255.1
interface lan
 ip address 10.1.0.1/24
 ip access-group EDGE in
 ip ospf area 0
 ip ospf cost 7
 ip ospf passive
interface up
 ip address 172.16.0.1/31
 ip ospf area 0
 ip ospf cost 3
ip route 10.9.0.0/16 172.16.0.0
ip route 10.8.0.0/16 null0
router ospf 1
router bgp 65001
 neighbor 172.16.0.0 remote-as 65002
 neighbor 172.16.0.0 route-map IMP in
route-map IMP permit 10
 match ip address prefix-list PL
 set local-preference 150
ip prefix-list PL seq 5 permit 10.0.0.0/8 le 24
ip access-list extended EDGE
 10 permit tcp any any eq 80
 20 permit icmp any any
 30 deny ip any any
";

const JUNOS: &str = "\
set system host-name rX
set system ntp server 192.168.255.1
set interfaces lan unit 0 family inet address 10.1.0.1/24
set interfaces lan unit 0 family inet filter input EDGE
set protocols ospf area 0 interface lan metric 7
set protocols ospf area 0 interface lan passive
set interfaces up unit 0 family inet address 172.16.0.1/31
set protocols ospf area 0 interface up metric 3
set routing-options static route 10.9.0.0/16 next-hop 172.16.0.0
set routing-options static route 10.8.0.0/16 discard
set routing-options autonomous-system 65001
set protocols bgp group ext type external
set protocols bgp group ext neighbor 172.16.0.0 peer-as 65002
set protocols bgp group ext neighbor 172.16.0.0 import IMP
set policy-options prefix-list PL 10.0.0.0/8 orlonger
set policy-options policy-statement IMP term 1 from prefix-list PL
set policy-options policy-statement IMP term 1 then local-preference 150
set policy-options policy-statement IMP term 1 then accept
set policy-options policy-statement IMP term 99 then reject
set firewall filter EDGE term web from protocol tcp
set firewall filter EDGE term web from destination-port 80
set firewall filter EDGE term web then accept
set firewall filter EDGE term ping from protocol icmp
set firewall filter EDGE term ping then accept
set firewall filter EDGE term rest then discard
";

const FLAT: &str = "\
device rX
ntp-server 192.168.255.1
interface lan ip=10.1.0.1/24 acl-in=EDGE ospf-area=0 ospf-cost=7 passive
interface up ip=172.16.0.1/31 ospf-area=0 ospf-cost=3
static 10.9.0.0/16 via 172.16.0.0
static 10.8.0.0/16 discard
ospf
bgp asn=65001
bgp-neighbor 172.16.0.0 remote-as=65002 in=IMP
prefix-list PL permit 10.0.0.0/8 le=32
route-map IMP 10 permit match-prefix-list=PL set-localpref=150
route-map IMP 99 deny
acl EDGE 10 permit proto=tcp dport=80
acl EDGE 20 permit proto=icmp
acl EDGE 30 deny
";

fn all_three() -> Vec<(Dialect, Device)> {
    let specs = [
        (Dialect::Ios, IOS),
        (Dialect::Junos, JUNOS),
        (Dialect::Flat, FLAT),
    ];
    specs
        .iter()
        .map(|(d, text)| {
            assert_eq!(Dialect::detect(text), *d, "detection for {d}");
            let (device, diags) = parse_device("rX", text);
            assert!(diags.items().is_empty(), "{d}: {:?}", diags.items());
            (*d, device)
        })
        .collect()
}

#[test]
fn structure_matches_across_dialects() {
    for (d, dev) in all_three() {
        assert_eq!(dev.name, "rX", "{d}");
        assert_eq!(dev.interfaces.len(), 2, "{d}");
        let lan = &dev.interfaces["lan"];
        assert_eq!(lan.address, Some(("10.1.0.1".parse().unwrap(), 24)), "{d}");
        assert_eq!(lan.ospf_cost, Some(7), "{d}");
        assert!(lan.ospf_passive, "{d}");
        assert_eq!(lan.acl_in.as_deref(), Some("EDGE"), "{d}");
        assert_eq!(dev.static_routes.len(), 2, "{d}");
        let bgp = dev.bgp.as_ref().unwrap_or_else(|| panic!("{d}: bgp"));
        assert_eq!(bgp.asn.0, 65001, "{d}");
        assert_eq!(bgp.neighbors.len(), 1, "{d}");
        assert_eq!(bgp.neighbors[0].import_policy.as_deref(), Some("IMP"), "{d}");
        assert_eq!(dev.ntp_servers, vec!["192.168.255.1".parse::<Ip>().unwrap()], "{d}");
    }
}

#[test]
fn acl_behaviour_matches_across_dialects() {
    let devices = all_three();
    let probes = [
        Flow::tcp(Ip::new(1, 1, 1, 1), 999, Ip::new(2, 2, 2, 2), 80),
        Flow::tcp(Ip::new(1, 1, 1, 1), 999, Ip::new(2, 2, 2, 2), 22),
        Flow::icmp_echo(Ip::new(1, 1, 1, 1), Ip::new(2, 2, 2, 2)),
        Flow::udp(Ip::new(1, 1, 1, 1), 999, Ip::new(2, 2, 2, 2), 53),
    ];
    for flow in &probes {
        let verdicts: Vec<bool> = devices
            .iter()
            .map(|(_, dev)| dev.acls["EDGE"].permits(flow))
            .collect();
        assert!(
            verdicts.windows(2).all(|w| w[0] == w[1]),
            "dialects disagree on {flow}: {verdicts:?}"
        );
    }
}

#[test]
fn route_map_behaviour_matches_across_dialects() {
    use batnet_config::vi::{PolicyResult, RouteAttrs, RouteProtocol};
    let devices = all_three();
    for (d, dev) in &devices {
        let rm = &dev.route_maps["IMP"];
        // A /16 inside 10/8: permitted with local-pref 150.
        let mut attrs = RouteAttrs::new("10.5.0.0/16".parse().unwrap(), RouteProtocol::Ebgp);
        let r = rm.evaluate(&mut attrs, &dev.prefix_lists, &dev.community_lists);
        assert_eq!(r, PolicyResult::Permit, "{d}");
        assert_eq!(attrs.local_pref, 150, "{d}");
        // Outside 10/8: rejected.
        let mut attrs = RouteAttrs::new("192.168.0.0/16".parse().unwrap(), RouteProtocol::Ebgp);
        let r = rm.evaluate(&mut attrs, &dev.prefix_lists, &dev.community_lists);
        assert_eq!(r, PolicyResult::Deny, "{d}");
    }
}
