//! Firewall session state for bidirectional traces (§4.2.3).
//!
//! Stateful devices install a session when forward traffic transits them;
//! return traffic matching an installed session takes the "fast path" —
//! it bypasses zone policies and filters, and un-does the forward NAT.
//! The forward trace populates a [`SessionTable`]; the reverse trace
//! consults it.

use batnet_net::Flow;
use std::collections::BTreeSet;

/// One installed session on a stateful device. Records the forward flow
/// both as it *entered* (pre-NAT) and as it *left* (post-NAT) the device;
/// return traffic is matched against the mirrored post-NAT tuple and
/// rewritten back to the mirrored pre-NAT tuple.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub struct FirewallSession {
    /// The stateful device holding the session.
    pub device: String,
    /// Forward flow as it entered the device.
    pub pre: Flow,
    /// Forward flow as it left the device (after any NAT).
    pub post: Flow,
}

impl FirewallSession {
    /// Builds the session a stateful device installs when forwarding
    /// `pre` (arriving flow) as `post` (departing flow).
    pub fn new(device: &str, pre: Flow, post: Flow) -> FirewallSession {
        FirewallSession {
            device: device.to_string(),
            pre,
            post,
        }
    }

    /// Does `flow` (travelling in the reverse direction) match this
    /// session? Its endpoints/ports must mirror the post-NAT forward flow.
    pub fn matches_return(&self, device: &str, flow: &Flow) -> bool {
        device == self.device
            && flow.protocol.number() == self.post.protocol.number()
            && flow.src_ip == self.post.dst_ip
            && flow.dst_ip == self.post.src_ip
            && flow.src_port == self.post.dst_port
            && flow.dst_port == self.post.src_port
    }

    /// Rewrites a matching return flow back across the forward NAT: its
    /// destination becomes the pre-NAT source.
    pub fn rewrite_return(&self, flow: &Flow) -> Flow {
        let mut out = *flow;
        out.dst_ip = self.pre.src_ip;
        out.dst_port = self.pre.src_port;
        out
    }
}

/// The set of sessions installed by forward traffic.
#[derive(Clone, Debug, Default)]
pub struct SessionTable {
    sessions: BTreeSet<FirewallSession>,
}

impl SessionTable {
    /// An empty table.
    pub fn new() -> SessionTable {
        SessionTable::default()
    }

    /// Installs a session.
    pub fn install(&mut self, s: FirewallSession) {
        self.sessions.insert(s);
    }

    /// The first session on `device` matching this return flow.
    pub fn match_return(&self, device: &str, flow: &Flow) -> Option<&FirewallSession> {
        self.sessions.iter().find(|s| s.matches_return(device, flow))
    }

    /// Number of installed sessions.
    pub fn len(&self) -> usize {
        self.sessions.len()
    }

    /// Is the table empty?
    pub fn is_empty(&self) -> bool {
        self.sessions.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use batnet_net::Ip;

    #[test]
    fn return_matching_mirrors_post_tuple() {
        let pre = Flow::tcp(Ip::new(10, 0, 0, 1), 40000, Ip::new(10, 9, 0, 1), 443);
        let mut post = pre;
        post.src_ip = Ip::new(203, 0, 113, 1); // source NAT applied
        let s = FirewallSession::new("fw1", pre, post);
        // Return traffic targets the NAT'd address.
        let ret = post.reverse();
        assert!(s.matches_return("fw1", &ret));
        assert!(!s.matches_return("fw2", &ret));
        // Return traffic to the *pre*-NAT address does not match.
        assert!(!s.matches_return("fw1", &pre.reverse()));
        // Rewrite restores the inside address.
        let rewritten = s.rewrite_return(&ret);
        assert_eq!(rewritten.dst_ip, Ip::new(10, 0, 0, 1));
        assert_eq!(rewritten.dst_port, 40000);
        assert_eq!(rewritten.src_ip, ret.src_ip);
    }

    #[test]
    fn table_lookup() {
        let mut t = SessionTable::new();
        assert!(t.is_empty());
        let fwd = Flow::udp(Ip::new(1, 1, 1, 1), 1111, Ip::new(2, 2, 2, 2), 53);
        t.install(FirewallSession::new("fw", fwd, fwd));
        assert_eq!(t.len(), 1);
        assert!(t.match_return("fw", &fwd.reverse()).is_some());
        assert!(t.match_return("fw", &fwd).is_none());
        // Duplicate installs collapse.
        t.install(FirewallSession::new("fw", fwd, fwd));
        assert_eq!(t.len(), 1);
    }
}
