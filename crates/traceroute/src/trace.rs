//! The tracer: a concrete packet through the general device pipeline.

use crate::session::{FirewallSession, SessionTable};
use batnet_config::vi::{AclAction, Device, NatKind};
use batnet_config::{InterfaceRef, Topology};
use batnet_net::{Flow, Ip};
use batnet_routing::{DataPlane, FibAction};
use std::collections::BTreeSet;
use std::fmt;

/// Backstop hop budget; real loops are caught by the visited set first.
const MAX_HOPS: usize = 64;

/// Where a trace starts.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct StartLocation {
    /// Device the packet starts at.
    pub device: String,
    /// Interface the packet arrives on, or `None` when the packet
    /// originates at the device itself (skips ingress processing).
    pub ingress: Option<String>,
}

impl StartLocation {
    /// A packet arriving on `iface` of `device` (the common case: traffic
    /// entering from an attached host or external link).
    pub fn ingress(device: impl Into<String>, iface: impl Into<String>) -> StartLocation {
        StartLocation {
            device: device.into(),
            ingress: Some(iface.into()),
        }
    }

    /// A packet originating at `device`.
    pub fn origin(device: impl Into<String>) -> StartLocation {
        StartLocation {
            device: device.into(),
            ingress: None,
        }
    }
}

/// The final fate of a traced packet — mirrors the BDD engine's typed
/// drop/exit nodes so differential testing can compare them directly.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum Disposition {
    /// Delivered to an address owned by this device.
    Accepted {
        /// Terminating device.
        device: String,
    },
    /// Forwarded onto a connected subnet where the destination is assumed
    /// to live (no snapshot device owns it).
    DeliveredToSubnet {
        /// Last device.
        device: String,
        /// Egress interface.
        iface: String,
    },
    /// Left the network via an interface with no inferred L3 neighbors
    /// (e.g. towards the Internet).
    ExitsNetwork {
        /// Last device.
        device: String,
        /// Egress interface.
        iface: String,
    },
    /// Dropped by an ingress ACL.
    DeniedIn {
        /// Dropping device.
        device: String,
        /// ACL name.
        acl: String,
    },
    /// Dropped by an egress ACL.
    DeniedOut {
        /// Dropping device.
        device: String,
        /// ACL name.
        acl: String,
    },
    /// Dropped by an inter-zone policy on a stateful device.
    DeniedZone {
        /// Dropping device.
        device: String,
        /// `from→to` zone pair.
        zones: String,
    },
    /// No FIB entry matched.
    NoRoute {
        /// Device without a route.
        device: String,
    },
    /// Matched a discard route.
    NullRouted {
        /// Device with the discard route.
        device: String,
    },
    /// The gateway address had no owner on the egress subnet.
    NeighborUnreachable {
        /// Last device.
        device: String,
        /// Egress interface.
        iface: String,
    },
    /// A forwarding loop was detected.
    Loop,
}

impl Disposition {
    /// Did the packet reach *somewhere* successfully (accepted, delivered
    /// to its subnet, or exited the network)?
    pub fn is_success(&self) -> bool {
        matches!(
            self,
            Disposition::Accepted { .. }
                | Disposition::DeliveredToSubnet { .. }
                | Disposition::ExitsNetwork { .. }
        )
    }
}

impl fmt::Display for Disposition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Disposition::Accepted { device } => write!(f, "accepted at {device}"),
            Disposition::DeliveredToSubnet { device, iface } => {
                write!(f, "delivered to subnet via {device}[{iface}]")
            }
            Disposition::ExitsNetwork { device, iface } => {
                write!(f, "exits network via {device}[{iface}]")
            }
            Disposition::DeniedIn { device, acl } => write!(f, "denied in at {device} by {acl}"),
            Disposition::DeniedOut { device, acl } => write!(f, "denied out at {device} by {acl}"),
            Disposition::DeniedZone { device, zones } => {
                write!(f, "denied by zone policy {zones} at {device}")
            }
            Disposition::NoRoute { device } => write!(f, "no route at {device}"),
            Disposition::NullRouted { device } => write!(f, "null routed at {device}"),
            Disposition::NeighborUnreachable { device, iface } => {
                write!(f, "neighbor unreachable at {device}[{iface}]")
            }
            Disposition::Loop => write!(f, "forwarding loop"),
        }
    }
}

/// One device transit within a path.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Hop {
    /// Device name.
    pub device: String,
    /// Arriving interface (`None` at the origin).
    pub in_iface: Option<String>,
    /// Departing interface (`None` when the packet stopped here).
    pub out_iface: Option<String>,
    /// The flow as it arrived at this device.
    pub flow_in: Flow,
    /// The flow as it left (NAT may have rewritten it).
    pub flow_out: Flow,
    /// Human-readable step annotations: routes matched, ACL lines hit,
    /// NAT rewrites, session matches (§4.4.3 context).
    pub steps: Vec<String>,
}

/// One complete path of a (possibly multipath) trace.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct TracePath {
    /// Transited devices in order.
    pub hops: Vec<Hop>,
    /// Final fate.
    pub disposition: Disposition,
    /// The flow at the end of the path (post all NATs).
    pub final_flow: Flow,
}

/// A full trace: one path per ECMP branch combination, deterministic
/// order.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Trace {
    /// All paths.
    pub paths: Vec<TracePath>,
}

impl Trace {
    /// Do *all* paths succeed (the multipath-consistency sense)?
    pub fn all_succeed(&self) -> bool {
        self.paths.iter().all(|p| p.disposition.is_success())
    }

    /// Does *any* path succeed?
    pub fn any_succeeds(&self) -> bool {
        self.paths.iter().any(|p| p.disposition.is_success())
    }

    /// The set of distinct dispositions across paths.
    pub fn dispositions(&self) -> BTreeSet<&Disposition> {
        self.paths.iter().map(|p| &p.disposition).collect()
    }
}

impl fmt::Display for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, p) in self.paths.iter().enumerate() {
            writeln!(f, "path {}:", i + 1)?;
            for hop in &p.hops {
                writeln!(
                    f,
                    "  {} [{} -> {}]",
                    hop.device,
                    hop.in_iface.as_deref().unwrap_or("origin"),
                    hop.out_iface.as_deref().unwrap_or("-"),
                )?;
                for s in &hop.steps {
                    writeln!(f, "    {s}")?;
                }
            }
            writeln!(f, "  => {}", p.disposition)?;
        }
        Ok(())
    }
}

/// The concrete engine. Borrows the VI devices, the simulated data plane,
/// and the inferred topology.
pub struct Tracer<'a> {
    devices: &'a [Device],
    dp: &'a DataPlane,
    topo: &'a Topology,
}

impl<'a> Tracer<'a> {
    /// Creates a tracer over a simulated snapshot.
    pub fn new(devices: &'a [Device], dp: &'a DataPlane, topo: &'a Topology) -> Tracer<'a> {
        Tracer { devices, dp, topo }
    }

    fn device(&self, name: &str) -> Option<&'a Device> {
        self.dp.index.get(name).map(|&i| &self.devices[i])
    }

    /// Traces `flow` from `start`, stateless (no session table).
    pub fn trace(&self, start: &StartLocation, flow: &Flow) -> Trace {
        self.trace_with_sessions(start, flow, &SessionTable::new(), None)
    }

    /// Traces `flow` from `start`, consulting `sessions` for return-path
    /// fast-path matching, and optionally collecting sessions installed
    /// along the way into `collect`.
    pub fn trace_with_sessions(
        &self,
        start: &StartLocation,
        flow: &Flow,
        sessions: &SessionTable,
        mut collect: Option<&mut SessionTable>,
    ) -> Trace {
        let mut paths = Vec::new();
        let mut visited = BTreeSet::new();
        self.walk(
            start.device.clone(),
            start.ingress.clone(),
            *flow,
            Vec::new(),
            &mut visited,
            &mut paths,
            sessions,
            &mut collect,
        );
        Trace { paths }
    }

    /// Forward + reverse trace (bidirectional reachability, §4.2.3): the
    /// forward trace installs sessions on stateful devices; the reverse
    /// trace of the delivered flow consults them. Returns the forward
    /// trace and, for each successfully delivered path, the reverse trace
    /// started where the packet landed.
    pub fn trace_bidir(&self, start: &StartLocation, flow: &Flow) -> (Trace, Vec<Trace>) {
        let mut installed = SessionTable::new();
        let fwd = self.trace_with_sessions(start, flow, &SessionTable::new(), Some(&mut installed));
        let mut reverses = Vec::new();
        for p in &fwd.paths {
            let (rev_start, reachable) = match &p.disposition {
                Disposition::Accepted { device } => (StartLocation::origin(device.clone()), true),
                Disposition::DeliveredToSubnet { device, iface } => (
                    StartLocation::ingress(device.clone(), iface.clone()),
                    true,
                ),
                _ => (StartLocation::origin(String::new()), false),
            };
            if !reachable {
                continue;
            }
            let ret = p.final_flow.reverse();
            reverses.push(self.trace_with_sessions(&rev_start, &ret, &installed, None));
        }
        (fwd, reverses)
    }

    #[allow(clippy::too_many_arguments)]
    fn walk(
        &self,
        device_name: String,
        in_iface: Option<String>,
        mut flow: Flow,
        mut hops: Vec<Hop>,
        visited: &mut BTreeSet<(String, Flow)>,
        paths: &mut Vec<TracePath>,
        sessions: &SessionTable,
        collect: &mut Option<&mut SessionTable>,
    ) {
        let flow_in = flow;
        let finish = |hops: Vec<Hop>, d: Disposition, f: Flow, paths: &mut Vec<TracePath>| {
            paths.push(TracePath {
                hops,
                disposition: d,
                final_flow: f,
            });
        };
        if hops.len() >= MAX_HOPS || !visited.insert((device_name.clone(), flow)) {
            finish(hops, Disposition::Loop, flow, paths);
            return;
        }
        let Some(device) = self.device(&device_name) else {
            // Unknown device: treat as exiting the modeled network.
            finish(
                hops,
                Disposition::ExitsNetwork {
                    device: device_name,
                    iface: String::new(),
                },
                flow,
                paths,
            );
            return;
        };
        let ddp = self.dp.device(&device_name).expect("device in data plane");
        let mut steps: Vec<String> = Vec::new();

        // Step 3 precheck: return-traffic fast path. A session match skips
        // filters and zone policy for this device and un-NATs the flow.
        let session_match = in_iface.is_some()
            && device.stateful
            && sessions.match_return(&device_name, &flow).is_some();
        if session_match {
            let s = sessions.match_return(&device_name, &flow).expect("just matched");
            flow = s.rewrite_return(&flow);
            steps.push(format!("matched session (fast path), flow now {flow}"));
        }

        // Step 1: ingress ACL.
        if !session_match {
            if let Some(iname) = &in_iface {
                if let Some(iface) = device.interfaces.get(iname) {
                    if let Some(acl_name) = &iface.acl_in {
                        match device.acls.get(acl_name) {
                            Some(acl) => {
                                let (action, line) = acl.check(&flow);
                                let text = line
                                    .map(|l| acl.lines[l].text.clone())
                                    .unwrap_or_else(|| "implicit deny".into());
                                steps.push(format!("ingress acl {acl_name}: {action} ({text})"));
                                if action == AclAction::Deny {
                                    hops.push(Hop {
                                        device: device_name.clone(),
                                        in_iface,
                                        out_iface: None,
                                        flow_in,
                                        flow_out: flow,
                                        steps,
                                    });
                                    finish(
                                        hops,
                                        Disposition::DeniedIn {
                                            device: device_name,
                                            acl: acl_name.clone(),
                                        },
                                        flow,
                                        paths,
                                    );
                                    return;
                                }
                            }
                            // Undefined ACL reference: documented default
                            // permit (parser flagged it).
                            None => steps.push(format!("ingress acl {acl_name} undefined: permit")),
                        }
                    }
                }
            }

            // Step 2: destination NAT.
            if in_iface.is_some() {
                for rule in &device.nat_rules {
                    if rule.kind != NatKind::Destination {
                        continue;
                    }
                    if let Some(scope) = &rule.interface {
                        if Some(scope) != in_iface.as_ref() {
                            continue;
                        }
                    }
                    if rule.matches(&flow) {
                        let new = rule.translate(&flow);
                        steps.push(format!("dest nat [{}]: {flow} -> {new}", rule.text));
                        flow = new;
                        break;
                    }
                }
            }
        }

        // Step 4: local delivery.
        if device.interface_owning_ip(flow.dst_ip).is_some() {
            steps.push("destination owned by device".into());
            hops.push(Hop {
                device: device_name.clone(),
                in_iface,
                out_iface: None,
                flow_in,
                flow_out: flow,
                steps,
            });
            finish(
                hops,
                Disposition::Accepted {
                    device: device_name,
                },
                flow,
                paths,
            );
            return;
        }

        // Step 5: FIB lookup.
        let Some(entry) = ddp.fib.lookup(flow.dst_ip) else {
            steps.push("no matching FIB entry".into());
            hops.push(Hop {
                device: device_name.clone(),
                in_iface,
                out_iface: None,
                flow_in,
                flow_out: flow,
                steps,
            });
            finish(hops, Disposition::NoRoute { device: device_name }, flow, paths);
            return;
        };
        steps.push(format!(
            "fib: {} ({:?} via {})",
            entry.prefix, entry.protocol, {
                match &entry.action {
                    FibAction::Forward(h) => format!("{} hop(s)", h.len()),
                    FibAction::Discard => "discard".into(),
                    FibAction::Unresolved => "unresolved".into(),
                }
            }
        ));
        let next_hops = match &entry.action {
            FibAction::Discard => {
                hops.push(Hop {
                    device: device_name.clone(),
                    in_iface,
                    out_iface: None,
                    flow_in,
                    flow_out: flow,
                    steps,
                });
                finish(hops, Disposition::NullRouted { device: device_name }, flow, paths);
                return;
            }
            FibAction::Unresolved => {
                hops.push(Hop {
                    device: device_name.clone(),
                    in_iface,
                    out_iface: None,
                    flow_in,
                    flow_out: flow,
                    steps,
                });
                finish(hops, Disposition::NoRoute { device: device_name }, flow, paths);
                return;
            }
            FibAction::Forward(h) => h.clone(),
        };

        // ECMP fork: each resolved next hop continues as its own path.
        for nh in next_hops {
            let mut steps = steps.clone();
            let mut flow = flow;
            let out_iface = nh.iface.clone();

            // Step 6: zone policy (stateful devices, transiting traffic,
            // not on the session fast path).
            if device.stateful && !session_match && in_iface.is_some() {
                let from = in_iface.as_deref().and_then(|i| device.zone_of_interface(i));
                let to = device.zone_of_interface(&out_iface);
                if let (Some(from), Some(to)) = (from, to) {
                    if from != to {
                        let policy = device
                            .zone_policies
                            .iter()
                            .find(|zp| zp.from_zone == from && zp.to_zone == to);
                        let permitted = match policy {
                            Some(zp) => {
                                let (action, line) = zp.acl.check(&flow);
                                let text = line
                                    .map(|l| zp.acl.lines[l].text.clone())
                                    .unwrap_or_else(|| "implicit deny".into());
                                steps.push(format!("zone {from}->{to}: {action} ({text})"));
                                action == AclAction::Permit
                            }
                            None => {
                                steps.push(format!(
                                    "zone {from}->{to}: no policy, default {}",
                                    if device.zone_default_permit { "permit" } else { "deny" }
                                ));
                                device.zone_default_permit
                            }
                        };
                        if !permitted {
                            let mut hops = hops.clone();
                            hops.push(Hop {
                                device: device_name.clone(),
                                in_iface: in_iface.clone(),
                                out_iface: Some(out_iface),
                                flow_in,
                                flow_out: flow,
                                steps,
                            });
                            finish(
                                hops,
                                Disposition::DeniedZone {
                                    device: device_name.clone(),
                                    zones: format!("{from}->{to}"),
                                },
                                flow,
                                paths,
                            );
                            continue;
                        }
                    }
                }
            }

            // Step 7: source NAT on the egress interface.
            let pre_nat = flow;
            for rule in &device.nat_rules {
                if rule.kind != NatKind::Source {
                    continue;
                }
                if let Some(scope) = &rule.interface {
                    if *scope != out_iface {
                        continue;
                    }
                }
                if rule.matches(&flow) {
                    let new = rule.translate(&flow);
                    steps.push(format!("source nat [{}]: {flow} -> {new}", rule.text));
                    flow = new;
                    break;
                }
            }

            // Step 8: egress ACL.
            if let Some(iface) = device.interfaces.get(&out_iface) {
                if let Some(acl_name) = &iface.acl_out {
                    if let Some(acl) = device.acls.get(acl_name) {
                        let (action, line) = acl.check(&flow);
                        let text = line
                            .map(|l| acl.lines[l].text.clone())
                            .unwrap_or_else(|| "implicit deny".into());
                        steps.push(format!("egress acl {acl_name}: {action} ({text})"));
                        if action == AclAction::Deny {
                            let mut hops = hops.clone();
                            hops.push(Hop {
                                device: device_name.clone(),
                                in_iface: in_iface.clone(),
                                out_iface: Some(out_iface),
                                flow_in,
                                flow_out: flow,
                                steps,
                            });
                            finish(
                                hops,
                                Disposition::DeniedOut {
                                    device: device_name.clone(),
                                    acl: acl_name.clone(),
                                },
                                flow,
                                paths,
                            );
                            continue;
                        }
                    }
                }
            }

            // Session install on stateful transit (forward direction).
            if device.stateful && !session_match {
                if let Some(table) = collect.as_deref_mut() {
                    table.install(FirewallSession::new(&device_name, pre_nat, flow));
                }
            }

            // Step 9: hand-off.
            let me = InterfaceRef::new(&device_name, &out_iface);
            let neighbors = self.topo.neighbors_of(&me);
            let target_ip: Ip = nh.gateway.unwrap_or(flow.dst_ip);
            let receiver = neighbors.iter().find_map(|nb| {
                let d = self.device(&nb.device)?;
                let iface = d.interfaces.get(&nb.interface)?;
                (iface.ip() == Some(target_ip)
                    || iface.secondary_addresses.iter().any(|&(a, _)| a == target_ip))
                .then(|| nb.clone())
            });
            let mut hops2 = hops.clone();
            hops2.push(Hop {
                device: device_name.clone(),
                in_iface: in_iface.clone(),
                out_iface: Some(out_iface.clone()),
                flow_in,
                flow_out: flow,
                steps: steps.clone(),
            });
            match receiver {
                Some(nb) => {
                    let mut visited2 = visited.clone();
                    self.walk(
                        nb.device,
                        Some(nb.interface),
                        flow,
                        hops2,
                        &mut visited2,
                        paths,
                        sessions,
                        collect,
                    );
                }
                None => {
                    let disposition = if neighbors.is_empty() {
                        // Edge interface: delivered to an attached host if
                        // the destination is on the connected subnet,
                        // otherwise the packet leaves the modeled network.
                        let on_subnet = device
                            .interfaces
                            .get(&out_iface)
                            .and_then(|i| i.connected_prefix())
                            .is_some_and(|p| p.contains(flow.dst_ip));
                        if on_subnet {
                            Disposition::DeliveredToSubnet {
                                device: device_name.clone(),
                                iface: out_iface.clone(),
                            }
                        } else {
                            Disposition::ExitsNetwork {
                                device: device_name.clone(),
                                iface: out_iface.clone(),
                            }
                        }
                    } else if nh.gateway.is_none() {
                        // Destination on a shared router subnet but owned
                        // by no device: an attached host.
                        Disposition::DeliveredToSubnet {
                            device: device_name.clone(),
                            iface: out_iface.clone(),
                        }
                    } else {
                        Disposition::NeighborUnreachable {
                            device: device_name.clone(),
                            iface: out_iface.clone(),
                        }
                    };
                    finish(hops2, disposition, flow, paths);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use batnet_config::parse_device;
    use batnet_routing::{simulate, Environment, SimOptions};

    struct Net {
        devices: Vec<Device>,
        dp: DataPlane,
        topo: Topology,
    }

    fn build(configs: &[(&str, &str)]) -> Net {
        let devices: Vec<Device> = configs.iter().map(|(n, t)| parse_device(n, t).0).collect();
        let topo = Topology::infer(&devices);
        let dp = simulate(&devices, &Environment::none(), &SimOptions::default());
        Net { devices, dp, topo }
    }

    /// host—r1—r2—server topology: r1 has an inbound ACL permitting only
    /// web traffic to the server subnet.
    fn web_net() -> Net {
        build(&[
            (
                "r1",
                "hostname r1\n\
                 interface hosts\n ip address 10.1.0.1/24\n ip access-group EDGE in\n\
                 interface core\n ip address 10.0.0.1/31\n\
                 ip route 10.2.0.0/24 10.0.0.0\n\
                 ip access-list extended EDGE\n \
                 10 permit tcp 10.1.0.0 0.0.0.255 10.2.0.0 0.0.0.255 eq 80\n \
                 20 permit icmp any any\n \
                 30 deny ip any any\n",
            ),
            (
                "r2",
                "hostname r2\n\
                 interface core\n ip address 10.0.0.0/31\n\
                 interface servers\n ip address 10.2.0.1/24\n\
                 ip route 10.1.0.0/24 10.0.0.1\n",
            ),
        ])
    }

    fn f(src: &str, sport: u16, dst: &str, dport: u16) -> Flow {
        Flow::tcp(src.parse().unwrap(), sport, dst.parse().unwrap(), dport)
    }

    #[test]
    fn permitted_flow_delivered_to_subnet() {
        let net = web_net();
        let tracer = Tracer::new(&net.devices, &net.dp, &net.topo);
        let flow = f("10.1.0.50", 40000, "10.2.0.80", 80);
        let trace = tracer.trace(&StartLocation::ingress("r1", "hosts"), &flow);
        assert_eq!(trace.paths.len(), 1);
        assert_eq!(
            trace.paths[0].disposition,
            Disposition::DeliveredToSubnet {
                device: "r2".into(),
                iface: "servers".into()
            },
            "{trace}"
        );
        // The path must transit both devices with annotations.
        assert_eq!(trace.paths[0].hops.len(), 2);
        assert!(trace.paths[0].hops[0]
            .steps
            .iter()
            .any(|s| s.contains("ingress acl EDGE: permit")));
    }

    #[test]
    fn denied_flow_stopped_at_ingress() {
        let net = web_net();
        let tracer = Tracer::new(&net.devices, &net.dp, &net.topo);
        let flow = f("10.1.0.50", 40000, "10.2.0.80", 22); // ssh: denied
        let trace = tracer.trace(&StartLocation::ingress("r1", "hosts"), &flow);
        assert_eq!(
            trace.paths[0].disposition,
            Disposition::DeniedIn {
                device: "r1".into(),
                acl: "EDGE".into()
            }
        );
    }

    #[test]
    fn packet_to_router_address_accepted() {
        let net = web_net();
        let tracer = Tracer::new(&net.devices, &net.dp, &net.topo);
        let flow = Flow::icmp_echo("10.1.0.50".parse().unwrap(), "10.0.0.0".parse().unwrap());
        let trace = tracer.trace(&StartLocation::ingress("r1", "hosts"), &flow);
        assert_eq!(
            trace.paths[0].disposition,
            Disposition::Accepted { device: "r2".into() },
            "{trace}"
        );
    }

    #[test]
    fn no_route_disposition() {
        let net = web_net();
        let tracer = Tracer::new(&net.devices, &net.dp, &net.topo);
        let flow = Flow::icmp_echo("10.1.0.50".parse().unwrap(), "192.168.99.1".parse().unwrap());
        let trace = tracer.trace(&StartLocation::ingress("r1", "hosts"), &flow);
        assert_eq!(
            trace.paths[0].disposition,
            Disposition::NoRoute { device: "r1".into() }
        );
    }

    #[test]
    fn null_route_disposition() {
        let net = build(&[(
            "r1",
            "hostname r1\ninterface e0\n ip address 10.0.0.1/24\nip route 192.168.0.0/16 null0\n",
        )]);
        let tracer = Tracer::new(&net.devices, &net.dp, &net.topo);
        let flow = Flow::icmp_echo("10.0.0.5".parse().unwrap(), "192.168.1.1".parse().unwrap());
        let trace = tracer.trace(&StartLocation::ingress("r1", "e0"), &flow);
        assert_eq!(
            trace.paths[0].disposition,
            Disposition::NullRouted { device: "r1".into() }
        );
    }

    #[test]
    fn static_route_loop_detected() {
        // r1 routes 10.9/16 to r2; r2 routes it back to r1.
        let net = build(&[
            (
                "r1",
                "hostname r1\ninterface e0\n ip address 10.0.0.1/31\nip route 10.9.0.0/16 10.0.0.0\n",
            ),
            (
                "r2",
                "hostname r2\ninterface e0\n ip address 10.0.0.0/31\nip route 10.9.0.0/16 10.0.0.1\n",
            ),
        ]);
        let tracer = Tracer::new(&net.devices, &net.dp, &net.topo);
        let flow = Flow::icmp_echo("10.0.0.1".parse().unwrap(), "10.9.1.1".parse().unwrap());
        let trace = tracer.trace(&StartLocation::origin("r1"), &flow);
        assert_eq!(trace.paths[0].disposition, Disposition::Loop, "{trace}");
    }

    #[test]
    fn ecmp_forks_paths() {
        // r1 has two equal static routes to the destination via two
        // neighbors, both of which deliver locally.
        let net = build(&[
            (
                "r1",
                "hostname r1\ninterface a\n ip address 10.0.1.0/31\ninterface b\n ip address 10.0.2.0/31\nip route 10.9.0.0/24 10.0.1.1\nip route 10.9.0.0/24 10.0.2.1\n",
            ),
            (
                "r2",
                "hostname r2\ninterface a\n ip address 10.0.1.1/31\ninterface lan\n ip address 10.9.0.1/24\n",
            ),
            (
                "r3",
                "hostname r3\ninterface b\n ip address 10.0.2.1/31\ninterface lan\n ip address 10.9.0.1/24\n",
            ),
        ]);
        let tracer = Tracer::new(&net.devices, &net.dp, &net.topo);
        let flow = f("10.0.1.0", 1000, "10.9.0.42", 80);
        let trace = tracer.trace(&StartLocation::origin("r1"), &flow);
        assert_eq!(trace.paths.len(), 2, "{trace}");
        assert!(trace.all_succeed(), "{trace}");
    }

    #[test]
    fn source_nat_rewrites_on_egress() {
        let net = build(&[(
            "r1",
            "hostname r1\n\
             interface inside\n ip address 10.0.0.1/24\n\
             interface outside\n ip address 203.0.113.1/24\n\
             ip nat pool P 198.51.100.1 198.51.100.1\n\
             ip access-list extended NATMATCH\n 10 permit ip 10.0.0.0 0.0.0.255 any\n\
             ip nat source list NATMATCH pool P interface outside\n",
        )]);
        let tracer = Tracer::new(&net.devices, &net.dp, &net.topo);
        let flow = f("10.0.0.5", 40000, "203.0.113.77", 80);
        let trace = tracer.trace(&StartLocation::ingress("r1", "inside"), &flow);
        let p = &trace.paths[0];
        assert!(p.disposition.is_success(), "{trace}");
        assert_eq!(p.final_flow.src_ip, "198.51.100.1".parse().unwrap());
        assert_eq!(p.final_flow.dst_ip, flow.dst_ip);
    }

    #[test]
    fn zone_policy_and_bidirectional_session() {
        // Stateful firewall: trust → untrust permitted for tcp/443; no
        // untrust → trust policy (default deny). Return traffic must pass
        // via the session fast path.
        let net = build(&[(
            "fw",
            "hostname fw\n\
             interface trust0\n ip address 10.0.0.1/24\n zone-member security trust\n\
             interface untrust0\n ip address 203.0.113.1/24\n zone-member security untrust\n\
             zone security trust\nzone security untrust\n\
             ip access-list extended OUTBOUND\n 10 permit tcp any any eq 443\n\
             zone-pair security trust untrust acl OUTBOUND\n",
        )]);
        let tracer = Tracer::new(&net.devices, &net.dp, &net.topo);
        let flow = f("10.0.0.9", 50000, "203.0.113.99", 443);
        let (fwd, reverses) = tracer.trace_bidir(&StartLocation::ingress("fw", "trust0"), &flow);
        assert!(fwd.paths[0].disposition.is_success(), "{fwd}");
        assert_eq!(reverses.len(), 1);
        let rev = &reverses[0];
        assert!(
            rev.paths[0].disposition.is_success(),
            "return must ride the session fast path: {rev}"
        );
        // Without the session, the same return flow is dropped by the
        // (absent) untrust→trust policy.
        let bare = tracer.trace(
            &StartLocation::ingress("fw", "untrust0"),
            &flow.reverse(),
        );
        assert_eq!(
            bare.paths[0].disposition,
            Disposition::DeniedZone {
                device: "fw".into(),
                zones: "untrust->trust".into()
            },
            "{bare}"
        );
        // And a disallowed forward flow (port 80) is zone-denied.
        let bad = tracer.trace(
            &StartLocation::ingress("fw", "trust0"),
            &f("10.0.0.9", 50000, "203.0.113.99", 80),
        );
        assert_eq!(
            bad.paths[0].disposition,
            Disposition::DeniedZone {
                device: "fw".into(),
                zones: "trust->untrust".into()
            }
        );
    }

    #[test]
    fn exits_network_via_edge_interface() {
        let net = build(&[(
            "r1",
            "hostname r1\ninterface lan\n ip address 10.0.0.1/24\ninterface up\n ip address 203.0.113.2/31\nip route 0.0.0.0/0 203.0.113.3\n",
        )]);
        let tracer = Tracer::new(&net.devices, &net.dp, &net.topo);
        let flow = f("10.0.0.5", 1, "8.8.8.8", 53);
        let trace = tracer.trace(&StartLocation::ingress("r1", "lan"), &flow);
        assert_eq!(
            trace.paths[0].disposition,
            Disposition::ExitsNetwork {
                device: "r1".into(),
                iface: "up".into()
            },
            "{trace}"
        );
    }
}
