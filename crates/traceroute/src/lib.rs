//! # batnet-traceroute — the concrete forwarding engine
//!
//! Batfish keeps two *independent* forwarding analysis engines: the
//! symbolic BDD engine (`batnet-dataplane`) and this one, which walks a
//! single concrete packet through the general device pipeline. §4.3.2:
//! *"Validating that such engines produce identical results is
//! instrumental in uncovering modeling bugs."* The two implementations
//! deliberately share no matching code beyond the VI model itself.
//!
//! ## The general device pipeline (§7.2)
//!
//! Vendors order filtering, NAT, and routing differently; Batfish maps
//! every vendor onto a superset pipeline. Ours, for a packet arriving on
//! interface *in*:
//!
//! 1. ingress ACL (`in.acl_in`);
//! 2. destination NAT (rules scoped to *in* or unscoped);
//! 3. stateful session match (return traffic takes the fast path past
//!    filters);
//! 4. local delivery check (destination owned by the device);
//! 5. FIB lookup (ECMP forks the trace);
//! 6. zone policy (`zone(in) → zone(out)`) on stateful devices;
//! 7. source NAT (rules scoped to *out* or unscoped);
//! 8. egress ACL (`out.acl_out`);
//! 9. hand-off to the L3 neighbor owning the gateway address.
//!
//! Every step is annotated (route used, ACL line hit) for the §4.4.3
//! violation explanations.

pub mod session;
pub mod trace;

pub use session::{FirewallSession, SessionTable};
pub use trace::{Disposition, Hop, StartLocation, Trace, TracePath, Tracer};
