//! Concurrency guarantees of the sharded recorder.
//!
//! Three contracts from the sharding refactor, exercised end to end:
//! no lost updates under parallel recording (exact span counts and
//! histogram totals after the merge), cross-thread spans parented under
//! their logical `SpanContext` parent in both the JSON forest and the
//! exported Chrome trace, and telemetry that survives a contained panic
//! (serve workers run handlers under `catch_unwind`; a panic mid-record
//! must never poison the recorder for the rest of the process).
//!
//! Byte-level stability of single-threaded reports is pinned separately
//! by `tests/golden.rs` against the pre-sharding golden fixture.

use batnet_obs::json::{self, Value};
use batnet_obs::metrics::MetricValue;
use batnet_obs::report::validate_run_report;
use batnet_obs::trace;
use batnet_obs::Span;
use std::sync::{Mutex, MutexGuard, OnceLock};

/// Serializes the tests in this binary: they all reset global state.
fn guard() -> MutexGuard<'static, ()> {
    static G: OnceLock<Mutex<()>> = OnceLock::new();
    G.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

#[test]
fn parallel_recording_loses_nothing() {
    let _g = guard();
    batnet_obs::reset();
    const THREADS: usize = 8;
    const ITERS: u64 = 200;
    let workers: Vec<_> = (0..THREADS)
        .map(|t| {
            std::thread::spawn(move || {
                let _root = Span::enter("stress.worker");
                for i in 0..ITERS {
                    let _iter = Span::enter("stress.iter");
                    let _step = Span::enter("stress.step");
                    batnet_obs::counter_add("stress.shared", 1);
                    batnet_obs::counter_add(&format!("stress.t{t}"), 1);
                    batnet_obs::observe("stress.hist", i);
                }
            })
        })
        .collect();
    for w in workers {
        w.join().expect("stress worker");
    }
    let report = batnet_obs::capture();
    // Exact accounting: every span and every metric update survived the
    // merge, none double-counted.
    assert_eq!(report.span_count("stress.worker"), THREADS);
    assert_eq!(report.span_count("stress.iter"), THREADS * ITERS as usize);
    assert_eq!(report.span_count("stress.step"), THREADS * ITERS as usize);
    assert_eq!(report.spans.len(), THREADS * (1 + 2 * ITERS as usize));
    assert_eq!(
        report.counter("stress.shared"),
        Some(THREADS as u64 * ITERS)
    );
    for t in 0..THREADS {
        assert_eq!(report.counter(&format!("stress.t{t}")), Some(ITERS));
    }
    let Some(MetricValue::Histogram(h)) = report.metrics.get("stress.hist") else {
        panic!("merged histogram missing");
    };
    assert_eq!(h.count, THREADS as u64 * ITERS);
    assert_eq!(h.count, h.buckets.iter().sum::<u64>());
    assert_eq!(h.sum, THREADS as u64 * (0..ITERS).sum::<u64>());
    assert_eq!(report.counter("obs.type-conflicts"), None);
    // Every iter/step span sits under a worker root of its own thread.
    for s in &report.spans {
        match s.name.as_str() {
            "stress.worker" => assert_eq!(s.parent, None),
            _ => {
                let p = s.parent.expect("nested span has a parent");
                assert_eq!(report.spans[p].tid, s.tid, "nesting stays on-thread");
            }
        }
    }
    // The merged report serializes and validates like any other.
    let parsed = json::parse(&report.to_json()).expect("report parses");
    validate_run_report(&parsed).expect("merged report validates");
}

#[test]
fn multithreaded_smoke_parents_across_threads() {
    let _g = guard();
    batnet_obs::reset();
    const WORKERS: usize = 4;
    let root = Span::enter("fanout");
    let ctx = root.context();
    let handles: Vec<_> = (0..WORKERS)
        .map(|i| {
            std::thread::spawn(move || {
                let worker = Span::enter_with_parent(format!("fanout.worker{i}"), ctx);
                let _inner = Span::enter("fanout.step");
                batnet_obs::observe("fanout.latency.us", 10 * (i as u64 + 1));
                drop(_inner);
                drop(worker);
            })
        })
        .collect();
    for h in handles {
        h.join().expect("fanout worker");
    }
    drop(root);
    let report = batnet_obs::capture();
    let parsed = json::parse(&report.to_json()).expect("report parses");
    validate_run_report(&parsed).expect("multi-threaded report validates");

    // JSON forest: one root, all workers (with their steps) nested
    // under it despite recording on other threads.
    let spans = parsed.get("spans").and_then(Value::as_arr).expect("spans");
    assert_eq!(spans.len(), 1, "workers must not appear as extra roots");
    assert_eq!(spans[0].get("name").and_then(Value::as_str), Some("fanout"));
    let kids = spans[0]
        .get("children")
        .and_then(Value::as_arr)
        .expect("children");
    assert_eq!(kids.len(), WORKERS);
    for kid in kids {
        let name = kid.get("name").and_then(Value::as_str).expect("name");
        assert!(name.starts_with("fanout.worker"), "unexpected child {name}");
        let steps = kid.get("children").and_then(Value::as_arr).expect("steps");
        assert_eq!(steps.len(), 1);
        assert_eq!(
            steps[0].get("name").and_then(Value::as_str),
            Some("fanout.step")
        );
    }

    // Chrome trace: ≥ 5 distinct tids (main + 4 workers), every worker
    // event keeps its cross-thread parent link, ts monotone per tid.
    let text = trace::chrome_trace_records(&report.spans);
    let v = json::parse(&text).expect("trace parses");
    trace::validate_chrome_trace(&v).expect("trace validates");
    let events = v.get("traceEvents").and_then(Value::as_arr).expect("events");
    assert_eq!(events.len(), report.spans.len());
    let tids: std::collections::BTreeSet<u64> = events
        .iter()
        .map(|e| e.get("tid").and_then(Value::as_f64).expect("tid") as u64)
        .collect();
    assert_eq!(tids.len(), WORKERS + 1, "one tid per OS thread");
    for (e, s) in events.iter().zip(&report.spans) {
        let linked = e
            .get("args")
            .and_then(|a| a.get("parent"))
            .and_then(Value::as_f64)
            .map(|p| p as usize);
        assert_eq!(linked, s.parent, "parent link preserved for {}", s.name);
    }
    let mut last_ts: std::collections::BTreeMap<u64, f64> = Default::default();
    for e in events {
        let tid = e.get("tid").and_then(Value::as_f64).expect("tid") as u64;
        let ts = e.get("ts").and_then(Value::as_f64).expect("ts");
        if let Some(prev) = last_ts.insert(tid, ts) {
            assert!(ts >= prev, "ts monotone within tid {tid}");
        }
    }
}

#[test]
fn contained_panic_does_not_poison_telemetry() {
    let _g = guard();
    batnet_obs::reset();
    // A handler panics with a span open and metrics recorded — the
    // serve worker catches it; telemetry must keep working after.
    let result = std::panic::catch_unwind(|| {
        let _doomed = Span::enter("request.doomed");
        batnet_obs::counter_add("requests.before-panic", 1);
        panic!("handler blew up");
    });
    assert!(result.is_err(), "the panic must reach catch_unwind");
    // Recording continues on the same thread...
    batnet_obs::counter_add("requests.after-panic", 1);
    let _next = Span::enter("request.next");
    drop(_next);
    // ...and on fresh threads.
    std::thread::spawn(|| batnet_obs::counter_add("requests.after-panic", 1))
        .join()
        .expect("post-panic worker");
    let report = batnet_obs::capture();
    assert_eq!(report.counter("requests.before-panic"), Some(1));
    assert_eq!(report.counter("requests.after-panic"), Some(2));
    // The doomed span closed on unwind (RAII) and still reports.
    assert_eq!(report.span_count("request.doomed"), 1);
    assert!(report.span_ms("request.doomed").is_some(), "closed on unwind");
    let parsed = json::parse(&report.to_json()).expect("report parses");
    validate_run_report(&parsed).expect("post-panic report validates");
}
