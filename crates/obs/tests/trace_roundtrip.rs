//! Trace-export round trip: record a real span forest, serialize the
//! run report, export it as Chrome trace JSON, and re-parse everything
//! with the in-tree JSON parser.
//!
//! A single `#[test]` on purpose: the span recorder is process-global
//! and `cargo test` runs tests on threads, so this file owns the whole
//! recording window (integration tests build as their own binary, so
//! no unit test can interleave).

use batnet_obs::json::{self, Value};
use batnet_obs::trace::{chrome_trace, forest_from_json, validate_chrome_trace, SpanNode};
use batnet_obs::Span;

#[test]
fn report_to_chrome_trace_roundtrip() {
    batnet_obs::reset();
    {
        let _run = Span::enter("run");
        for net in ["n2", "net1"] {
            let _network = Span::enter(format!("network.{net}"));
            {
                let _parse = Span::enter("parse");
                std::hint::black_box(vec![0u8; 4096]);
            }
            let _route = Span::enter("route");
            let _bgp = Span::enter("route.bgp");
        }
    }
    std::thread::spawn(|| {
        let _w = Span::enter("worker");
    })
    .join()
    .expect("worker thread");

    let report = batnet_obs::capture();
    let span_count = report.spans.len();
    assert_eq!(span_count, 10, "1 run + 2×(network, parse, route, bgp) + worker");

    // Report → JSON → parsed forest → Chrome trace → parsed events.
    let report_json = json::parse(&report.to_json()).expect("report parses");
    batnet_obs::report::validate_run_report(&report_json).expect("report validates");
    let forest = forest_from_json(&report_json).expect("forest from JSON");
    let trace_text = chrome_trace(&forest);
    let trace = json::parse(&trace_text).expect("trace parses with the in-tree parser");
    validate_chrome_trace(&trace).expect("trace validates");

    // Event count equals span count: every recorded span becomes
    // exactly one complete event.
    let events = trace
        .get("traceEvents")
        .and_then(Value::as_arr)
        .expect("traceEvents");
    assert_eq!(events.len(), span_count);

    // ts is monotone and dur non-negative within each tid (Perfetto
    // renders one track per tid; out-of-order events corrupt nesting).
    let mut per_tid: std::collections::BTreeMap<u64, f64> = std::collections::BTreeMap::new();
    for e in events {
        let tid = e.get("tid").and_then(Value::as_f64).expect("tid") as u64;
        let ts = e.get("ts").and_then(Value::as_f64).expect("ts");
        let dur = e.get("dur").and_then(Value::as_f64).expect("dur");
        assert!(dur >= 0.0);
        let last = per_tid.entry(tid).or_insert(f64::MIN);
        assert!(ts >= *last, "ts must be monotone within tid {tid}");
        *last = ts;
    }
    // The main-thread tree and the worker root land on different tids.
    assert!(per_tid.len() >= 2, "worker root gets its own track");

    // Self time over the forest sums to ≤ the root wall time: the
    // attribution partitions the measured wall clock, it never invents
    // time. (Worker spans overlap the main tree, so compare per root.
    // The report stores ms, so the ns→ms→ns round trip can truncate up
    // to 1 ns per span — grant exactly that much slack.)
    fn sum_self(node: &SpanNode) -> u64 {
        node.self_ns() + node.children.iter().map(sum_self).sum::<u64>()
    }
    for root in &forest {
        let rounding_slack = root.size() as u64;
        assert!(
            sum_self(root) <= root.dur_ns + rounding_slack,
            "self times within {} exceed its wall time",
            root.name
        );
    }

    // The report's own attribution agrees with the exported forest.
    let run_self = report.self_ms("run").expect("run span closed");
    let critical = report.critical_path();
    assert_eq!(critical.first().map(|s| s.name.as_str()), Some("run"));
    assert!(run_self >= 0.0);
}
