//! Continuous-profiling contracts of the sampler, end to end:
//! virtual-clock exactness across many live shards (`samples ==
//! ticks × shards`, no drops on quiescent stacks), and the poisoning
//! regression — a contained panic with the wall-clock sampler attached
//! must leave both telemetry and the sampler fully working.
//!
//! The subset property (every sampled live path appears in the exact
//! attribution of the finished run) needs a real pipeline and lives in
//! the facade crate's `tests/profiling.rs`.

use batnet_obs::json::{self, Value};
use batnet_obs::{Sampler, SamplerThread, Span};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier, Mutex, MutexGuard, OnceLock};

/// Serializes the tests in this binary: they all reset global state.
fn guard() -> MutexGuard<'static, ()> {
    static G: OnceLock<Mutex<()>> = OnceLock::new();
    G.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

#[test]
fn virtual_clock_is_exact_across_live_shards() {
    let _g = guard();
    batnet_obs::reset();
    const WORKERS: usize = 6;
    const TICKS: usize = 7;
    // Workers each hold a live two-deep stack and park until released;
    // quiescent seqlocks mean every read must land (zero drops).
    let ready = Arc::new(Barrier::new(WORKERS + 1));
    let release = Arc::new(AtomicBool::new(false));
    let handles: Vec<_> = (0..WORKERS)
        .map(|_| {
            let (ready, release) = (Arc::clone(&ready), Arc::clone(&release));
            std::thread::spawn(move || {
                let _outer = Span::enter("prof.worker");
                let _inner = Span::enter("prof.step");
                ready.wait();
                while !release.load(Ordering::Relaxed) {
                    std::thread::yield_now();
                }
            })
        })
        .collect();
    ready.wait();

    let sampler = Sampler::new(0);
    let shards = sampler.tick();
    assert!(shards >= WORKERS, "every parked worker has a live shard");
    for _ in 1..TICKS {
        assert_eq!(sampler.tick(), shards, "shard count stable while parked");
    }
    release.store(true, Ordering::Relaxed);
    for h in handles {
        h.join().expect("profiled worker");
    }

    let stats = sampler.stats();
    assert_eq!(stats.samples, (TICKS * shards) as u64);
    assert_eq!(stats.ticks, TICKS as u64);
    assert_eq!(stats.dropped, 0, "quiescent stacks can never read torn");

    let doc = json::parse(&sampler.take_profile()).expect("profile parses");
    batnet_obs::report::validate_profile(&doc).expect("profile validates");
    let stacks = doc.get("stacks").and_then(Value::as_arr).expect("stacks");
    let count_of = |path: &str| -> u64 {
        stacks
            .iter()
            .find(|s| s.get("stack").and_then(Value::as_str) == Some(path))
            .and_then(|s| s.get("count").and_then(Value::as_f64))
            .unwrap_or(0.0) as u64
    };
    // Every worker folded to the same path, caught at every tick.
    assert_eq!(count_of("prof.worker;prof.step"), (TICKS * WORKERS) as u64);
    // All samples are accounted somewhere: the counts sum to recorded,
    // which (with zero drops) is exactly every shard visit.
    let total: u64 = stacks
        .iter()
        .map(|s| s.get("count").and_then(Value::as_f64).unwrap_or(0.0) as u64)
        .sum();
    assert_eq!(total, (TICKS * shards) as u64);
}

#[test]
fn contained_panic_with_sampler_attached_poisons_nothing() {
    let _g = guard();
    batnet_obs::reset();
    let thread = SamplerThread::spawn(5_000);
    // The concurrency-test scenario, now under live sampling: a handler
    // panics with a span open; the worker catches it.
    let result = std::panic::catch_unwind(|| {
        let _doomed = Span::enter("request.doomed");
        batnet_obs::counter_add("requests.before-panic", 1);
        panic!("handler blew up");
    });
    assert!(result.is_err(), "the panic must reach catch_unwind");
    // Telemetry keeps working on this thread and fresh ones...
    batnet_obs::counter_add("requests.after-panic", 1);
    let _next = Span::enter("request.next");
    drop(_next);
    std::thread::spawn(|| batnet_obs::counter_add("requests.after-panic", 1))
        .join()
        .expect("post-panic worker");
    // ...and so does the sampler: it keeps ticking after the unwind and
    // its window still renders and balances.
    let before = thread.sampler().stats().ticks;
    loop {
        if thread.sampler().stats().ticks > before {
            break;
        }
        std::thread::yield_now();
    }
    let sampler = thread.stop();
    let doc = json::parse(&sampler.take_profile()).expect("profile parses");
    batnet_obs::report::validate_profile(&doc).expect("post-panic profile validates");

    let report = batnet_obs::capture();
    assert_eq!(report.counter("requests.before-panic"), Some(1));
    assert_eq!(report.counter("requests.after-panic"), Some(2));
    assert_eq!(report.span_count("request.doomed"), 1);
    // Read-only contract: nothing the sampler did shows up in the run's
    // own books.
    assert!(
        !report.metrics.keys().any(|k| k.starts_with("obs.sampler.")),
        "sampler leaked into the metric registry"
    );
}
