//! Trace export: render a span forest as Chrome `trace.json` (loadable
//! in Perfetto / `chrome://tracing`) or as folded-stack flamegraph text.
//!
//! Chrome format: one complete event (`"ph": "X"`) per span, timestamps
//! and durations in microseconds. Two renderers share it:
//! [`chrome_trace`] works from a [`SpanNode`] forest (e.g. a report's
//! JSON span tree, which carries no thread identity) and assigns one
//! `tid` per root tree; [`chrome_trace_records`] works from in-process
//! [`SpanRecord`]s and renders one `tid` per recording OS thread, with
//! cross-thread parent links preserved in each event's `args.parent` —
//! the faithful rendering of a multi-threaded run. Folded format: one
//! line per distinct span path — `root;child;leaf <self-time-µs>` —
//! ready for `flamegraph.pl` or speedscope.
//!
//! Both renderers work from a [`SpanNode`] forest, which can be built
//! from in-process [`SpanRecord`]s ([`forest_from_records`]) or from a
//! parsed run-report JSON document ([`forest_from_json`]) — the
//! `obs-trace` binary uses the latter so any committed `BENCH_*.json`
//! or report file can be exported after the fact.

use crate::attr;
use crate::json::{self, Value};
use crate::span::SpanRecord;
use std::fmt::Write as _;

/// One span in tree form.
#[derive(Clone, Debug, PartialEq)]
pub struct SpanNode {
    /// Span name.
    pub name: String,
    /// Start offset from the run epoch, nanoseconds.
    pub start_ns: u64,
    /// Duration in nanoseconds (0 for spans still open at capture).
    pub dur_ns: u64,
    /// Nested children, in open order.
    pub children: Vec<SpanNode>,
}

impl SpanNode {
    /// Nodes in this subtree (self included).
    pub fn size(&self) -> usize {
        1 + self.children.iter().map(SpanNode::size).sum::<usize>()
    }

    /// Self time: duration minus direct children, clamped at zero.
    pub fn self_ns(&self) -> u64 {
        let kids: u64 = self.children.iter().map(|c| c.dur_ns).sum();
        self.dur_ns.saturating_sub(kids)
    }
}

/// Builds the forest from flat records (parent indices → tree).
pub fn forest_from_records(spans: &[SpanRecord]) -> Vec<SpanNode> {
    fn build(i: usize, spans: &[SpanRecord], children: &[Vec<usize>]) -> SpanNode {
        SpanNode {
            name: spans[i].name.clone(),
            start_ns: spans[i].start_ns,
            dur_ns: spans[i].dur_ns.unwrap_or(0),
            children: children[i].iter().map(|&c| build(c, spans, children)).collect(),
        }
    }
    let mut children: Vec<Vec<usize>> = vec![Vec::new(); spans.len()];
    let mut roots: Vec<usize> = Vec::new();
    for (i, s) in spans.iter().enumerate() {
        match s.parent {
            Some(p) if p < spans.len() => children[p].push(i),
            _ => roots.push(i),
        }
    }
    roots.iter().map(|&r| build(r, spans, &children)).collect()
}

/// Builds the forest from the `"spans"` section of a parsed run-report
/// document (the nested `{name, start_ms, ms, children}` shape).
pub fn forest_from_json(report: &Value) -> Result<Vec<SpanNode>, String> {
    fn node(v: &Value) -> Result<SpanNode, String> {
        let name = v
            .get("name")
            .and_then(Value::as_str)
            .ok_or("span missing string \"name\"")?
            .to_string();
        let start_ms = v
            .get("start_ms")
            .and_then(Value::as_f64)
            .ok_or("span missing numeric \"start_ms\"")?;
        let dur_ms = match v.get("ms") {
            Some(Value::Num(n)) => *n,
            Some(Value::Null) | None => 0.0,
            _ => return Err("span \"ms\" must be number or null".to_string()),
        };
        let children = v
            .get("children")
            .and_then(Value::as_arr)
            .ok_or("span missing array \"children\"")?
            .iter()
            .map(node)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(SpanNode {
            name,
            start_ns: (start_ms.max(0.0) * 1e6) as u64,
            dur_ns: (dur_ms.max(0.0) * 1e6) as u64,
            children,
        })
    }
    report
        .get("spans")
        .and_then(Value::as_arr)
        .ok_or("document has no \"spans\" array")?
        .iter()
        .map(node)
        .collect()
}

fn us(ns: u64) -> f64 {
    ns as f64 / 1e3
}

/// Renders the forest as Chrome trace JSON: `ph: "X"` complete events,
/// microsecond timestamps, `pid` 1, one `tid` per root tree. Events are
/// emitted in depth-first start order, so `ts` is monotone within each
/// `tid` (spans on one thread open in start order).
pub fn chrome_trace(forest: &[SpanNode]) -> String {
    fn emit(out: &mut String, node: &SpanNode, tid: usize, first: &mut bool) {
        if !*first {
            out.push_str(",\n ");
        }
        *first = false;
        out.push_str("{\"name\": ");
        json::write_str(out, &node.name);
        out.push_str(", \"cat\": \"batnet\", \"ph\": \"X\", \"ts\": ");
        json::write_f64(out, us(node.start_ns));
        out.push_str(", \"dur\": ");
        json::write_f64(out, us(node.dur_ns));
        let _ = write!(out, ", \"pid\": 1, \"tid\": {tid}}}");
        for c in &node.children {
            emit(out, c, tid, first);
        }
    }
    let mut out = String::with_capacity(4096);
    out.push_str("{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n ");
    let mut first = true;
    for (i, root) in forest.iter().enumerate() {
        emit(&mut out, root, i + 1, &mut first);
    }
    out.push_str("\n]}");
    out
}

/// Renders flat records as Chrome trace JSON with one `tid` per
/// recording OS thread (`record.tid + 1`; Chrome reserves low ids for
/// its own rows). Records arrive in global open order and each thread's
/// spans open in start order, so `ts` stays monotone within every
/// `tid`. A span whose parent lives on another thread keeps the link in
/// `args.parent` (the parent's index in the record list), which
/// Perfetto surfaces in the event detail pane.
pub fn chrome_trace_records(spans: &[SpanRecord]) -> String {
    let mut out = String::with_capacity(4096);
    out.push_str("{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n ");
    for (i, s) in spans.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n ");
        }
        out.push_str("{\"name\": ");
        json::write_str(&mut out, &s.name);
        out.push_str(", \"cat\": \"batnet\", \"ph\": \"X\", \"ts\": ");
        json::write_f64(&mut out, us(s.start_ns));
        out.push_str(", \"dur\": ");
        json::write_f64(&mut out, us(s.dur_ns.unwrap_or(0)));
        let _ = write!(out, ", \"pid\": 1, \"tid\": {}", s.tid + 1);
        match s.parent {
            Some(p) => {
                let _ = write!(out, ", \"args\": {{\"parent\": {p}}}}}");
            }
            None => out.push('}'),
        }
    }
    out.push_str("\n]}");
    out
}

/// Renders the forest as folded-stack text: `path;to;span <self-µs>`
/// per line, repeated paths merged, zero-self-time paths kept only when
/// they are leaves (interior zero rows are pure structure).
pub fn folded(forest: &[SpanNode]) -> String {
    fn walk(out: &mut String, node: &SpanNode, prefix: &str) {
        let path = if prefix.is_empty() {
            node.name.clone()
        } else {
            format!("{prefix};{}", node.name)
        };
        let self_us = node.self_ns() / 1_000;
        if self_us > 0 || node.children.is_empty() {
            let _ = writeln!(out, "{path} {self_us}");
        }
        for c in &node.children {
            walk(out, c, &path);
        }
    }
    let mut out = String::new();
    for root in forest {
        walk(&mut out, root, "");
    }
    out
}

/// Renders folded-stack text directly from flat records, merging
/// repeated paths via [`attr::path_totals`].
pub fn folded_from_records(spans: &[SpanRecord]) -> String {
    let mut out = String::new();
    for (path, t) in attr::path_totals(spans) {
        let self_us = t.self_ns / 1_000;
        if self_us > 0 {
            let _ = writeln!(out, "{path} {self_us}");
        }
    }
    out
}

/// Validates a parsed Chrome trace document: a `traceEvents` array in
/// which every event is a complete (`ph: "X"`) event with a string
/// name and non-negative numeric `ts`/`dur`/`pid`/`tid`. This is the
/// subset Perfetto needs to load the file.
pub fn validate_chrome_trace(v: &Value) -> Result<(), String> {
    let events = v
        .get("traceEvents")
        .and_then(Value::as_arr)
        .ok_or("missing array \"traceEvents\"")?;
    for (i, e) in events.iter().enumerate() {
        if e.get("name").and_then(Value::as_str).is_none() {
            return Err(format!("event {i}: missing string \"name\""));
        }
        if e.get("ph").and_then(Value::as_str) != Some("X") {
            return Err(format!("event {i}: \"ph\" must be \"X\""));
        }
        for k in ["ts", "dur", "pid", "tid"] {
            match e.get(k).and_then(Value::as_f64) {
                Some(n) if n >= 0.0 => {}
                _ => return Err(format!("event {i}: missing non-negative numeric \"{k}\"")),
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn forest() -> Vec<SpanNode> {
        vec![
            SpanNode {
                name: "run".into(),
                start_ns: 0,
                dur_ns: 100_000,
                children: vec![
                    SpanNode {
                        name: "parse".into(),
                        start_ns: 1_000,
                        dur_ns: 30_000,
                        children: vec![],
                    },
                    SpanNode {
                        name: "route".into(),
                        start_ns: 40_000,
                        dur_ns: 50_000,
                        children: vec![],
                    },
                ],
            },
            SpanNode {
                name: "worker".into(),
                start_ns: 5_000,
                dur_ns: 20_000,
                children: vec![],
            },
        ]
    }

    #[test]
    fn chrome_trace_validates_and_counts_events() {
        let f = forest();
        let total: usize = f.iter().map(SpanNode::size).sum();
        let text = chrome_trace(&f);
        let v = json::parse(&text).expect("trace parses");
        validate_chrome_trace(&v).expect("trace validates");
        let events = v.get("traceEvents").and_then(Value::as_arr).expect("events");
        assert_eq!(events.len(), total);
        // Root trees land on distinct tids; ts is monotone within one.
        let tid0 = events[0].get("tid").and_then(Value::as_f64);
        let tid_last = events[events.len() - 1].get("tid").and_then(Value::as_f64);
        assert_ne!(tid0, tid_last);
        let mut last_ts = f64::MIN;
        for e in events.iter().filter(|e| e.get("tid").and_then(Value::as_f64) == tid0) {
            let ts = e.get("ts").and_then(Value::as_f64).expect("ts");
            assert!(ts >= last_ts, "ts monotone within a tid");
            last_ts = ts;
        }
    }

    #[test]
    fn chrome_trace_records_keeps_thread_tids_and_parent_links() {
        use crate::span::SpanRecord;
        let rec = |name: &str, parent: Option<usize>, start: u64, tid: u64| SpanRecord {
            name: name.to_string(),
            parent,
            start_ns: start,
            dur_ns: Some(10_000),
            tid,
        };
        // A cross-thread forest: worker spans parent under the main
        // thread's root but record on their own thread.
        let spans = vec![
            rec("root", None, 0, 0),
            rec("worker", Some(0), 1_000, 1),
            rec("worker.inner", Some(1), 2_000, 1),
            rec("main.next", Some(0), 3_000, 0),
        ];
        let v = json::parse(&chrome_trace_records(&spans)).expect("trace parses");
        validate_chrome_trace(&v).expect("trace validates");
        let events = v.get("traceEvents").and_then(Value::as_arr).expect("events");
        assert_eq!(events.len(), spans.len());
        let tid = |i: usize| events[i].get("tid").and_then(Value::as_f64).expect("tid");
        assert_eq!((tid(0), tid(1), tid(2), tid(3)), (1.0, 2.0, 2.0, 1.0));
        // The cross-thread parent link survives in args.
        let parent = |i: usize| {
            events[i]
                .get("args")
                .and_then(|a| a.get("parent"))
                .and_then(Value::as_f64)
        };
        assert_eq!(parent(1), Some(0.0));
        assert_eq!(parent(2), Some(1.0));
        assert_eq!(parent(0), None);
        // ts monotone within each tid.
        for t in [1.0, 2.0] {
            let mut last = f64::MIN;
            for e in events.iter().filter(|e| e.get("tid").and_then(Value::as_f64) == Some(t)) {
                let ts = e.get("ts").and_then(Value::as_f64).expect("ts");
                assert!(ts >= last);
                last = ts;
            }
        }
    }

    #[test]
    fn validator_rejects_non_complete_events() {
        let bad = r#"{"traceEvents": [{"name": "x", "ph": "B", "ts": 0, "dur": 1, "pid": 1, "tid": 1}]}"#;
        let v = json::parse(bad).expect("parses");
        assert!(validate_chrome_trace(&v).is_err());
        let missing = r#"{"traceEvents": [{"name": "x", "ph": "X", "ts": 0, "pid": 1, "tid": 1}]}"#;
        let v = json::parse(missing).expect("parses");
        assert!(validate_chrome_trace(&v).unwrap_err().contains("dur"));
        let v = json::parse("{}").expect("parses");
        assert!(validate_chrome_trace(&v).is_err());
    }

    #[test]
    fn folded_output_has_self_times() {
        let text = folded(&forest());
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines.contains(&"run 20")); // 100 - 80 µs
        assert!(lines.contains(&"run;parse 30"));
        assert!(lines.contains(&"run;route 50"));
        assert!(lines.contains(&"worker 20"));
    }

    #[test]
    fn forest_roundtrips_through_report_json() {
        let _g = crate::span::test_guard();
        crate::reset();
        {
            let _root = crate::Span::enter("pipeline");
            let _child = crate::Span::enter("stage");
        }
        let report = crate::capture();
        let from_records = forest_from_records(&report.spans);
        let parsed = json::parse(&report.to_json()).expect("report parses");
        let from_json = forest_from_json(&parsed).expect("forest from JSON");
        assert_eq!(from_json.len(), from_records.len());
        assert_eq!(from_json[0].name, "pipeline");
        assert_eq!(from_json[0].children[0].name, "stage");
        // JSON carries ms at µs precision; the shapes must agree even if
        // the low nanoseconds differ.
        assert_eq!(
            from_json.iter().map(SpanNode::size).sum::<usize>(),
            report.spans.len()
        );
    }
}
