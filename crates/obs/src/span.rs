//! Lightweight always-on spans: RAII wall-clock timing with nesting.
//!
//! A [`Span`] records one named region of work. Nesting is tracked per
//! thread (a span opened while another is open on the same thread
//! becomes its child), so the pipeline's natural call structure becomes
//! the report's span tree. Spans opened on worker threads have no
//! parent and appear as additional roots — coarse-grained stages are
//! opened on the orchestrating thread, so in practice the tree mirrors
//! the pipeline.
//!
//! Cost model: one mutex lock at open and one at close. Spans wrap
//! *stages* (parse, route, graph build, one reach query), not inner
//! loops, so the recorder never becomes a hot path.

use crate::clock;
use std::cell::RefCell;
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

/// One finished-or-open span as recorded.
#[derive(Clone, Debug)]
pub struct SpanRecord {
    /// Span name, e.g. `route.simulate`.
    pub name: String,
    /// Index of the parent span in the same recording, if nested.
    pub parent: Option<usize>,
    /// Start offset from the run epoch, in nanoseconds.
    pub start_ns: u64,
    /// Duration in nanoseconds; `None` while the span is still open.
    pub dur_ns: Option<u64>,
}

struct State {
    epoch: Instant,
    generation: u64,
    spans: Vec<SpanRecord>,
}

fn state() -> &'static Mutex<State> {
    static S: OnceLock<Mutex<State>> = OnceLock::new();
    S.get_or_init(|| {
        Mutex::new(State {
            epoch: clock::now(),
            generation: 0,
            spans: Vec::new(),
        })
    })
}

fn lock() -> std::sync::MutexGuard<'static, State> {
    state().lock().unwrap_or_else(|e| e.into_inner())
}

thread_local! {
    static STACK: RefCell<Vec<usize>> = const { RefCell::new(Vec::new()) };
}

/// An open span; closing (drop or [`Span::close`]) records the
/// duration.
pub struct Span {
    idx: usize,
    generation: u64,
    start: Instant,
}

impl Span {
    /// Opens a span. The parent is the innermost span still open on
    /// this thread.
    pub fn enter(name: impl Into<String>) -> Span {
        let start = clock::now();
        let mut st = lock();
        let parent = STACK.with(|s| s.borrow().last().copied());
        let idx = st.spans.len();
        let start_ns = start.saturating_duration_since(st.epoch).as_nanos() as u64;
        st.spans.push(SpanRecord {
            name: name.into(),
            parent,
            start_ns,
            dur_ns: None,
        });
        let generation = st.generation;
        drop(st);
        STACK.with(|s| s.borrow_mut().push(idx));
        Span {
            idx,
            generation,
            start,
        }
    }

    /// Wall clock since this span opened (the span stays open).
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Closes the span now and returns its duration. Equivalent to
    /// dropping, but hands the caller the measured time (the bench
    /// harness builds its rows from this).
    pub fn close(self) -> Duration {
        let d = self.start.elapsed();
        drop(self);
        d
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let dur = self.start.elapsed();
        let mut st = lock();
        // A reset between enter and drop invalidates the index; skip.
        if st.generation == self.generation {
            if let Some(rec) = st.spans.get_mut(self.idx) {
                rec.dur_ns = Some(dur.as_nanos() as u64);
            }
        }
        drop(st);
        let idx = self.idx;
        STACK.with(|s| {
            let mut stack = s.borrow_mut();
            if let Some(pos) = stack.iter().rposition(|&i| i == idx) {
                stack.remove(pos);
            }
        });
    }
}

/// Snapshot of every span recorded since the last reset.
pub(crate) fn snapshot_spans() -> Vec<SpanRecord> {
    lock().spans.clone()
}

/// Clears recorded spans and restarts the epoch.
pub(crate) fn reset_spans() {
    let mut st = lock();
    st.epoch = clock::now();
    st.generation += 1;
    st.spans.clear();
    drop(st);
    STACK.with(|s| s.borrow_mut().clear());
}

#[cfg(test)]
pub(crate) fn test_guard() -> std::sync::MutexGuard<'static, ()> {
    // Serializes tests that reset the global recorder.
    static G: OnceLock<Mutex<()>> = OnceLock::new();
    G.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nesting_and_ordering() {
        let _g = test_guard();
        crate::reset();
        {
            let _root = Span::enter("root");
            {
                let _a = Span::enter("a");
            }
            {
                let _b = Span::enter("b");
                let _c = Span::enter("c");
            }
        }
        let spans = snapshot_spans();
        assert_eq!(spans.len(), 4);
        let by_name = |n: &str| spans.iter().position(|s| s.name == n).expect(n);
        let (root, a, b, c) = (by_name("root"), by_name("a"), by_name("b"), by_name("c"));
        assert_eq!(spans[root].parent, None);
        assert_eq!(spans[a].parent, Some(root));
        assert_eq!(spans[b].parent, Some(root));
        assert_eq!(spans[c].parent, Some(b));
        // Records appear in open order and all closed.
        assert!(spans.iter().all(|s| s.dur_ns.is_some()));
        assert!(spans[a].start_ns >= spans[root].start_ns);
        assert!(spans[b].start_ns >= spans[a].start_ns);
        // Children close within (or equal to) the parent's window.
        let end = |i: usize| spans[i].start_ns + spans[i].dur_ns.unwrap();
        assert!(end(c) <= end(root));
    }

    #[test]
    fn close_returns_duration_and_records() {
        let _g = test_guard();
        crate::reset();
        let s = Span::enter("timed");
        std::thread::sleep(Duration::from_millis(2));
        let d = s.close();
        assert!(d >= Duration::from_millis(2));
        let spans = snapshot_spans();
        assert_eq!(spans.len(), 1);
        let rec = spans[0].dur_ns.expect("closed");
        assert!(rec >= 2_000_000, "recorded {rec}ns");
    }

    #[test]
    fn reset_invalidates_open_spans_safely() {
        let _g = test_guard();
        crate::reset();
        let s = Span::enter("stale");
        crate::reset();
        drop(s); // must not panic or resurrect the record
        assert!(snapshot_spans().is_empty());
    }

    #[test]
    fn worker_thread_spans_are_roots() {
        let _g = test_guard();
        crate::reset();
        let _root = Span::enter("main-thread");
        std::thread::spawn(|| {
            let _w = Span::enter("worker");
        })
        .join()
        .expect("worker thread");
        let spans = snapshot_spans();
        let w = spans.iter().find(|s| s.name == "worker").expect("worker");
        assert_eq!(w.parent, None, "cross-thread spans do not inherit parents");
    }
}
