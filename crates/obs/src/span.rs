//! Lightweight always-on spans: RAII wall-clock timing with nesting.
//!
//! A [`Span`] records one named region of work. Nesting is tracked per
//! thread (a span opened while another is open on the same thread
//! becomes its child), so the pipeline's natural call structure becomes
//! the report's span tree. Cross-thread structure is explicit: a span
//! hands out a cheap, `Send` [`SpanContext`], and a worker thread that
//! opens its span with [`Span::enter_with_parent`] attaches under that
//! logical parent even though it records into its own thread's shard.
//! A worker span opened without a context stays a root of its own tree.
//!
//! Cost model: every open and close touches only the calling thread's
//! shard (an uncontended mutex) plus one relaxed atomic fetch for the
//! globally unique open sequence. Spans wrap *stages* (parse, route,
//! graph build, one reach query, one served request), not inner loops,
//! so the recorder never becomes a hot path. The merge that produces a
//! flat [`SpanRecord`] list happens only at capture: records sort by
//! open sequence, which is the single-thread open order and is always
//! topological (a parent is open — hence sequenced — before any child).

use crate::clock;
use crate::shard::{self, Shard};
use std::cell::RefCell;
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One finished-or-open span as recorded, after the capture-time merge.
#[derive(Clone, Debug)]
pub struct SpanRecord {
    /// Span name, e.g. `route.simulate`.
    pub name: String,
    /// Index of the parent span in the same recording, if nested.
    pub parent: Option<usize>,
    /// Start offset from the run epoch, in nanoseconds.
    pub start_ns: u64,
    /// Duration in nanoseconds; `None` while the span is still open.
    pub dur_ns: Option<u64>,
    /// The recording OS thread (shard registration order, dense from
    /// 0). The Chrome-trace exporter renders one track per value.
    pub tid: u64,
}

/// One span as stored in its thread's shard: identities are global
/// open-sequence numbers, so cross-thread parent links need no shared
/// index space.
#[derive(Clone, Debug)]
pub(crate) struct SpanSlot {
    pub id: u64,
    pub parent: Option<u64>,
    pub name: String,
    pub start_ns: u64,
    pub dur_ns: Option<u64>,
}

/// The globally unique, monotone open sequence. One relaxed fetch per
/// span open; never reset, so merged order is stable across resets.
static NEXT_ID: AtomicU64 = AtomicU64::new(0);

thread_local! {
    // (open-sequence id, interned name id): the id drives parenting,
    // the name id feeds the shard's lock-free stack view for the
    // sampling profiler.
    static STACK: RefCell<Vec<(u64, u32)>> = const { RefCell::new(Vec::new()) };
}

/// Publishes the thread's current stack (already borrowed) to `shard`'s
/// seqlock view. Only ever called from the shard's owning thread.
fn publish_stack(shard: &Shard, stack: &[(u64, u32)]) {
    let frames: Vec<u32> = stack.iter().map(|&(_, nid)| nid).collect();
    shard.stack.publish(&frames);
}

/// A cheap, `Send + Copy` handle to an open (or closed) span, used to
/// parent work that continues on another thread.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpanContext {
    id: u64,
}

/// An open span; closing (drop or [`Span::close`]) records the
/// duration.
pub struct Span {
    shard: Arc<Shard>,
    id: u64,
    start: Instant,
}

impl Span {
    /// Opens a span. The parent is the innermost span still open on
    /// this thread.
    pub fn enter(name: impl Into<String>) -> Span {
        let parent = STACK.with(|s| s.borrow().last().map(|&(id, _)| id));
        Span::open(name.into(), parent)
    }

    /// Opens a span under an explicit parent — the cross-thread form:
    /// capture [`Span::context`] on the spawning thread, move it into
    /// the worker, and the worker's span (and everything nested inside
    /// it on that thread) attaches under the logical parent.
    pub fn enter_with_parent(name: impl Into<String>, ctx: SpanContext) -> Span {
        Span::open(name.into(), Some(ctx.id))
    }

    fn open(name: String, parent: Option<u64>) -> Span {
        let start = clock::now();
        let start_ns = shard::run_ns(start);
        let id = NEXT_ID.fetch_add(1, Ordering::Relaxed);
        let (shard, name_id) = shard::with_local(|s| {
            let mut data = s.lock();
            let name_id = s.intern(&mut data, &name);
            data.spans.push(SpanSlot {
                id,
                parent,
                name,
                start_ns,
                dur_ns: None,
            });
            drop(data);
            (Arc::clone(s), name_id)
        });
        STACK.with(|s| {
            let mut stack = s.borrow_mut();
            stack.push((id, name_id));
            publish_stack(&shard, &stack);
        });
        Span { shard, id, start }
    }

    /// This span's context: `Copy`, `Send`, and valid until the next
    /// [`crate::reset`] (after which children simply become roots).
    pub fn context(&self) -> SpanContext {
        SpanContext { id: self.id }
    }

    /// Wall clock since this span opened (the span stays open).
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Closes the span now and returns its duration. Equivalent to
    /// dropping, but hands the caller the measured time (the bench
    /// harness builds its rows from this).
    pub fn close(self) -> Duration {
        let d = self.start.elapsed();
        drop(self);
        d
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let dur = self.start.elapsed();
        let mut data = self.shard.lock();
        // Closes are LIFO in practice, so the reverse scan is O(1)-ish;
        // a reset (or a `take_tree`) between enter and drop removes the
        // slot, and the close becomes a no-op instead of resurrecting.
        if let Some(slot) = data.spans.iter_mut().rev().find(|s| s.id == self.id) {
            slot.dur_ns = Some(dur.as_nanos().min(u64::MAX as u128) as u64);
        }
        drop(data);
        let id = self.id;
        STACK.with(|s| {
            let mut stack = s.borrow_mut();
            if let Some(pos) = stack.iter().rposition(|&(i, _)| i == id) {
                stack.remove(pos);
                // The stack held our id, so this close runs on the
                // opening thread and `self.shard` is its local shard —
                // the single-writer seqlock invariant holds.
                publish_stack(&self.shard, &stack);
            }
        });
    }
}

/// Merges `(tid, slot)` pairs into the flat, index-parented record list
/// every consumer (report, attr, trace) works on. Sorting by the open
/// sequence makes the order deterministic, topological (parents before
/// children), and — for a single-threaded run — exactly the open order.
fn merge_slots(mut slots: Vec<(u64, SpanSlot)>) -> Vec<SpanRecord> {
    slots.sort_by_key(|(_, s)| s.id);
    let index: std::collections::HashMap<u64, usize> = slots
        .iter()
        .enumerate()
        .map(|(i, (_, s))| (s.id, i))
        .collect();
    slots
        .iter()
        .map(|(tid, s)| SpanRecord {
            name: s.name.clone(),
            parent: s.parent.and_then(|p| index.get(&p).copied()),
            start_ns: s.start_ns,
            dur_ns: s.dur_ns,
            tid: *tid,
        })
        .collect()
}

/// Snapshot of every span recorded since the last reset, merged across
/// all thread shards.
pub(crate) fn snapshot_spans() -> Vec<SpanRecord> {
    let mut slots: Vec<(u64, SpanSlot)> = Vec::new();
    for sh in shard::all() {
        let data = sh.lock();
        slots.extend(data.spans.iter().map(|s| (sh.seq, s.clone())));
    }
    merge_slots(slots)
}

/// Removes the subtree rooted at `ctx` from the recorder and returns it
/// as a self-contained record list (the root's parent becomes `None`).
/// This is how long-running services keep per-request span trees out of
/// the ever-growing global capture: close the request's root span, then
/// take its tree into a bounded ring. Call only after the tree has
/// fully closed; a span still being recorded concurrently into the
/// subtree may be missed (it becomes a root in the next capture).
pub fn take_tree(ctx: SpanContext) -> Vec<SpanRecord> {
    let shards = shard::all();
    // Pass 1: membership. Ids sort topologically, so one forward scan
    // over (id, parent) pairs closes the descendant set.
    let mut pairs: Vec<(u64, Option<u64>)> = Vec::new();
    for sh in &shards {
        let data = sh.lock();
        pairs.extend(data.spans.iter().map(|s| (s.id, s.parent)));
    }
    pairs.sort_unstable_by_key(|&(id, _)| id);
    let mut keep: BTreeSet<u64> = BTreeSet::new();
    for (id, parent) in pairs {
        if id == ctx.id || parent.is_some_and(|p| keep.contains(&p)) {
            keep.insert(id);
        }
    }
    if keep.is_empty() {
        return Vec::new();
    }
    // Pass 2: extraction, one shard at a time.
    let mut taken: Vec<(u64, SpanSlot)> = Vec::new();
    for sh in &shards {
        let mut data = sh.lock();
        if data.spans.iter().all(|s| !keep.contains(&s.id)) {
            continue;
        }
        let mut remaining = Vec::with_capacity(data.spans.len());
        for slot in std::mem::take(&mut data.spans) {
            if keep.contains(&slot.id) {
                taken.push((sh.seq, slot));
            } else {
                remaining.push(slot);
            }
        }
        data.spans = remaining;
    }
    merge_slots(taken)
}

/// Clears the calling thread's nesting stack (part of [`crate::reset`]):
/// spans still open across a reset must not parent post-reset spans.
/// The published stack view is emptied too — but only when this thread
/// already has a shard, and only its own view: other threads' views are
/// single-writer and stale entries there resolve against name tables
/// that survive resets.
pub(crate) fn reset_local_stack() {
    STACK.with(|s| s.borrow_mut().clear());
    shard::try_local(|sh| sh.stack.publish(&[]));
}

#[cfg(test)]
pub(crate) fn test_guard() -> std::sync::MutexGuard<'static, ()> {
    // Serializes tests that reset the global recorder.
    use std::sync::{Mutex, OnceLock};
    static G: OnceLock<Mutex<()>> = OnceLock::new();
    G.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nesting_and_ordering() {
        let _g = test_guard();
        crate::reset();
        {
            let _root = Span::enter("root");
            {
                let _a = Span::enter("a");
            }
            {
                let _b = Span::enter("b");
                let _c = Span::enter("c");
            }
        }
        let spans = snapshot_spans();
        assert_eq!(spans.len(), 4);
        let by_name = |n: &str| spans.iter().position(|s| s.name == n).expect(n);
        let (root, a, b, c) = (by_name("root"), by_name("a"), by_name("b"), by_name("c"));
        assert_eq!(spans[root].parent, None);
        assert_eq!(spans[a].parent, Some(root));
        assert_eq!(spans[b].parent, Some(root));
        assert_eq!(spans[c].parent, Some(b));
        // Records appear in open order and all closed.
        assert!(spans.iter().all(|s| s.dur_ns.is_some()));
        assert!(spans[a].start_ns >= spans[root].start_ns);
        assert!(spans[b].start_ns >= spans[a].start_ns);
        // A single-threaded run records everything on one shard.
        assert!(spans.iter().all(|s| s.tid == spans[root].tid));
        // Children close within (or equal to) the parent's window.
        let end = |i: usize| spans[i].start_ns + spans[i].dur_ns.expect("closed");
        assert!(end(c) <= end(root));
    }

    #[test]
    fn close_returns_duration_and_records() {
        let _g = test_guard();
        crate::reset();
        let s = Span::enter("timed");
        std::thread::sleep(Duration::from_millis(2));
        let d = s.close();
        assert!(d >= Duration::from_millis(2));
        let spans = snapshot_spans();
        assert_eq!(spans.len(), 1);
        let rec = spans[0].dur_ns.expect("closed");
        assert!(rec >= 2_000_000, "recorded {rec}ns");
    }

    #[test]
    fn reset_invalidates_open_spans_safely() {
        let _g = test_guard();
        crate::reset();
        let s = Span::enter("stale");
        crate::reset();
        drop(s); // must not panic or resurrect the record
        assert!(snapshot_spans().is_empty());
    }

    #[test]
    fn worker_thread_spans_without_context_are_roots() {
        let _g = test_guard();
        crate::reset();
        let _root = Span::enter("main-thread");
        std::thread::spawn(|| {
            let _w = Span::enter("worker");
        })
        .join()
        .expect("worker thread");
        let spans = snapshot_spans();
        let w = spans.iter().find(|s| s.name == "worker").expect("worker");
        assert_eq!(w.parent, None, "no context, no inherited parent");
    }

    #[test]
    fn context_parents_across_threads() {
        let _g = test_guard();
        crate::reset();
        let root = Span::enter("orchestrator");
        let ctx = root.context();
        std::thread::spawn(move || {
            let w = Span::enter_with_parent("worker", ctx);
            // Plain nesting continues under the adopted parent.
            let _inner = Span::enter("worker.inner");
            drop(_inner);
            drop(w);
        })
        .join()
        .expect("worker thread");
        drop(root);
        let spans = snapshot_spans();
        let by_name = |n: &str| spans.iter().position(|s| s.name == n).expect(n);
        let (o, w, i) = (
            by_name("orchestrator"),
            by_name("worker"),
            by_name("worker.inner"),
        );
        assert_eq!(spans[w].parent, Some(o), "worker attaches under its context");
        assert_eq!(spans[i].parent, Some(w), "nesting continues on the worker");
        assert_ne!(spans[o].tid, spans[w].tid, "distinct OS threads, distinct tids");
        assert_eq!(spans[w].tid, spans[i].tid);
    }

    #[test]
    fn take_tree_extracts_and_removes_subtree() {
        let _g = test_guard();
        crate::reset();
        let _stay = Span::enter("background");
        let ctx = {
            let req = Span::enter("request");
            let _child = Span::enter("request.child");
            req.context()
        };
        let tree = take_tree(ctx);
        assert_eq!(tree.len(), 2);
        assert_eq!(tree[0].name, "request");
        assert_eq!(tree[0].parent, None, "extracted root is re-rooted");
        assert_eq!(tree[1].parent, Some(0));
        // The background span stays; the request subtree is gone.
        let left = snapshot_spans();
        assert_eq!(left.len(), 1);
        assert_eq!(left[0].name, "background");
        // Taking the same tree again yields nothing.
        assert!(take_tree(ctx).is_empty());
    }
}
