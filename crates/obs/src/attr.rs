//! Performance attribution over the span forest: per-span self time
//! (exclusive of children) and the critical path.
//!
//! Stage totals answer "how long did `route.bgp` take"; attribution
//! answers "which phase *inside* it actually costs the time". Self time
//! is a span's duration minus the durations of its direct children,
//! clamped at zero (children of an open span, or clock jitter at span
//! edges, must never produce negative attribution). The critical path
//! is the chain from the most expensive root through each level's most
//! expensive child — the shortest list of spans a perf investigation
//! should read first.

use crate::span::SpanRecord;
use std::collections::BTreeMap;

/// Per-span self time in nanoseconds, indexed like `spans`. An open
/// span (no duration) attributes zero to itself; its closed children
/// still carry their own time.
pub fn self_times_ns(spans: &[SpanRecord]) -> Vec<u64> {
    let mut child_sum: Vec<u64> = vec![0; spans.len()];
    for s in spans {
        if let (Some(p), Some(d)) = (s.parent, s.dur_ns) {
            if p < spans.len() {
                child_sum[p] = child_sum[p].saturating_add(d);
            }
        }
    }
    spans
        .iter()
        .zip(&child_sum)
        .map(|(s, &c)| s.dur_ns.unwrap_or(0).saturating_sub(c))
        .collect()
}

/// One step of the critical path.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PathStep {
    /// Index into the span list.
    pub index: usize,
    /// Span name.
    pub name: String,
    /// Total duration in nanoseconds.
    pub total_ns: u64,
    /// Self time in nanoseconds (duration minus direct children).
    pub self_ns: u64,
}

/// The critical path: starting from the most expensive closed root,
/// descend into the most expensive closed child until a leaf. Ties
/// break toward the earlier span, so the result is deterministic.
pub fn critical_path(spans: &[SpanRecord]) -> Vec<PathStep> {
    let self_ns = self_times_ns(spans);
    let mut children: Vec<Vec<usize>> = vec![Vec::new(); spans.len()];
    let mut roots: Vec<usize> = Vec::new();
    for (i, s) in spans.iter().enumerate() {
        match s.parent {
            Some(p) if p < spans.len() => children[p].push(i),
            _ => roots.push(i),
        }
    }
    let heaviest = |idxs: &[usize]| -> Option<usize> {
        idxs.iter()
            .copied()
            .filter(|&i| spans[i].dur_ns.is_some())
            .max_by_key(|&i| (spans[i].dur_ns.unwrap_or(0), std::cmp::Reverse(i)))
    };
    let mut path = Vec::new();
    let mut cur = heaviest(&roots);
    while let Some(i) = cur {
        path.push(PathStep {
            index: i,
            name: spans[i].name.clone(),
            total_ns: spans[i].dur_ns.unwrap_or(0),
            self_ns: self_ns[i],
        });
        cur = heaviest(&children[i]);
    }
    path
}

/// Aggregated totals for one span path (root-to-node names joined
/// with `;`, the folded-stack convention).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PathTotals {
    /// Sum of durations over every occurrence of the path.
    pub total_ns: u64,
    /// Sum of self times over every occurrence.
    pub self_ns: u64,
    /// Occurrences of the path in the forest.
    pub count: u64,
}

/// Aggregates the forest by full span path. Repeated paths (the same
/// stage entered once per network, say) merge into one entry — this is
/// the folded-stack view and the unit `obs-diff` compares run reports
/// at.
pub fn path_totals(spans: &[SpanRecord]) -> BTreeMap<String, PathTotals> {
    let self_ns = self_times_ns(spans);
    let mut paths: Vec<String> = Vec::with_capacity(spans.len());
    let mut out: BTreeMap<String, PathTotals> = BTreeMap::new();
    for (i, s) in spans.iter().enumerate() {
        let path = match s.parent {
            Some(p) if p < i => format!("{};{}", paths[p], s.name),
            _ => s.name.clone(),
        };
        let e = out.entry(path.clone()).or_default();
        e.total_ns = e.total_ns.saturating_add(s.dur_ns.unwrap_or(0));
        e.self_ns = e.self_ns.saturating_add(self_ns[i]);
        e.count += 1;
        paths.push(path);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(name: &str, parent: Option<usize>, start: u64, dur: Option<u64>) -> SpanRecord {
        SpanRecord {
            name: name.to_string(),
            parent,
            start_ns: start,
            dur_ns: dur,
            tid: 0,
        }
    }

    #[test]
    fn self_time_subtracts_children_and_clamps() {
        let spans = vec![
            rec("root", None, 0, Some(100)),
            rec("a", Some(0), 10, Some(30)),
            rec("b", Some(0), 50, Some(40)),
            rec("a.inner", Some(1), 12, Some(25)),
        ];
        let st = self_times_ns(&spans);
        assert_eq!(st[0], 30); // 100 - (30 + 40)
        assert_eq!(st[1], 5); // 30 - 25
        assert_eq!(st[2], 40);
        assert_eq!(st[3], 25);
        // Children can over-report (clock edges); self time clamps to 0.
        let spans = vec![rec("root", None, 0, Some(10)), rec("a", Some(0), 0, Some(15))];
        assert_eq!(self_times_ns(&spans)[0], 0);
        // An open span attributes nothing to itself.
        let spans = vec![rec("open", None, 0, None), rec("a", Some(0), 0, Some(5))];
        assert_eq!(self_times_ns(&spans)[0], 0);
    }

    #[test]
    fn critical_path_follows_heaviest_children() {
        let spans = vec![
            rec("small-root", None, 0, Some(10)),
            rec("big-root", None, 0, Some(100)),
            rec("cheap", Some(1), 0, Some(20)),
            rec("costly", Some(1), 20, Some(70)),
            rec("leaf", Some(3), 20, Some(60)),
            rec("open-child", Some(3), 25, None),
        ];
        let steps = critical_path(&spans);
        let path: Vec<&str> = steps.iter().map(|p| p.name.as_str()).collect();
        assert_eq!(path, ["big-root", "costly", "leaf"]);
        assert_eq!(steps[1].self_ns, 10); // 70 - 60
        assert!(critical_path(&[]).is_empty());
    }

    #[test]
    fn path_totals_merge_repeats() {
        let spans = vec![
            rec("run", None, 0, Some(100)),
            rec("stage", Some(0), 0, Some(30)),
            rec("stage", Some(0), 40, Some(50)),
        ];
        let totals = path_totals(&spans);
        let stage = &totals["run;stage"];
        assert_eq!(stage.total_ns, 80);
        assert_eq!(stage.count, 2);
        assert_eq!(totals["run"].self_ns, 20);
    }
}
