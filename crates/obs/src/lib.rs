//! # batnet-obs — zero-dependency observability
//!
//! The paper's evaluation (§6, Table 2) is built on *per-stage* pipeline
//! measurements, and its Lesson-3 experience is that operators only trust
//! an analyzer that can account for what it did to each input (parse
//! coverage red flags, §4.1). This crate is that accounting layer,
//! in-tree and dependency-free (the workspace is offline):
//!
//! * **Spans** ([`span`]) — RAII wall-clock timing with nesting, cheap
//!   enough to be always-on. Every pipeline stage (`snapshot.parse`,
//!   `route.simulate`, `graph.build`, `reach.*`) opens a span.
//! * **Metrics** ([`metrics`]) — a typed registry of counters, gauges,
//!   and log2-bucketed histograms fed from the stages: parse line
//!   coverage per dialect, routing sweeps and RIB deltas, BDD node
//!   counts and apply-cache hit rates, reach query sizes.
//! * **Events** ([`metrics::event`]) — bridged quarantine reasons and
//!   governor trips, timestamped against the run epoch.
//! * **Run reports** ([`report`]) — one JSON document per run capturing
//!   the span tree, metric snapshot, events, and quarantine/partial
//!   accounting. Serialization is a hand-rolled writer ([`json`], no
//!   serde); the same module carries a minimal parser so reports can be
//!   validated in-tree (the `obs-validate` bin and the chaos harness).
//! * **Attribution** ([`attr`]) — per-span self time (exclusive of
//!   children) and the critical path, so reports answer "which phase
//!   inside a stage costs the time", not only stage totals.
//! * **Trace export** ([`trace`]) — any span forest renders as Chrome
//!   `trace.json` (Perfetto-loadable) or folded-stack flamegraph text;
//!   the `obs-trace` bin exports committed reports after the fact.
//! * **Memory accounting** ([`mem`]) — a counting global allocator
//!   behind the `alloc-track` feature, with windowed peak/delta
//!   measurement for per-stage memory gauges.
//! * **Regression diffing** ([`diff`]) — noise-aware comparison of two
//!   bench files or run reports (`max(k·MAD, pct·base, abs floor)`
//!   thresholds); the `obs-diff` bin is the CI gate built on it.
//!
//! All state is process-global and reset with [`reset`]: a *run* is
//! "reset → build snapshot → analyze → [`report::capture`]". The
//! recorder is thread-safe (spans opened on worker threads become roots
//! of their own subtrees), but `reset` must not race with open spans —
//! call it only at orchestration points.
//!
//! Timing discipline: a workspace clippy gate disallows
//! `std::time::Instant::now` everywhere else, so all timing flows
//! through [`clock::now`] or spans and is therefore observable.

pub mod attr;
pub mod clock;
pub mod diff;
pub mod json;
pub mod mem;
pub mod metrics;
pub mod report;
pub mod span;
pub mod trace;

pub use clock::now;
pub use mem::{MemStats, MemWindow};
pub use metrics::{counter_add, event, gauge_set, observe};
pub use report::{capture, RunReport};
pub use span::Span;

/// Clears all recorded spans, metrics, and events and restarts the run
/// epoch. Call at the start of a run (harness iteration, chaos run,
/// test); must not race with open spans.
pub fn reset() {
    span::reset_spans();
    metrics::reset_metrics();
}
