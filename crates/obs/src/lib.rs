//! # batnet-obs — zero-dependency observability
//!
//! The paper's evaluation (§6, Table 2) is built on *per-stage* pipeline
//! measurements, and its Lesson-3 experience is that operators only trust
//! an analyzer that can account for what it did to each input (parse
//! coverage red flags, §4.1). This crate is that accounting layer,
//! in-tree and dependency-free (the workspace is offline):
//!
//! * **Spans** ([`span`]) — RAII wall-clock timing with nesting, cheap
//!   enough to be always-on. Every pipeline stage (`snapshot.parse`,
//!   `route.simulate`, `graph.build`, `reach.*`) opens a span. Work
//!   that fans out to worker threads carries a [`span::SpanContext`]
//!   across, so cross-thread spans keep their logical parent.
//! * **Metrics** ([`metrics`]) — a typed registry of counters, gauges,
//!   and log2-bucketed histograms fed from the stages: parse line
//!   coverage per dialect, routing sweeps and RIB deltas, BDD node
//!   counts and apply-cache hit rates, reach query sizes.
//! * **Events** ([`metrics::event`]) — bridged quarantine reasons and
//!   governor trips, timestamped against the run epoch.
//! * **Run reports** ([`report`]) — one JSON document per run capturing
//!   the span tree, metric snapshot, events, and quarantine/partial
//!   accounting. Serialization is a hand-rolled writer ([`json`], no
//!   serde); the same module carries a minimal parser so reports can be
//!   validated in-tree (the `obs-validate` bin and the chaos harness).
//! * **Attribution** ([`attr`]) — per-span self time (exclusive of
//!   children) and the critical path, so reports answer "which phase
//!   inside a stage costs the time", not only stage totals.
//! * **Trace export** ([`trace`]) — any span forest renders as Chrome
//!   `trace.json` (Perfetto-loadable) or folded-stack flamegraph text;
//!   the `obs-trace` bin exports committed reports after the fact.
//! * **Memory accounting** ([`mem`]) — a counting global allocator
//!   behind the `alloc-track` feature, with windowed peak/delta
//!   measurement for per-stage memory gauges.
//! * **Continuous profiling** ([`sampler`]) — an always-on sampling
//!   profiler: each shard publishes its live open-span stack through a
//!   single-writer seqlock, a sampler folds periodic snapshots into
//!   flamegraph counts (`batnet-prof/v1` JSON), and its own cost is
//!   strictly accounted. Powers `batnet-serve /profilez` and
//!   `harness --profile`.
//! * **Regression diffing** ([`diff`]) — noise-aware comparison of two
//!   bench files or run reports (`max(k·MAD, pct·base, abs floor)`
//!   thresholds); the `obs-diff` bin is the CI gate built on it.
//!
//! The recorder is sharded per OS thread ([`shard`]): recording touches
//! only the calling thread's state, so concurrent workers never
//! serialize on a global lock, and [`report::capture`] performs a
//! deterministic merge (spans by global open order, counters summed,
//! gauges by write stamp, events by timestamp). A single-threaded run
//! has one shard, so its reports are byte-identical with the
//! pre-sharding recorder — pinned by the committed golden fixture.
//!
//! All state is process-global and reset with [`reset`]: a *run* is
//! "reset → build snapshot → analyze → [`report::capture`]". `reset`
//! must not race with open spans or in-flight requests — call it only
//! at orchestration points.
//!
//! Timing discipline: a workspace clippy gate disallows
//! `std::time::Instant::now` everywhere else, so all timing flows
//! through [`clock::now`] or spans and is therefore observable. A
//! second gate bans `.lock().unwrap()` in this crate: every recorder
//! lock recovers from poisoning (`PoisonError::into_inner`), because a
//! contained panic in a serve worker must never disable telemetry.

pub mod attr;
pub mod clock;
pub mod diff;
pub mod json;
pub mod mem;
pub mod metrics;
pub mod report;
pub mod sampler;
pub(crate) mod shard;
pub mod span;
pub mod trace;

pub use clock::now;
pub use mem::{MemStats, MemWindow};
pub use metrics::{counter_add, event, gauge_set, observe};
pub use report::{capture, RunReport};
pub use sampler::{Sampler, SamplerStats, SamplerThread};
pub use span::{take_tree, Span, SpanContext};

/// Clears all recorded spans, metrics, and events and restarts the run
/// epoch. Call at the start of a run (harness iteration, chaos run,
/// test); must not race with open spans.
pub fn reset() {
    shard::reset_all();
    shard::reset_epoch();
    span::reset_local_stack();
}
