//! Memory accounting: a counting global allocator and windowed
//! peak/delta measurement.
//!
//! Behind the `alloc-track` feature (std-only) this module installs a
//! [`CountingAlloc`] as the global allocator: every allocation and
//! deallocation updates two relaxed atomics (current live bytes and the
//! high-water mark), so the overhead is two uncontended atomic ops per
//! heap call — cheap enough to leave on for the bench harness, which
//! enables the feature. Without the feature every accessor returns 0 and
//! [`MemWindow`] measures nothing, so library code can call these
//! unconditionally.
//!
//! **Caveats** (also in DESIGN.md §5d): the counters are process-global,
//! so a [`MemWindow`] sees allocations from *all* threads, and windows
//! must not nest — [`MemWindow::open`] resets the shared high-water mark,
//! so an inner window would truncate the outer window's peak. The bench
//! harness opens windows only around sequential top-level stages;
//! library code records plain [`current_bytes`] deltas instead.

#[cfg(feature = "alloc-track")]
mod imp {
    use std::alloc::{GlobalAlloc, Layout, System};
    use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

    static CURRENT: AtomicU64 = AtomicU64::new(0);
    static PEAK: AtomicU64 = AtomicU64::new(0);

    fn add(n: usize) {
        let cur = CURRENT.fetch_add(n as u64, Relaxed) + n as u64;
        PEAK.fetch_max(cur, Relaxed);
    }

    fn sub(n: usize) {
        CURRENT.fetch_sub(n as u64, Relaxed);
    }

    /// The counting allocator: delegates to [`System`] and keeps live /
    /// peak byte counts.
    pub struct CountingAlloc;

    // SAFETY: delegates verbatim to `System`; the accounting never
    // touches the returned pointers.
    unsafe impl GlobalAlloc for CountingAlloc {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            let p = System.alloc(layout);
            if !p.is_null() {
                add(layout.size());
            }
            p
        }

        unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
            let p = System.alloc_zeroed(layout);
            if !p.is_null() {
                add(layout.size());
            }
            p
        }

        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            System.dealloc(ptr, layout);
            sub(layout.size());
        }

        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            let p = System.realloc(ptr, layout, new_size);
            if !p.is_null() {
                sub(layout.size());
                add(new_size);
            }
            p
        }
    }

    #[global_allocator]
    static GLOBAL: CountingAlloc = CountingAlloc;

    pub fn current_bytes() -> u64 {
        CURRENT.load(Relaxed)
    }

    pub fn peak_bytes() -> u64 {
        PEAK.load(Relaxed)
    }

    pub fn reset_peak() {
        PEAK.store(CURRENT.load(Relaxed), Relaxed);
    }
}

/// Whether the counting allocator is compiled in.
pub fn enabled() -> bool {
    cfg!(feature = "alloc-track")
}

/// Live heap bytes right now (0 without `alloc-track`).
pub fn current_bytes() -> u64 {
    #[cfg(feature = "alloc-track")]
    {
        imp::current_bytes()
    }
    #[cfg(not(feature = "alloc-track"))]
    {
        0
    }
}

/// High-water mark since process start or the last [`reset_peak`]
/// (0 without `alloc-track`).
pub fn peak_bytes() -> u64 {
    #[cfg(feature = "alloc-track")]
    {
        imp::peak_bytes()
    }
    #[cfg(not(feature = "alloc-track"))]
    {
        0
    }
}

/// Restarts the high-water mark at the current live count.
pub fn reset_peak() {
    #[cfg(feature = "alloc-track")]
    imp::reset_peak();
}

/// Peak/delta numbers for one closed [`MemWindow`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MemStats {
    /// Peak bytes above the window's starting live count.
    pub peak_bytes: u64,
    /// Bytes retained at close minus bytes live at open (negative when
    /// the window freed more than it allocated).
    pub delta_bytes: i64,
}

/// One measurement window over the global counters. Open around a
/// pipeline stage, close to get that stage's peak and retained delta.
/// Windows must be sequential, never nested (see the module docs).
pub struct MemWindow {
    start: u64,
}

impl MemWindow {
    /// Opens a window: resets the high-water mark to the current live
    /// count and remembers it as the baseline.
    pub fn open() -> MemWindow {
        reset_peak();
        MemWindow {
            start: current_bytes(),
        }
    }

    /// Closes the window and returns its peak/delta accounting.
    pub fn close(self) -> MemStats {
        MemStats {
            peak_bytes: peak_bytes().saturating_sub(self.start),
            delta_bytes: current_bytes() as i64 - self.start as i64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_accounting_is_consistent() {
        // Buffers far larger than anything concurrent unit tests
        // allocate, so the bounds hold despite the global counters.
        const HELD: usize = 1 << 20;
        const DROPPED: usize = 1 << 23;
        let w = MemWindow::open();
        let held: Vec<u8> = vec![7u8; HELD];
        let dropped: Vec<u8> = vec![9u8; DROPPED];
        drop(dropped);
        let stats = w.close();
        drop(held);
        if enabled() {
            // Peak saw both buffers; the delta only the retained one.
            assert!(stats.peak_bytes >= (HELD + DROPPED) as u64, "{stats:?}");
            assert!(stats.delta_bytes >= HELD as i64, "{stats:?}");
            assert!(stats.delta_bytes < DROPPED as i64, "{stats:?}");
        } else {
            assert_eq!(stats, MemStats::default());
        }
    }

    #[test]
    fn disabled_accessors_are_zero_without_feature() {
        if !enabled() {
            assert_eq!(current_bytes(), 0);
            assert_eq!(peak_bytes(), 0);
        }
        reset_peak(); // must be callable either way
    }
}
