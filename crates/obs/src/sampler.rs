//! The always-on sampling profiler: periodic snapshots of every live
//! span stack, folded into flamegraph counts.
//!
//! [`RunReport`](crate::report::RunReport) and [`attr`](crate::attr)
//! explain a run *after* it finishes — useless for a long-running
//! `batnet-serve` process, where the question is "where is time going
//! *right now*". The sampler answers it without touching the span hot
//! path: every per-thread shard publishes its live open-span stack
//! through a single-writer seqlock ([`shard::StackView`]) on span
//! open/close — a handful of relaxed atomic stores — and the sampler
//! walks all registered shards at a configurable cadence, folding each
//! snapshot into a `path → count` map keyed exactly like
//! [`attr::path_totals`](crate::attr::path_totals) (`;`-joined span
//! names). Gauges ride along: the heap (via [`mem`](crate::mem)) is
//! read every tick, and the BDD/memory gauges are snapshotted when the
//! profile is taken.
//!
//! Two discipline rules keep the sampler honest:
//!
//! * **Strict accounting.** Every shard visit is a sample; a sample is
//!   either recorded (including idle stacks, folded as `(idle)`) or
//!   dropped (the seqlock writer out-raced the reader's retry budget) —
//!   `samples == recorded + dropped` always, and snapshots deeper than
//!   the view's frame cap tick `truncated`. The sampler's own wall time
//!   is metered per tick (`overhead_us`). Nothing is silent.
//! * **Read-only.** The sampler never records spans, metrics, or
//!   events into the shard registry — its books live in this module —
//!   so a run's `RunReport` JSON is byte-identical with the sampler on
//!   or off. (Chaos invariant 11 pins this.)
//!
//! [`Sampler::tick`] is the virtual-clock mode: tests drive ticks by
//! hand and get exact sample counts (`ticks × live shards`).
//! [`SamplerThread`] is the wall-clock mode used by `--profile-hz` and
//! `harness --profile`. [`Sampler::take_profile`] snapshots-and-resets
//! the window and renders the deterministic-schema `batnet-prof/v1`
//! JSON validated by `obs-validate --kind profile`.

use crate::clock;
use crate::json;
use crate::shard::{self, StackRead};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::Duration;

/// The folded stack an empty (idle) live stack records as. Idle shards
/// are real samples — hiding them would make busy fractions look
/// inflated — so they fold under a name no span can collide with
/// (span names in this codebase never start with `(`).
pub const IDLE_STACK: &str = "(idle)";

/// One profiling window's accumulation, swapped out wholesale by
/// [`Sampler::take_profile`] so window totals are exactly consistent.
#[derive(Default)]
struct Window {
    /// Folded stack (`;`-joined span names) → occurrences.
    stacks: BTreeMap<String, u64>,
    /// Shard visits: `recorded + dropped`, always.
    samples: u64,
    /// Consistent snapshots folded into `stacks` (idle included).
    recorded: u64,
    /// Snapshots abandoned after the seqlock retry budget.
    dropped: u64,
    /// Snapshots whose live stack was deeper than the view retains.
    truncated: u64,
    /// Ticks in this window.
    ticks: u64,
    /// Sampler wall time spent in this window, nanoseconds.
    overhead_ns: u64,
    /// Heap bytes at the last tick (0 without the counting allocator).
    heap_last: u64,
    /// Max heap bytes seen at any tick in the window.
    heap_max: u64,
    /// Run-epoch nanoseconds when the window opened.
    started_ns: u64,
}

/// The sampling profiler. Shared (`Arc`) between the driving side
/// (a [`SamplerThread`] or a test calling [`Sampler::tick`]) and the
/// reporting side (`/profilez`, `/metricsz` meta, bench artifacts).
pub struct Sampler {
    /// Configured cadence (ticks per second); informational in
    /// virtual-clock use, where the caller *is* the clock.
    hz: u64,
    window: Mutex<Window>,
    // Lifetime totals, never reset by take_profile: the `/metricsz`
    // meta reads these so operators see cumulative sampler cost.
    samples_total: AtomicU64,
    dropped_total: AtomicU64,
    ticks_total: AtomicU64,
    overhead_ns_total: AtomicU64,
}

/// Cumulative sampler accounting (not reset by window snapshots).
#[derive(Clone, Copy, Debug, Default)]
pub struct SamplerStats {
    /// Shard visits since the sampler started.
    pub samples: u64,
    /// Visits abandoned as torn.
    pub dropped: u64,
    /// Ticks since the sampler started.
    pub ticks: u64,
    /// Total sampler wall time, microseconds.
    pub overhead_us: u64,
}

impl Sampler {
    /// A sampler accumulating from "now". `hz` is recorded in profiles
    /// (0 = externally driven / virtual clock).
    pub fn new(hz: u64) -> Sampler {
        Sampler {
            hz,
            window: Mutex::new(Window {
                started_ns: shard::run_ns(clock::now()),
                ..Window::default()
            }),
            samples_total: AtomicU64::new(0),
            dropped_total: AtomicU64::new(0),
            ticks_total: AtomicU64::new(0),
            overhead_ns_total: AtomicU64::new(0),
        }
    }

    fn lock(&self) -> MutexGuard<'_, Window> {
        // Poison recovery, same contract as every recorder lock: a
        // panicking thread must not take profiling down with it.
        self.window.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// One sampling pass over every registered shard. This is the whole
    /// sampler; the wall-clock thread just calls it on a timer, and
    /// tests call it directly (the virtual clock). Returns the number
    /// of shards visited.
    pub fn tick(&self) -> usize {
        let t0 = clock::now();
        let shards = shard::all();
        let mut w = self.lock();
        let mut scratch: Vec<u32> = Vec::with_capacity(16);
        for sh in &shards {
            w.samples += 1;
            match sh.stack.read(&mut scratch) {
                StackRead::Ok { frames, truncated } => {
                    w.recorded += 1;
                    if truncated {
                        w.truncated += 1;
                    }
                    let path = if frames.is_empty() {
                        IDLE_STACK.to_string()
                    } else {
                        sh.resolve_path(&frames)
                    };
                    *w.stacks.entry(path).or_insert(0) += 1;
                }
                StackRead::Torn => w.dropped += 1,
            }
        }
        let heap = crate::mem::current_bytes();
        w.heap_last = heap;
        w.heap_max = w.heap_max.max(heap);
        w.ticks += 1;
        let spent = t0.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        w.overhead_ns += spent;
        drop(w);
        self.samples_total
            .fetch_add(shards.len() as u64, Ordering::Relaxed);
        self.ticks_total.fetch_add(1, Ordering::Relaxed);
        self.overhead_ns_total.fetch_add(spent, Ordering::Relaxed);
        shards.len()
    }

    /// Cumulative accounting since construction (windows don't reset
    /// it). `dropped` is folded in from the current window too.
    pub fn stats(&self) -> SamplerStats {
        let window_dropped = self.lock().dropped;
        SamplerStats {
            samples: self.samples_total.load(Ordering::Relaxed),
            dropped: self.dropped_total.load(Ordering::Relaxed) + window_dropped,
            ticks: self.ticks_total.load(Ordering::Relaxed),
            overhead_us: self.overhead_ns_total.load(Ordering::Relaxed) / 1_000,
        }
    }

    /// Snapshots the current window as a `batnet-prof/v1` JSON document
    /// and resets the window (the `/profilez` contract: each fetch
    /// reports the interval since the previous fetch). Gauge values
    /// with `bdd.` / `mem.` prefixes are read from the live metric
    /// registry at snapshot time — a read-only walk.
    pub fn take_profile(&self) -> String {
        let now_ns = shard::run_ns(clock::now());
        let mut w = self.lock();
        let window = std::mem::replace(
            &mut *w,
            Window {
                started_ns: now_ns,
                ..Window::default()
            },
        );
        drop(w);
        self.dropped_total
            .fetch_add(window.dropped, Ordering::Relaxed);
        render_profile(self.hz, &window, now_ns)
    }
}

/// Renders one window as the deterministic `batnet-prof/v1` document.
fn render_profile(hz: u64, w: &Window, now_ns: u64) -> String {
    let duration_ms = now_ns.saturating_sub(w.started_ns) as f64 / 1_000_000.0;
    let mut out = String::with_capacity(1024);
    out.push_str("{\"schema\": 1, \"kind\": \"batnet-prof/v1\", ");
    let _ = write!(out, "\"hz\": {hz}, \"window\": {{\"ticks\": {}, \"duration_ms\": ", w.ticks);
    json::write_f64(&mut out, (duration_ms * 1000.0).round() / 1000.0);
    let _ = write!(
        out,
        "}}, \"sampler\": {{\"samples\": {}, \"recorded\": {}, \"dropped\": {}, \
         \"truncated\": {}, \"overhead_us\": {}}}, ",
        w.samples,
        w.recorded,
        w.dropped,
        w.truncated,
        w.overhead_ns / 1_000
    );
    out.push_str("\"gauges\": {");
    let mut first = true;
    let mut gauge = |out: &mut String, name: &str, value: f64| {
        if !first {
            out.push_str(", ");
        }
        first = false;
        json::write_str(out, name);
        out.push_str(": ");
        json::write_f64(out, value);
    };
    gauge(&mut out, "heap.current_bytes", w.heap_last as f64);
    gauge(&mut out, "heap.max_bytes", w.heap_max as f64);
    for (name, value) in snapshot_gauges() {
        gauge(&mut out, &name, value);
    }
    out.push_str("}, \"stacks\": [");
    for (i, (stack, count)) in w.stacks.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str("{\"stack\": ");
        json::write_str(&mut out, stack);
        let _ = write!(out, ", \"count\": {count}}}");
    }
    out.push_str("]}");
    out
}

/// Current values of the `bdd.*` / `mem.*` gauges — the BDD node/cache
/// and per-stage memory gauges the pipeline publishes — read without
/// mutating anything.
fn snapshot_gauges() -> Vec<(String, f64)> {
    let (metrics, _, _) = crate::metrics::snapshot_metrics();
    metrics
        .into_iter()
        .filter_map(|(name, v)| match v {
            crate::metrics::MetricValue::Gauge(g)
                if name.starts_with("bdd.") || name.starts_with("mem.") =>
            {
                Some((name, g))
            }
            _ => None,
        })
        .collect()
}

/// The folded flamegraph text for a parsed `batnet-prof/v1` document:
/// one `stack count` line per entry, the format `flamegraph.pl` and
/// speedscope ingest (and the same shape `trace::folded` emits for
/// exact captures).
pub fn profile_folded(doc: &json::Value) -> Result<String, String> {
    if doc.get("kind").and_then(json::Value::as_str) != Some("batnet-prof/v1") {
        return Err("not a batnet-prof/v1 document".to_string());
    }
    let stacks = doc
        .get("stacks")
        .and_then(json::Value::as_arr)
        .ok_or("missing array \"stacks\"")?;
    let mut out = String::new();
    for s in stacks {
        let (Some(stack), Some(count)) = (
            s.get("stack").and_then(json::Value::as_str),
            s.get("count").and_then(json::Value::as_f64),
        ) else {
            return Err("stack entry missing \"stack\"/\"count\"".to_string());
        };
        let _ = writeln!(out, "{stack} {}", count as u64);
    }
    Ok(out)
}

/// A wall-clock sampling thread: ticks a shared [`Sampler`] at `hz`
/// until stopped. Dropping the handle stops and joins it.
pub struct SamplerThread {
    sampler: Arc<Sampler>,
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl SamplerThread {
    /// Starts sampling at `hz` (clamped to [1, 10_000]).
    pub fn spawn(hz: u64) -> SamplerThread {
        let hz = hz.clamp(1, 10_000);
        let sampler = Arc::new(Sampler::new(hz));
        let stop = Arc::new(AtomicBool::new(false));
        let period = Duration::from_nanos(1_000_000_000 / hz);
        let (s, st) = (Arc::clone(&sampler), Arc::clone(&stop));
        let thread = std::thread::Builder::new()
            .name("obs-sampler".to_string())
            .spawn(move || {
                while !st.load(Ordering::Relaxed) {
                    s.tick();
                    std::thread::sleep(period);
                }
            })
            .ok();
        SamplerThread {
            sampler,
            stop,
            thread,
        }
    }

    /// The shared sampler, for `/profilez` and stats reads.
    pub fn sampler(&self) -> Arc<Sampler> {
        Arc::clone(&self.sampler)
    }

    /// Stops the thread and waits for its last tick.
    pub fn stop(mut self) -> Arc<Sampler> {
        self.halt();
        self.sampler()
    }

    fn halt(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for SamplerThread {
    fn drop(&mut self) {
        self.halt();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::Span;

    #[test]
    fn virtual_clock_samples_are_exact() {
        let _g = crate::span::test_guard();
        crate::reset();
        let _root = Span::enter("pipeline");
        let _child = Span::enter("pipeline.stage");
        let sampler = Sampler::new(0);
        let shards = shard::all().len();
        assert!(shards >= 1);
        let ticks = 5;
        for _ in 0..ticks {
            assert_eq!(sampler.tick(), shards);
        }
        let stats = sampler.stats();
        assert_eq!(stats.samples, (ticks * shards) as u64);
        assert_eq!(stats.ticks, ticks as u64);
        let text = sampler.take_profile();
        let doc = json::parse(&text).expect("profile parses");
        crate::report::validate_profile(&doc).expect("profile validates");
        // This thread's stack was pipeline;pipeline.stage at every tick.
        let stacks = doc.get("stacks").and_then(json::Value::as_arr).expect("stacks");
        let ours = stacks
            .iter()
            .find(|s| {
                s.get("stack").and_then(json::Value::as_str)
                    == Some("pipeline;pipeline.stage")
            })
            .expect("our live stack was sampled");
        assert_eq!(
            ours.get("count").and_then(json::Value::as_f64),
            Some(ticks as f64)
        );
    }

    #[test]
    fn take_profile_resets_the_window() {
        let _g = crate::span::test_guard();
        crate::reset();
        let sampler = Sampler::new(97);
        sampler.tick();
        let first = sampler.take_profile();
        let doc = json::parse(&first).expect("parses");
        assert_eq!(
            doc.get("window").and_then(|w| w.get("ticks")).and_then(json::Value::as_f64),
            Some(1.0)
        );
        let second = sampler.take_profile();
        let doc = json::parse(&second).expect("parses");
        crate::report::validate_profile(&doc).expect("empty window still validates");
        assert_eq!(
            doc.get("window").and_then(|w| w.get("ticks")).and_then(json::Value::as_f64),
            Some(0.0)
        );
        // Lifetime stats survive the window reset.
        assert_eq!(sampler.stats().ticks, 1);
    }

    #[test]
    fn idle_stacks_fold_as_idle() {
        let _g = crate::span::test_guard();
        crate::reset();
        let sampler = Sampler::new(0);
        sampler.tick();
        let doc = json::parse(&sampler.take_profile()).expect("parses");
        let stacks = doc.get("stacks").and_then(json::Value::as_arr).expect("stacks");
        assert!(
            stacks.iter().any(|s| {
                s.get("stack").and_then(json::Value::as_str) == Some(IDLE_STACK)
            }),
            "an idle shard must still be accounted"
        );
    }

    #[test]
    fn folded_export_matches_stack_counts() {
        let doc = json::parse(
            r#"{"schema": 1, "kind": "batnet-prof/v1", "hz": 99,
                "window": {"ticks": 2, "duration_ms": 20},
                "sampler": {"samples": 2, "recorded": 2, "dropped": 0,
                            "truncated": 0, "overhead_us": 3},
                "gauges": {}, "stacks": [
                  {"stack": "a;b", "count": 1}, {"stack": "a;c", "count": 1}]}"#,
        )
        .expect("parses");
        let folded = profile_folded(&doc).expect("folds");
        assert_eq!(folded, "a;b 1\na;c 1\n");
        assert!(profile_folded(&json::parse("{}").expect("parses")).is_err());
    }

    #[test]
    fn wall_clock_thread_stops_cleanly() {
        let _g = crate::span::test_guard();
        crate::reset();
        let thread = SamplerThread::spawn(1_000);
        std::thread::sleep(Duration::from_millis(20));
        let sampler = thread.stop();
        let stats = sampler.stats();
        assert!(stats.ticks >= 1, "the thread never ticked");
        assert_eq!(
            stats.samples,
            sampler.stats().samples,
            "stopped sampler no longer accumulates"
        );
    }
}
