//! The typed metrics registry: counters, gauges, histograms, events.
//!
//! Metrics are named with dotted lowercase paths (`parse.lines.total.ios`,
//! `bdd.cache.hits`); the full taxonomy is documented in DESIGN.md
//! ("Observability"). A name is bound to one type on first use; a
//! mismatched re-use is recorded in the `obs.type-conflicts` counter
//! rather than panicking (observability must never take the pipeline
//! down).
//!
//! Recording is sharded per OS thread (see [`crate::shard`]): every
//! `counter_add`/`gauge_set`/`observe`/`event` call touches only the
//! calling thread's slice of the registry. The merge at capture time is
//! deterministic: counters sum, histograms add bucket-wise, gauges
//! resolve to the write with the highest global stamp (last write wins,
//! exactly as it did under one global lock), and events interleave by
//! timestamp with shard registration order as the tie-break. A name
//! bound to different types on different shards is a cross-shard type
//! conflict: the merge keeps the lowest-shard binding and counts the
//! rest in `obs.type-conflicts`, same policy as within a thread.
//!
//! Histograms use fixed log2 buckets: bucket 0 holds the value 0 and
//! bucket *i* ≥ 1 holds values in `[2^(i-1), 2^i)`, except the top
//! bucket (64), which is inclusive `[2^63, u64::MAX]` since 2^64 does
//! not fit in a `u64`. 65 buckets cover the full `u64` range with no
//! configuration and no allocation per observation, and every observed
//! value lands in exactly one bucket (`count == sum(buckets)` always).

use crate::clock;
use crate::shard::{self, ShardData};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// Number of log2 histogram buckets (value 0 plus one per bit).
pub const HISTOGRAM_BUCKETS: usize = 65;

/// Cap on retained events (per shard while recording, and again on the
/// merged stream); later events are counted but dropped.
const MAX_EVENTS: usize = 4096;

/// A log2-bucketed histogram.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    /// Observations recorded.
    pub count: u64,
    /// Sum of observed values.
    pub sum: u64,
    /// `buckets[bucket_index(v)]` counts observations of `v`.
    pub buckets: Vec<u64>,
}

impl Histogram {
    fn new() -> Histogram {
        Histogram {
            count: 0,
            sum: 0,
            buckets: vec![0; HISTOGRAM_BUCKETS],
        }
    }

    /// Mean observed value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Folds `other` into `self` bucket-wise (the capture-time shard
    /// merge). Exact: no observation is lost or double-counted, so the
    /// merged histogram equals the one a single global registry would
    /// have recorded.
    pub fn merge(&mut self, other: &Histogram) {
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        for (b, o) in self.buckets.iter_mut().zip(&other.buckets) {
            *b += o;
        }
    }

    /// An upper bound on the `q`-quantile (0 < q ≤ 1): the upper edge
    /// of the bucket holding the ⌈count·q⌉-th smallest observation.
    /// Log2 buckets bound the true quantile within 2×, which is what
    /// latency SLO reporting (p50/p99 on `/metricsz` and in the bench
    /// harness) needs. Returns 0 for an empty histogram.
    pub fn percentile_upper(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let want = ((self.count as f64 * q).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= want {
                return bucket_range(i).1;
            }
        }
        bucket_range(HISTOGRAM_BUCKETS - 1).1
    }
}

/// The bucket index for a value: 0 for 0, else `floor(log2(v)) + 1`.
pub fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

/// Value range of a bucket. Buckets 0..=63 are inclusive-exclusive
/// `[lo, hi)`; the top bucket (64) is inclusive `[2^63, u64::MAX]`
/// because its upper bound, 2^64, is not representable — the old
/// saturating computation returned `[2^63, u64::MAX)` and thereby
/// excluded `u64::MAX` from the very bucket [`bucket_index`] files it
/// under. Bucket 0 is `[0, 1)`, i.e. exactly the value 0.
pub fn bucket_range(i: usize) -> (u64, u64) {
    match i {
        0 => (0, 1),
        64 => (1u64 << 63, u64::MAX),
        _ => (1u64 << (i - 1), 1u64 << i),
    }
}

/// Whether value `v` belongs to bucket `i` — the single source of truth
/// for the boundary semantics above (top bucket hi-inclusive).
pub fn bucket_contains(i: usize, v: u64) -> bool {
    bucket_index(v) == i
}

/// One metric's current value.
#[derive(Clone, Debug, PartialEq)]
pub enum MetricValue {
    /// Monotone sum.
    Counter(u64),
    /// Last-set value.
    Gauge(f64),
    /// Log2-bucketed distribution.
    Histogram(Histogram),
}

/// One metric as stored in a shard. Gauges carry the global write stamp
/// so the merge can resolve "last write wins" across threads without
/// any cross-thread ordering on the write path.
#[derive(Clone, Debug)]
pub(crate) enum MetricSlot {
    Counter(u64),
    Gauge(f64, u64),
    Histogram(Histogram),
}

/// Global sequence for gauge writes: one relaxed fetch per `gauge_set`,
/// giving the merge a total order over writes to the same gauge.
static GAUGE_SEQ: AtomicU64 = AtomicU64::new(1);

/// One recorded event (quarantine, governor trip, …).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Event {
    /// Offset from the run epoch in nanoseconds.
    pub at_ns: u64,
    /// Event class, e.g. `quarantine`, `governor-trip`.
    pub kind: String,
    /// What the event is about (device name, stage).
    pub subject: String,
    /// Machine-readable detail (reason code, limit description).
    pub detail: String,
}

fn type_conflict(data: &mut ShardData) {
    if let MetricSlot::Counter(c) = data
        .metrics
        .entry("obs.type-conflicts".to_string())
        .or_insert(MetricSlot::Counter(0))
    {
        *c += 1;
    }
}

/// Adds `n` to the counter `name`, creating it at 0 first.
pub fn counter_add(name: &str, n: u64) {
    shard::with_local(|sh| {
        let mut data = sh.lock();
        match data.metrics.get_mut(name) {
            None => {
                data.metrics.insert(name.to_string(), MetricSlot::Counter(n));
            }
            Some(MetricSlot::Counter(c)) => *c += n,
            Some(_) => type_conflict(&mut data),
        }
    });
}

/// Sets the gauge `name` to `v`.
pub fn gauge_set(name: &str, v: f64) {
    let stamp = GAUGE_SEQ.fetch_add(1, Ordering::Relaxed);
    shard::with_local(|sh| {
        let mut data = sh.lock();
        match data.metrics.get_mut(name) {
            None => {
                data.metrics
                    .insert(name.to_string(), MetricSlot::Gauge(v, stamp));
            }
            Some(MetricSlot::Gauge(g, s)) => {
                *g = v;
                *s = stamp;
            }
            Some(_) => type_conflict(&mut data),
        }
    });
}

/// Records `v` in the histogram `name`.
pub fn observe(name: &str, v: u64) {
    shard::with_local(|sh| {
        let mut data = sh.lock();
        let entry = match data.metrics.get_mut(name) {
            None => {
                data.metrics
                    .insert(name.to_string(), MetricSlot::Histogram(Histogram::new()));
                match data.metrics.get_mut(name) {
                    Some(MetricSlot::Histogram(h)) => h,
                    _ => return,
                }
            }
            Some(MetricSlot::Histogram(h)) => h,
            Some(_) => {
                type_conflict(&mut data);
                return;
            }
        };
        entry.count += 1;
        entry.sum = entry.sum.saturating_add(v);
        entry.buckets[bucket_index(v)] += 1;
    });
}

/// Reads a gauge's current value across all shards (None when unset or
/// a different type). The bench harness uses this to lift per-stage
/// gauges into row metadata without re-capturing the whole registry.
pub fn gauge(name: &str) -> Option<f64> {
    let mut best: Option<(u64, f64)> = None;
    for sh in shard::all() {
        let data = sh.lock();
        if let Some(MetricSlot::Gauge(g, s)) = data.metrics.get(name) {
            if best.is_none_or(|(stamp, _)| *s > stamp) {
                best = Some((*s, *g));
            }
        }
    }
    best.map(|(_, g)| g)
}

/// Records an event. Events beyond the retention cap are counted in the
/// report's `events_dropped` field instead of growing without bound.
pub fn event(kind: &str, subject: &str, detail: &str) {
    let at_ns = shard::run_ns(clock::now());
    shard::with_local(|sh| {
        let mut data = sh.lock();
        if data.events.len() >= MAX_EVENTS {
            data.events_dropped += 1;
            return;
        }
        data.events.push(Event {
            at_ns,
            kind: kind.to_string(),
            subject: subject.to_string(),
            detail: detail.to_string(),
        });
    });
}

/// Snapshot of the registry since the last reset: the deterministic
/// cross-shard merge. Shards are visited in registration order, so the
/// result is independent of thread scheduling given the same recorded
/// data; with one shard (any single-threaded run) the merge is the
/// identity.
pub(crate) fn snapshot_metrics() -> (BTreeMap<String, MetricValue>, Vec<Event>, u64) {
    // (resolved slot, winning gauge stamp) per name.
    let mut merged: BTreeMap<String, MetricSlot> = BTreeMap::new();
    let mut events: Vec<Event> = Vec::new();
    let mut dropped = 0u64;
    let mut cross_shard_conflicts = 0u64;
    for sh in shard::all() {
        let data = sh.lock();
        for (name, slot) in &data.metrics {
            match merged.get_mut(name) {
                None => {
                    merged.insert(name.clone(), slot.clone());
                }
                Some(MetricSlot::Counter(a)) => match slot {
                    MetricSlot::Counter(b) => *a += b,
                    _ => cross_shard_conflicts += 1,
                },
                Some(MetricSlot::Gauge(g, stamp)) => match slot {
                    MetricSlot::Gauge(v, s) if s > stamp => {
                        *g = *v;
                        *stamp = *s;
                    }
                    MetricSlot::Gauge(..) => {}
                    _ => cross_shard_conflicts += 1,
                },
                Some(MetricSlot::Histogram(a)) => match slot {
                    MetricSlot::Histogram(b) => a.merge(b),
                    _ => cross_shard_conflicts += 1,
                },
            }
        }
        events.extend(data.events.iter().cloned());
        dropped += data.events_dropped;
    }
    if cross_shard_conflicts > 0 {
        if let MetricSlot::Counter(c) = merged
            .entry("obs.type-conflicts".to_string())
            .or_insert(MetricSlot::Counter(0))
        {
            *c += cross_shard_conflicts;
        }
    }
    // Stable sort: within-shard order (already by timestamp) is kept,
    // and equal timestamps across shards fall back to shard order.
    events.sort_by_key(|e| e.at_ns);
    if events.len() > MAX_EVENTS {
        dropped += (events.len() - MAX_EVENTS) as u64;
        events.truncate(MAX_EVENTS);
    }
    let metrics = merged
        .into_iter()
        .map(|(name, slot)| {
            let value = match slot {
                MetricSlot::Counter(c) => MetricValue::Counter(c),
                MetricSlot::Gauge(g, _) => MetricValue::Gauge(g),
                MetricSlot::Histogram(h) => MetricValue::Histogram(h),
            };
            (name, value)
        })
        .collect();
    (metrics, events, dropped)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_log2() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), 64);
        // Every bucket's range round-trips through bucket_index.
        for i in 0..HISTOGRAM_BUCKETS {
            let (lo, hi) = bucket_range(i);
            assert_eq!(bucket_index(lo), i, "lo of bucket {i}");
            if i < 64 {
                assert_eq!(bucket_index(hi - 1), i, "hi-1 of bucket {i}");
            } else {
                // Top bucket: hi is inclusive, not one-past-the-end.
                assert_eq!(bucket_index(hi), i, "top bucket holds u64::MAX");
            }
        }
    }

    #[test]
    fn bucket_boundaries_at_powers_of_two() {
        // Exact power-of-two boundaries: 2^k - 1 stays in bucket k,
        // 2^k opens bucket k + 1.
        for k in 1..64usize {
            let v = 1u64 << k;
            assert_eq!(bucket_index(v - 1), k, "2^{k} - 1");
            assert_eq!(bucket_index(v), k + 1, "2^{k}");
            assert!(bucket_contains(k + 1, v));
            assert!(!bucket_contains(k, v));
        }
        // The two edge values the old range computation mishandled.
        assert!(bucket_contains(0, 0));
        assert!(bucket_contains(64, u64::MAX));
        let (lo, hi) = bucket_range(64);
        assert_eq!(lo, 1u64 << 63);
        assert_eq!(hi, u64::MAX);
    }

    #[test]
    fn histogram_edge_values_and_count_sum_invariant() {
        let _g = crate::span::test_guard();
        crate::reset();
        for v in [0u64, 0, 1, u64::MAX, u64::MAX, 1u64 << 63, (1u64 << 63) - 1] {
            observe("test.edges", v);
        }
        let (metrics, _, _) = snapshot_metrics();
        let Some(MetricValue::Histogram(h)) = metrics.get("test.edges") else {
            panic!("histogram missing");
        };
        assert_eq!(h.count, 7);
        // count == sum(buckets): nothing falls outside the bucket array.
        assert_eq!(h.count, h.buckets.iter().sum::<u64>());
        assert_eq!(h.buckets[0], 2, "both zeros in bucket 0");
        assert_eq!(h.buckets[64], 3, "u64::MAX ×2 and 2^63 in the top bucket");
        assert_eq!(h.buckets[63], 1, "2^63 - 1 one bucket down");
        // The sum saturates instead of wrapping on extreme inputs.
        assert_eq!(h.sum, u64::MAX);
    }

    #[test]
    fn histogram_counts_and_mean() {
        let _g = crate::span::test_guard();
        crate::reset();
        for v in [0u64, 1, 1, 3, 8, 1000] {
            observe("test.hist", v);
        }
        let (metrics, _, _) = snapshot_metrics();
        let Some(MetricValue::Histogram(h)) = metrics.get("test.hist") else {
            panic!("histogram missing");
        };
        assert_eq!(h.count, 6);
        assert_eq!(h.sum, 1013);
        assert_eq!(h.buckets[bucket_index(0)], 1);
        assert_eq!(h.buckets[bucket_index(1)], 2);
        assert_eq!(h.buckets[bucket_index(3)], 1);
        assert_eq!(h.buckets[bucket_index(8)], 1);
        assert_eq!(h.buckets[bucket_index(1000)], 1);
        assert!((h.mean() - 1013.0 / 6.0).abs() < 1e-9);
    }

    #[test]
    fn histogram_merge_is_exact() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut whole = Histogram::new();
        for (h, vals) in [(&mut a, [0u64, 5, 1 << 40]), (&mut b, [5, 6, u64::MAX])] {
            for v in vals {
                h.count += 1;
                h.sum = h.sum.saturating_add(v);
                h.buckets[bucket_index(v)] += 1;
                whole.count += 1;
                whole.sum = whole.sum.saturating_add(v);
                whole.buckets[bucket_index(v)] += 1;
            }
        }
        a.merge(&b);
        assert_eq!(a, whole);
        assert_eq!(a.count, a.buckets.iter().sum::<u64>());
    }

    #[test]
    fn percentile_upper_bounds_quantiles() {
        let mut h = Histogram::new();
        for v in [1u64, 2, 3, 4, 100, 1000] {
            h.count += 1;
            h.sum += v;
            h.buckets[bucket_index(v)] += 1;
        }
        // 3rd of 6 values is 3 → bucket [2,4) → upper edge 4.
        assert_eq!(h.percentile_upper(0.5), 4);
        // p99 of 6 values is the max (1000) → bucket [512,1024) → 1024.
        assert_eq!(h.percentile_upper(0.99), 1024);
        assert_eq!(Histogram::new().percentile_upper(0.5), 0);
    }

    #[test]
    fn counters_gauges_and_conflicts() {
        let _g = crate::span::test_guard();
        crate::reset();
        counter_add("c", 2);
        counter_add("c", 3);
        gauge_set("g", 1.5);
        gauge_set("g", 2.5);
        // A type conflict is absorbed, not panicked on.
        gauge_set("c", 9.0);
        let (metrics, _, _) = snapshot_metrics();
        assert_eq!(metrics.get("c"), Some(&MetricValue::Counter(5)));
        assert_eq!(metrics.get("g"), Some(&MetricValue::Gauge(2.5)));
        assert_eq!(
            metrics.get("obs.type-conflicts"),
            Some(&MetricValue::Counter(1))
        );
    }

    #[test]
    fn cross_thread_counters_sum_and_gauges_take_last_write() {
        let _g = crate::span::test_guard();
        crate::reset();
        counter_add("mt.c", 1);
        gauge_set("mt.g", 1.0);
        std::thread::spawn(|| {
            counter_add("mt.c", 10);
            gauge_set("mt.g", 7.5); // later stamp: must win the merge
        })
        .join()
        .expect("worker");
        let (metrics, _, _) = snapshot_metrics();
        assert_eq!(metrics.get("mt.c"), Some(&MetricValue::Counter(11)));
        assert_eq!(metrics.get("mt.g"), Some(&MetricValue::Gauge(7.5)));
        assert_eq!(gauge("mt.g"), Some(7.5));
    }

    #[test]
    fn events_record_and_reset() {
        let _g = crate::span::test_guard();
        crate::reset();
        event("quarantine", "r1", "parse-panic");
        let (_, events, dropped) = snapshot_metrics();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].kind, "quarantine");
        assert_eq!(dropped, 0);
        crate::reset();
        let (m, events, _) = snapshot_metrics();
        assert!(m.is_empty());
        assert!(events.is_empty());
    }
}
