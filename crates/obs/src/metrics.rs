//! The typed metrics registry: counters, gauges, histograms, events.
//!
//! Metrics are named with dotted lowercase paths (`parse.lines.total.ios`,
//! `bdd.cache.hits`); the full taxonomy is documented in DESIGN.md
//! ("Observability"). A name is bound to one type on first use; a
//! mismatched re-use is recorded in the `obs.type-conflicts` counter
//! rather than panicking (observability must never take the pipeline
//! down).
//!
//! Histograms use fixed log2 buckets: bucket 0 holds the value 0 and
//! bucket *i* ≥ 1 holds values in `[2^(i-1), 2^i)`, except the top
//! bucket (64), which is inclusive `[2^63, u64::MAX]` since 2^64 does
//! not fit in a `u64`. 65 buckets cover the full `u64` range with no
//! configuration and no allocation per observation, and every observed
//! value lands in exactly one bucket (`count == sum(buckets)` always).

use crate::clock;
use std::collections::BTreeMap;
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Number of log2 histogram buckets (value 0 plus one per bit).
pub const HISTOGRAM_BUCKETS: usize = 65;

/// Cap on retained events; later events are counted but dropped.
const MAX_EVENTS: usize = 4096;

/// A log2-bucketed histogram.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    /// Observations recorded.
    pub count: u64,
    /// Sum of observed values.
    pub sum: u64,
    /// `buckets[bucket_index(v)]` counts observations of `v`.
    pub buckets: Vec<u64>,
}

impl Histogram {
    fn new() -> Histogram {
        Histogram {
            count: 0,
            sum: 0,
            buckets: vec![0; HISTOGRAM_BUCKETS],
        }
    }

    /// Mean observed value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// The bucket index for a value: 0 for 0, else `floor(log2(v)) + 1`.
pub fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

/// Value range of a bucket. Buckets 0..=63 are inclusive-exclusive
/// `[lo, hi)`; the top bucket (64) is inclusive `[2^63, u64::MAX]`
/// because its upper bound, 2^64, is not representable — the old
/// saturating computation returned `[2^63, u64::MAX)` and thereby
/// excluded `u64::MAX` from the very bucket [`bucket_index`] files it
/// under. Bucket 0 is `[0, 1)`, i.e. exactly the value 0.
pub fn bucket_range(i: usize) -> (u64, u64) {
    match i {
        0 => (0, 1),
        64 => (1u64 << 63, u64::MAX),
        _ => (1u64 << (i - 1), 1u64 << i),
    }
}

/// Whether value `v` belongs to bucket `i` — the single source of truth
/// for the boundary semantics above (top bucket hi-inclusive).
pub fn bucket_contains(i: usize, v: u64) -> bool {
    bucket_index(v) == i
}

/// One metric's current value.
#[derive(Clone, Debug, PartialEq)]
pub enum MetricValue {
    /// Monotone sum.
    Counter(u64),
    /// Last-set value.
    Gauge(f64),
    /// Log2-bucketed distribution.
    Histogram(Histogram),
}

/// One recorded event (quarantine, governor trip, …).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Event {
    /// Offset from the run epoch in nanoseconds.
    pub at_ns: u64,
    /// Event class, e.g. `quarantine`, `governor-trip`.
    pub kind: String,
    /// What the event is about (device name, stage).
    pub subject: String,
    /// Machine-readable detail (reason code, limit description).
    pub detail: String,
}

struct State {
    epoch: Instant,
    metrics: BTreeMap<String, MetricValue>,
    events: Vec<Event>,
    events_dropped: u64,
}

fn state() -> &'static Mutex<State> {
    static S: OnceLock<Mutex<State>> = OnceLock::new();
    S.get_or_init(|| {
        Mutex::new(State {
            epoch: clock::now(),
            metrics: BTreeMap::new(),
            events: Vec::new(),
            events_dropped: 0,
        })
    })
}

fn lock() -> std::sync::MutexGuard<'static, State> {
    state().lock().unwrap_or_else(|e| e.into_inner())
}

fn type_conflict(st: &mut State) {
    match st
        .metrics
        .entry("obs.type-conflicts".to_string())
        .or_insert(MetricValue::Counter(0))
    {
        MetricValue::Counter(c) => *c += 1,
        _ => {}
    }
}

/// Adds `n` to the counter `name`, creating it at 0 first.
pub fn counter_add(name: &str, n: u64) {
    let mut st = lock();
    match st.metrics.get_mut(name) {
        None => {
            st.metrics
                .insert(name.to_string(), MetricValue::Counter(n));
        }
        Some(MetricValue::Counter(c)) => *c += n,
        Some(_) => type_conflict(&mut st),
    }
}

/// Sets the gauge `name` to `v`.
pub fn gauge_set(name: &str, v: f64) {
    let mut st = lock();
    match st.metrics.get_mut(name) {
        None => {
            st.metrics.insert(name.to_string(), MetricValue::Gauge(v));
        }
        Some(MetricValue::Gauge(g)) => *g = v,
        Some(_) => type_conflict(&mut st),
    }
}

/// Records `v` in the histogram `name`.
pub fn observe(name: &str, v: u64) {
    let mut st = lock();
    let entry = match st.metrics.get_mut(name) {
        None => {
            st.metrics
                .insert(name.to_string(), MetricValue::Histogram(Histogram::new()));
            match st.metrics.get_mut(name) {
                Some(MetricValue::Histogram(h)) => h,
                _ => return,
            }
        }
        Some(MetricValue::Histogram(h)) => h,
        Some(_) => {
            type_conflict(&mut st);
            return;
        }
    };
    entry.count += 1;
    entry.sum = entry.sum.saturating_add(v);
    entry.buckets[bucket_index(v)] += 1;
}

/// Reads a gauge's current value (None when unset or a different
/// type). The bench harness uses this to lift per-stage gauges into
/// row metadata without re-capturing the whole registry.
pub fn gauge(name: &str) -> Option<f64> {
    match lock().metrics.get(name) {
        Some(MetricValue::Gauge(g)) => Some(*g),
        _ => None,
    }
}

/// Records an event. Events beyond the retention cap are counted in the
/// report's `events_dropped` field instead of growing without bound.
pub fn event(kind: &str, subject: &str, detail: &str) {
    let mut st = lock();
    if st.events.len() >= MAX_EVENTS {
        st.events_dropped += 1;
        return;
    }
    let at_ns = clock::now()
        .saturating_duration_since(st.epoch)
        .as_nanos() as u64;
    st.events.push(Event {
        at_ns,
        kind: kind.to_string(),
        subject: subject.to_string(),
        detail: detail.to_string(),
    });
}

/// Snapshot of the registry since the last reset.
pub(crate) fn snapshot_metrics() -> (BTreeMap<String, MetricValue>, Vec<Event>, u64) {
    let st = lock();
    (st.metrics.clone(), st.events.clone(), st.events_dropped)
}

/// Clears all metrics and events and restarts the event epoch.
pub(crate) fn reset_metrics() {
    let mut st = lock();
    st.epoch = clock::now();
    st.metrics.clear();
    st.events.clear();
    st.events_dropped = 0;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_log2() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), 64);
        // Every bucket's range round-trips through bucket_index.
        for i in 0..HISTOGRAM_BUCKETS {
            let (lo, hi) = bucket_range(i);
            assert_eq!(bucket_index(lo), i, "lo of bucket {i}");
            if i < 64 {
                assert_eq!(bucket_index(hi - 1), i, "hi-1 of bucket {i}");
            } else {
                // Top bucket: hi is inclusive, not one-past-the-end.
                assert_eq!(bucket_index(hi), i, "top bucket holds u64::MAX");
            }
        }
    }

    #[test]
    fn bucket_boundaries_at_powers_of_two() {
        // Exact power-of-two boundaries: 2^k - 1 stays in bucket k,
        // 2^k opens bucket k + 1.
        for k in 1..64usize {
            let v = 1u64 << k;
            assert_eq!(bucket_index(v - 1), k, "2^{k} - 1");
            assert_eq!(bucket_index(v), k + 1, "2^{k}");
            assert!(bucket_contains(k + 1, v));
            assert!(!bucket_contains(k, v));
        }
        // The two edge values the old range computation mishandled.
        assert!(bucket_contains(0, 0));
        assert!(bucket_contains(64, u64::MAX));
        let (lo, hi) = bucket_range(64);
        assert_eq!(lo, 1u64 << 63);
        assert_eq!(hi, u64::MAX);
    }

    #[test]
    fn histogram_edge_values_and_count_sum_invariant() {
        let _g = crate::span::test_guard();
        crate::reset();
        for v in [0u64, 0, 1, u64::MAX, u64::MAX, 1u64 << 63, (1u64 << 63) - 1] {
            observe("test.edges", v);
        }
        let (metrics, _, _) = snapshot_metrics();
        let Some(MetricValue::Histogram(h)) = metrics.get("test.edges") else {
            panic!("histogram missing");
        };
        assert_eq!(h.count, 7);
        // count == sum(buckets): nothing falls outside the bucket array.
        assert_eq!(h.count, h.buckets.iter().sum::<u64>());
        assert_eq!(h.buckets[0], 2, "both zeros in bucket 0");
        assert_eq!(h.buckets[64], 3, "u64::MAX ×2 and 2^63 in the top bucket");
        assert_eq!(h.buckets[63], 1, "2^63 - 1 one bucket down");
        // The sum saturates instead of wrapping on extreme inputs.
        assert_eq!(h.sum, u64::MAX);
    }

    #[test]
    fn histogram_counts_and_mean() {
        let _g = crate::span::test_guard();
        crate::reset();
        for v in [0u64, 1, 1, 3, 8, 1000] {
            observe("test.hist", v);
        }
        let (metrics, _, _) = snapshot_metrics();
        let Some(MetricValue::Histogram(h)) = metrics.get("test.hist") else {
            panic!("histogram missing");
        };
        assert_eq!(h.count, 6);
        assert_eq!(h.sum, 1013);
        assert_eq!(h.buckets[bucket_index(0)], 1);
        assert_eq!(h.buckets[bucket_index(1)], 2);
        assert_eq!(h.buckets[bucket_index(3)], 1);
        assert_eq!(h.buckets[bucket_index(8)], 1);
        assert_eq!(h.buckets[bucket_index(1000)], 1);
        assert!((h.mean() - 1013.0 / 6.0).abs() < 1e-9);
    }

    #[test]
    fn counters_gauges_and_conflicts() {
        let _g = crate::span::test_guard();
        crate::reset();
        counter_add("c", 2);
        counter_add("c", 3);
        gauge_set("g", 1.5);
        gauge_set("g", 2.5);
        // A type conflict is absorbed, not panicked on.
        gauge_set("c", 9.0);
        let (metrics, _, _) = snapshot_metrics();
        assert_eq!(metrics.get("c"), Some(&MetricValue::Counter(5)));
        assert_eq!(metrics.get("g"), Some(&MetricValue::Gauge(2.5)));
        assert_eq!(
            metrics.get("obs.type-conflicts"),
            Some(&MetricValue::Counter(1))
        );
    }

    #[test]
    fn events_record_and_reset() {
        let _g = crate::span::test_guard();
        crate::reset();
        event("quarantine", "r1", "parse-panic");
        let (_, events, dropped) = snapshot_metrics();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].kind, "quarantine");
        assert_eq!(dropped, 0);
        crate::reset();
        let (m, events, _) = snapshot_metrics();
        assert!(m.is_empty());
        assert!(events.is_empty());
    }
}
