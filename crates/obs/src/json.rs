//! Hand-rolled JSON: a writer for report serialization and a minimal
//! parser for in-tree validation. The workspace is offline, so no serde;
//! the subset implemented is exactly what run reports and bench files
//! need (objects, arrays, strings, finite numbers, booleans, null).

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Appends `s` as a JSON string literal (with escaping) to `out`.
pub fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends a finite f64 (non-finite values are serialized as 0, JSON has
/// no NaN/Infinity).
pub fn write_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        // Trim to a stable, compact form: integers print bare.
        if v == v.trunc() && v.abs() < 1e15 {
            let _ = write!(out, "{}", v as i64);
        } else {
            let _ = write!(out, "{v}");
        }
    } else {
        out.push('0');
    }
}

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object (key order not preserved).
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// Member lookup on objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }
}

/// Parses a complete JSON document. Errors carry a byte offset and a
/// short description.
pub fn parse(text: &str) -> Result<Value, String> {
    let bytes = text.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(format!("trailing content at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn err(&self, msg: &str) -> String {
        format!("{msg} at byte {}", self.pos)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogates are replaced, not reconstructed:
                            // reports never emit them.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                b if b < 0x80 => out.push(b as char),
                _ => {
                    // Multi-byte UTF-8: copy the full sequence.
                    let start = self.pos - 1;
                    let len = utf8_len(b);
                    let end = start + len;
                    let s = self
                        .bytes
                        .get(start..end)
                        .and_then(|s| std::str::from_utf8(s).ok())
                        .ok_or_else(|| self.err("invalid UTF-8"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')) {
            self.pos += 1;
        }
        let s = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        s.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        0xF0..=0xF7 => 4,
        _ => 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_strings() {
        let mut out = String::new();
        write_str(&mut out, "a\"b\\c\nd\ttab\u{1}é");
        let v = parse(&out).expect("parses");
        assert_eq!(v.as_str(), Some("a\"b\\c\nd\ttab\u{1}é"));
    }

    #[test]
    fn parses_nested_document() {
        let doc = r#"{"a": [1, 2.5, -3e2], "b": {"c": true, "d": null}, "e": "x"}"#;
        let v = parse(doc).expect("parses");
        let a = v.get("a").and_then(Value::as_arr).expect("a");
        assert_eq!(a[0].as_f64(), Some(1.0));
        assert_eq!(a[1].as_f64(), Some(2.5));
        assert_eq!(a[2].as_f64(), Some(-300.0));
        assert_eq!(v.get("b").and_then(|b| b.get("c")), Some(&Value::Bool(true)));
        assert_eq!(v.get("b").and_then(|b| b.get("d")), Some(&Value::Null));
        assert_eq!(v.get("e").and_then(Value::as_str), Some("x"));
    }

    #[test]
    fn rejects_malformed() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\" 1}").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("{} trailing").is_err());
    }

    #[test]
    fn write_f64_is_finite_and_compact() {
        let mut out = String::new();
        write_f64(&mut out, 3.0);
        assert_eq!(out, "3");
        out.clear();
        write_f64(&mut out, 3.25);
        assert_eq!(out, "3.25");
        out.clear();
        write_f64(&mut out, f64::NAN);
        assert_eq!(out, "0");
    }
}
