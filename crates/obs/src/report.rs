//! Machine-readable run reports: one JSON document that accounts for a
//! whole pipeline run — the span tree, the metric snapshot, events, and
//! quarantine / partial-outcome bookkeeping.
//!
//! Schema (version 1; the in-tree validator fails on drift):
//!
//! ```json
//! {
//!   "schema": 1,
//!   "meta":   { "commit": "...", "cmd": "..." },
//!   "spans":  [ {"name": "...", "start_ms": 0.0, "ms": 1.5, "self_ms": 0.5,
//!                "children": [...]} ],
//!   "metrics": {
//!     "route.sweeps":   {"type": "counter", "value": 12},
//!     "bdd.nodes":      {"type": "gauge", "value": 4096},
//!     "reach.relaxations": {"type": "histogram", "count": 3, "sum": 90,
//!                            "mean": 30.0, "buckets": [[16, 32, 2], [32, 64, 1]]}
//!   },
//!   "events": [ {"at_ms": 0.2, "kind": "quarantine", "subject": "r9",
//!                "detail": "parse-panic"} ],
//!   "events_dropped": 0,
//!   "quarantined": [ {"device": "r9", "stage": "parse",
//!                     "code": "parse-panic", "detail": "..."} ],
//!   "partial": null,
//!   "snapshot": {"devices": 84, "quarantined": 1, "diagnostics": 3}
//! }
//! ```
//!
//! An open span (`Span` alive at capture) serializes `"ms": null`;
//! histogram buckets list only non-empty `[lo, hi, count]` triples.

use crate::json::{self, Value};
use crate::metrics::{bucket_range, Event, MetricValue};
use crate::span::SpanRecord;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Current report schema version.
pub const SCHEMA_VERSION: u64 = 1;

/// One quarantined device as reported.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct QuarantineEntry {
    /// Device (or file stem).
    pub device: String,
    /// Pipeline stage (`load`, `parse`, `route`).
    pub stage: String,
    /// Stable machine-readable reason code.
    pub code: String,
    /// Free-text detail.
    pub detail: String,
}

/// Partial-outcome accounting: what a governor trip abandoned.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PartialOutcome {
    /// Stage that observed the exhaustion.
    pub stage: String,
    /// The limit that tripped (display form).
    pub limit: String,
    /// Machine-readable identifiers of abandoned work.
    pub abandoned: Vec<String>,
}

/// Input-accounting summary for the snapshot that was analyzed.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct SnapshotSummary {
    /// Devices that survived to analysis.
    pub devices: usize,
    /// Devices quarantined on the way.
    pub quarantined: usize,
    /// Total parse diagnostics.
    pub diagnostics: usize,
}

/// A captured run report. [`capture`] fills the observability sections;
/// callers (the snapshot pipeline, the bench harness) fill the rest.
#[derive(Clone, Debug, Default)]
pub struct RunReport {
    /// Provenance key/values (commit, command line, network).
    pub meta: BTreeMap<String, String>,
    /// Recorded spans (flat; parent indices define the tree).
    pub spans: Vec<SpanRecord>,
    /// Metric snapshot.
    pub metrics: BTreeMap<String, MetricValue>,
    /// Recorded events.
    pub events: Vec<Event>,
    /// Events beyond the retention cap.
    pub events_dropped: u64,
    /// Quarantine accounting.
    pub quarantined: Vec<QuarantineEntry>,
    /// Partial-outcome accounting, when a governor limit tripped.
    pub partial: Option<PartialOutcome>,
    /// Snapshot input summary.
    pub snapshot: Option<SnapshotSummary>,
}

/// Captures everything recorded since the last [`crate::reset`].
pub fn capture() -> RunReport {
    let (metrics, events, events_dropped) = crate::metrics::snapshot_metrics();
    RunReport {
        meta: BTreeMap::new(),
        spans: crate::span::snapshot_spans(),
        metrics,
        events,
        events_dropped,
        quarantined: Vec::new(),
        partial: None,
        snapshot: None,
    }
}

fn ms(ns: u64) -> f64 {
    (ns / 1_000) as f64 / 1000.0
}

impl RunReport {
    /// How many spans carry this exact name.
    pub fn span_count(&self, name: &str) -> usize {
        self.spans.iter().filter(|s| s.name == name).count()
    }

    /// Duration in milliseconds of the first span with this name, if it
    /// closed.
    pub fn span_ms(&self, name: &str) -> Option<f64> {
        self.spans
            .iter()
            .find(|s| s.name == name)
            .and_then(|s| s.dur_ns)
            .map(ms)
    }

    /// The counter's value, if recorded.
    pub fn counter(&self, name: &str) -> Option<u64> {
        match self.metrics.get(name) {
            Some(MetricValue::Counter(c)) => Some(*c),
            _ => None,
        }
    }

    /// Self time (exclusive of children) in milliseconds of the first
    /// span with this name, if it closed.
    pub fn self_ms(&self, name: &str) -> Option<f64> {
        let idx = self.spans.iter().position(|s| s.name == name)?;
        self.spans[idx].dur_ns?;
        Some(ms(crate::attr::self_times_ns(&self.spans)[idx]))
    }

    /// The critical path through the span forest: the chain from the
    /// most expensive root through each level's most expensive child.
    pub fn critical_path(&self) -> Vec<crate::attr::PathStep> {
        crate::attr::critical_path(&self.spans)
    }

    /// Serializes to schema-1 JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str("{\"schema\": ");
        let _ = write!(out, "{SCHEMA_VERSION}");
        out.push_str(", \"meta\": {");
        for (i, (k, v)) in self.meta.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            json::write_str(&mut out, k);
            out.push_str(": ");
            json::write_str(&mut out, v);
        }
        out.push_str("}, \"spans\": ");
        write_span_forest(&self.spans, &mut out);
        out.push_str(", \"metrics\": {");
        for (i, (name, value)) in self.metrics.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            json::write_str(&mut out, name);
            out.push_str(": ");
            write_metric(&mut out, value);
        }
        out.push_str("}, \"events\": [");
        for (i, e) in self.events.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str("{\"at_ms\": ");
            json::write_f64(&mut out, ms(e.at_ns));
            out.push_str(", \"kind\": ");
            json::write_str(&mut out, &e.kind);
            out.push_str(", \"subject\": ");
            json::write_str(&mut out, &e.subject);
            out.push_str(", \"detail\": ");
            json::write_str(&mut out, &e.detail);
            out.push('}');
        }
        out.push_str("], \"events_dropped\": ");
        let _ = write!(out, "{}", self.events_dropped);
        out.push_str(", \"quarantined\": [");
        for (i, q) in self.quarantined.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str("{\"device\": ");
            json::write_str(&mut out, &q.device);
            out.push_str(", \"stage\": ");
            json::write_str(&mut out, &q.stage);
            out.push_str(", \"code\": ");
            json::write_str(&mut out, &q.code);
            out.push_str(", \"detail\": ");
            json::write_str(&mut out, &q.detail);
            out.push('}');
        }
        out.push_str("], \"partial\": ");
        match &self.partial {
            None => out.push_str("null"),
            Some(p) => {
                out.push_str("{\"stage\": ");
                json::write_str(&mut out, &p.stage);
                out.push_str(", \"limit\": ");
                json::write_str(&mut out, &p.limit);
                out.push_str(", \"abandoned\": [");
                for (i, a) in p.abandoned.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    json::write_str(&mut out, a);
                }
                out.push_str("]}");
            }
        }
        out.push_str(", \"snapshot\": ");
        match &self.snapshot {
            None => out.push_str("null"),
            Some(s) => {
                let _ = write!(
                    out,
                    "{{\"devices\": {}, \"quarantined\": {}, \"diagnostics\": {}}}",
                    s.devices, s.quarantined, s.diagnostics
                );
            }
        }
        out.push('}');
        out
    }

}

/// Serializes a flat span list as the nested schema-1 forest
/// (`{name, start_ms, ms, self_ms, children}`). This is the report's
/// own `"spans"` renderer, exposed so other producers of span trees —
/// the serve `/tracez` endpoint's per-request traces — emit the exact
/// same shape and validate with the same code.
pub fn write_span_forest(spans: &[SpanRecord], out: &mut String) {
    let mut children: Vec<Vec<usize>> = vec![Vec::new(); spans.len()];
    let mut roots: Vec<usize> = Vec::new();
    for (i, s) in spans.iter().enumerate() {
        match s.parent {
            Some(p) if p < spans.len() => children[p].push(i),
            _ => roots.push(i),
        }
    }
    let self_ns = crate::attr::self_times_ns(spans);
    write_span_list(spans, out, &roots, &children, &self_ns);
}

fn write_span_list(
    spans: &[SpanRecord],
    out: &mut String,
    idxs: &[usize],
    children: &[Vec<usize>],
    self_ns: &[u64],
) {
    out.push('[');
    for (i, &idx) in idxs.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let s = &spans[idx];
        out.push_str("{\"name\": ");
        json::write_str(out, &s.name);
        out.push_str(", \"start_ms\": ");
        json::write_f64(out, ms(s.start_ns));
        out.push_str(", \"ms\": ");
        match s.dur_ns {
            Some(d) => json::write_f64(out, ms(d)),
            None => out.push_str("null"),
        }
        out.push_str(", \"self_ms\": ");
        json::write_f64(out, ms(self_ns[idx]));
        out.push_str(", \"children\": ");
        write_span_list(spans, out, &children[idx], children, self_ns);
        out.push('}');
    }
    out.push(']');
}

fn write_metric(out: &mut String, value: &MetricValue) {
    match value {
        MetricValue::Counter(c) => {
            let _ = write!(out, "{{\"type\": \"counter\", \"value\": {c}}}");
        }
        MetricValue::Gauge(g) => {
            out.push_str("{\"type\": \"gauge\", \"value\": ");
            json::write_f64(out, *g);
            out.push('}');
        }
        MetricValue::Histogram(h) => {
            let _ = write!(
                out,
                "{{\"type\": \"histogram\", \"count\": {}, \"sum\": {}, \"mean\": ",
                h.count, h.sum
            );
            json::write_f64(out, h.mean());
            out.push_str(", \"buckets\": [");
            let mut first = true;
            for (i, &n) in h.buckets.iter().enumerate() {
                if n == 0 {
                    continue;
                }
                if !first {
                    out.push_str(", ");
                }
                first = false;
                let (lo, hi) = bucket_range(i);
                let _ = write!(out, "[{lo}, {hi}, {n}]");
            }
            out.push_str("]}");
        }
    }
}

/// Validates a parsed schema-1 run report. Returns the first problem
/// found; `Ok` means the document has every required section with the
/// required shape.
pub fn validate_run_report(v: &Value) -> Result<(), String> {
    let schema = v
        .get("schema")
        .and_then(Value::as_f64)
        .ok_or("missing numeric \"schema\"")?;
    if schema != SCHEMA_VERSION as f64 {
        return Err(format!(
            "schema drift: expected {SCHEMA_VERSION}, found {schema}"
        ));
    }
    if !matches!(v.get("meta"), Some(Value::Obj(_))) {
        return Err("missing object \"meta\"".to_string());
    }
    let spans = v
        .get("spans")
        .and_then(Value::as_arr)
        .ok_or("missing array \"spans\"")?;
    for s in spans {
        validate_span(s)?;
    }
    let Some(Value::Obj(metrics)) = v.get("metrics") else {
        return Err("missing object \"metrics\"".to_string());
    };
    for (name, m) in metrics {
        let ty = m
            .get("type")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("metric {name}: missing \"type\""))?;
        match ty {
            "counter" | "gauge" => {
                if m.get("value").and_then(Value::as_f64).is_none() {
                    return Err(format!("metric {name}: missing numeric \"value\""));
                }
            }
            "histogram" => {
                for k in ["count", "sum", "mean"] {
                    if m.get(k).and_then(Value::as_f64).is_none() {
                        return Err(format!("metric {name}: missing numeric \"{k}\""));
                    }
                }
                let buckets = m
                    .get("buckets")
                    .and_then(Value::as_arr)
                    .ok_or_else(|| format!("metric {name}: missing \"buckets\""))?;
                for b in buckets {
                    let triple = b.as_arr().unwrap_or(&[]);
                    if triple.len() != 3 || triple.iter().any(|t| t.as_f64().is_none()) {
                        return Err(format!("metric {name}: bucket is not [lo, hi, count]"));
                    }
                }
            }
            other => return Err(format!("metric {name}: unknown type {other:?}")),
        }
    }
    let events = v
        .get("events")
        .and_then(Value::as_arr)
        .ok_or("missing array \"events\"")?;
    for e in events {
        for k in ["kind", "subject", "detail"] {
            if e.get(k).and_then(Value::as_str).is_none() {
                return Err(format!("event missing string \"{k}\""));
            }
        }
        if e.get("at_ms").and_then(Value::as_f64).is_none() {
            return Err("event missing numeric \"at_ms\"".to_string());
        }
    }
    let quarantined = v
        .get("quarantined")
        .and_then(Value::as_arr)
        .ok_or("missing array \"quarantined\"")?;
    for q in quarantined {
        for k in ["device", "stage", "code"] {
            match q.get(k).and_then(Value::as_str) {
                Some(s) if !s.is_empty() => {}
                _ => return Err(format!("quarantine entry missing non-empty \"{k}\"")),
            }
        }
    }
    match v.get("partial") {
        Some(Value::Null) => {}
        Some(p @ Value::Obj(_)) => {
            for k in ["stage", "limit"] {
                if p.get(k).and_then(Value::as_str).is_none() {
                    return Err(format!("partial missing string \"{k}\""));
                }
            }
            if p.get("abandoned").and_then(Value::as_arr).is_none() {
                return Err("partial missing array \"abandoned\"".to_string());
            }
        }
        _ => return Err("missing \"partial\" (object or null)".to_string()),
    }
    match v.get("snapshot") {
        Some(Value::Null) | None => {}
        Some(s @ Value::Obj(_)) => {
            for k in ["devices", "quarantined", "diagnostics"] {
                if s.get(k).and_then(Value::as_f64).is_none() {
                    return Err(format!("snapshot missing numeric \"{k}\""));
                }
            }
        }
        _ => return Err("\"snapshot\" must be object or null".to_string()),
    }
    Ok(())
}

/// Validates one node of a schema-1 span forest (recursively). Public
/// because `/tracez` documents embed per-request span forests in the
/// same shape.
pub fn validate_span(s: &Value) -> Result<(), String> {
    if s.get("name").and_then(Value::as_str).is_none() {
        return Err("span missing string \"name\"".to_string());
    }
    if s.get("start_ms").and_then(Value::as_f64).is_none() {
        return Err("span missing numeric \"start_ms\"".to_string());
    }
    match s.get("ms") {
        Some(Value::Num(_)) | Some(Value::Null) => {}
        _ => return Err("span \"ms\" must be number or null".to_string()),
    }
    // `self_ms` is optional (pre-attribution reports lack it) but must
    // be numeric when present.
    match s.get("self_ms") {
        None | Some(Value::Num(_)) => {}
        _ => return Err("span \"self_ms\" must be a number when present".to_string()),
    }
    let children = s
        .get("children")
        .and_then(Value::as_arr)
        .ok_or("span missing array \"children\"")?;
    for c in children {
        validate_span(c)?;
    }
    Ok(())
}

/// Validates a serve `/tracez` document: schema 1, ring accounting
/// (`capacity` > 0, `evicted` ≥ 0), and per-request trace entries with
/// a non-empty trace id, request identity, non-negative timing fields,
/// and a valid span forest.
pub fn validate_tracez(v: &Value) -> Result<(), String> {
    let schema = v
        .get("schema")
        .and_then(Value::as_f64)
        .ok_or("missing numeric \"schema\"")?;
    if schema != SCHEMA_VERSION as f64 {
        return Err(format!(
            "schema drift: expected {SCHEMA_VERSION}, found {schema}"
        ));
    }
    match v.get("capacity").and_then(Value::as_f64) {
        Some(c) if c >= 1.0 => {}
        _ => return Err("missing positive numeric \"capacity\"".to_string()),
    }
    match v.get("evicted").and_then(Value::as_f64) {
        Some(e) if e >= 0.0 => {}
        _ => return Err("missing non-negative numeric \"evicted\"".to_string()),
    }
    let traces = v
        .get("traces")
        .and_then(Value::as_arr)
        .ok_or("missing array \"traces\"")?;
    for (i, t) in traces.iter().enumerate() {
        match t.get("trace_id").and_then(Value::as_str) {
            Some(id) if !id.is_empty() => {}
            _ => return Err(format!("trace {i}: missing non-empty \"trace_id\"")),
        }
        for k in ["method", "path"] {
            match t.get(k).and_then(Value::as_str) {
                Some(s) if !s.is_empty() => {}
                _ => return Err(format!("trace {i}: missing non-empty \"{k}\"")),
            }
        }
        match t.get("status").and_then(Value::as_f64) {
            Some(s) if (100.0..600.0).contains(&s) => {}
            _ => return Err(format!("trace {i}: \"status\" must be an HTTP status")),
        }
        for k in ["queue_wait_ms", "handler_ms"] {
            match t.get(k).and_then(Value::as_f64) {
                Some(n) if n >= 0.0 => {}
                _ => return Err(format!("trace {i}: missing non-negative \"{k}\"")),
            }
        }
        match t.get("deadline_ms") {
            Some(Value::Num(_)) | Some(Value::Null) | None => {}
            _ => return Err(format!("trace {i}: \"deadline_ms\" must be number or null")),
        }
        if !matches!(t.get("partial"), Some(Value::Bool(_))) {
            return Err(format!("trace {i}: missing boolean \"partial\""));
        }
        let spans = t
            .get("spans")
            .and_then(Value::as_arr)
            .ok_or_else(|| format!("trace {i}: missing array \"spans\""))?;
        for s in spans {
            validate_span(s).map_err(|e| format!("trace {i}: {e}"))?;
        }
    }
    Ok(())
}

/// Validates a bench JSON file (`BENCH_<cmd>.json`): the stable
/// `{bench, network, stage, ms, meta}` row schema plus an embedded run
/// report.
pub fn validate_bench(v: &Value) -> Result<(), String> {
    let schema = v
        .get("schema")
        .and_then(Value::as_f64)
        .ok_or("missing numeric \"schema\"")?;
    if schema != SCHEMA_VERSION as f64 {
        return Err(format!(
            "schema drift: expected {SCHEMA_VERSION}, found {schema}"
        ));
    }
    if v.get("bench").and_then(Value::as_str).is_none() {
        return Err("missing string \"bench\"".to_string());
    }
    let rows = v
        .get("rows")
        .and_then(Value::as_arr)
        .ok_or("missing array \"rows\"")?;
    if rows.is_empty() {
        return Err("\"rows\" is empty".to_string());
    }
    for (i, row) in rows.iter().enumerate() {
        for k in ["bench", "network", "stage"] {
            match row.get(k).and_then(Value::as_str) {
                Some(s) if !s.is_empty() => {}
                _ => return Err(format!("row {i}: missing non-empty string \"{k}\"")),
            }
        }
        match row.get("ms").and_then(Value::as_f64) {
            Some(ms) if ms >= 0.0 => {}
            _ => return Err(format!("row {i}: missing non-negative numeric \"ms\"")),
        }
        if !matches!(row.get("meta"), Some(Value::Obj(_))) {
            return Err(format!("row {i}: missing object \"meta\""));
        }
    }
    let report = v.get("report").ok_or("missing \"report\"")?;
    validate_run_report(report).map_err(|e| format!("embedded report: {e}"))
}

/// Validates a `batnet-prof/v1` sampling-profile document: window and
/// sampler accounting with the balance invariant
/// `samples == recorded + dropped`, numeric gauges, and folded stack
/// entries with positive counts.
pub fn validate_profile(v: &Value) -> Result<(), String> {
    let schema = v
        .get("schema")
        .and_then(Value::as_f64)
        .ok_or("missing numeric \"schema\"")?;
    if schema != SCHEMA_VERSION as f64 {
        return Err(format!(
            "schema drift: expected {SCHEMA_VERSION}, found {schema}"
        ));
    }
    match v.get("kind").and_then(Value::as_str) {
        Some("batnet-prof/v1") => {}
        other => return Err(format!("\"kind\" must be \"batnet-prof/v1\", found {other:?}")),
    }
    match v.get("hz").and_then(Value::as_f64) {
        Some(hz) if hz >= 0.0 => {}
        _ => return Err("missing non-negative numeric \"hz\"".to_string()),
    }
    let window = v.get("window").ok_or("missing object \"window\"")?;
    if !matches!(window, Value::Obj(_)) {
        return Err("\"window\" must be an object".to_string());
    }
    for k in ["ticks", "duration_ms"] {
        match window.get(k).and_then(Value::as_f64) {
            Some(n) if n >= 0.0 => {}
            _ => return Err(format!("window missing non-negative numeric \"{k}\"")),
        }
    }
    let sampler = v.get("sampler").ok_or("missing object \"sampler\"")?;
    if !matches!(sampler, Value::Obj(_)) {
        return Err("\"sampler\" must be an object".to_string());
    }
    let mut acct = [0.0; 5];
    for (i, k) in ["samples", "recorded", "dropped", "truncated", "overhead_us"]
        .iter()
        .enumerate()
    {
        match sampler.get(k).and_then(Value::as_f64) {
            Some(n) if n >= 0.0 => acct[i] = n,
            _ => return Err(format!("sampler missing non-negative numeric \"{k}\"")),
        }
    }
    let (samples, recorded, dropped) = (acct[0], acct[1], acct[2]);
    if samples != recorded + dropped {
        return Err(format!(
            "sampler accounting does not balance: samples {samples} != \
             recorded {recorded} + dropped {dropped}"
        ));
    }
    let Some(Value::Obj(gauges)) = v.get("gauges") else {
        return Err("missing object \"gauges\"".to_string());
    };
    for (name, g) in gauges {
        if g.as_f64().is_none() {
            return Err(format!("gauge {name}: value is not numeric"));
        }
    }
    let stacks = v
        .get("stacks")
        .and_then(Value::as_arr)
        .ok_or("missing array \"stacks\"")?;
    let mut counted = 0.0;
    for (i, s) in stacks.iter().enumerate() {
        match s.get("stack").and_then(Value::as_str) {
            Some(st) if !st.is_empty() => {}
            _ => return Err(format!("stack {i}: missing non-empty string \"stack\"")),
        }
        match s.get("count").and_then(Value::as_f64) {
            Some(c) if c >= 1.0 => counted += c,
            _ => return Err(format!("stack {i}: missing positive numeric \"count\"")),
        }
    }
    if counted != recorded {
        return Err(format!(
            "stack counts sum to {counted} but sampler recorded {recorded}"
        ));
    }
    Ok(())
}

/// Validates one `results/TRAJECTORY.jsonl` row: a commit-stamped bench
/// summary (`{schema, bench, commit, unix, rows, total_ms}`) appended by
/// `harness bench-all`.
pub fn validate_trajectory_row(v: &Value) -> Result<(), String> {
    let schema = v
        .get("schema")
        .and_then(Value::as_f64)
        .ok_or("missing numeric \"schema\"")?;
    if schema != SCHEMA_VERSION as f64 {
        return Err(format!(
            "schema drift: expected {SCHEMA_VERSION}, found {schema}"
        ));
    }
    for k in ["bench", "commit"] {
        match v.get(k).and_then(Value::as_str) {
            Some(s) if !s.is_empty() => {}
            _ => return Err(format!("missing non-empty string \"{k}\"")),
        }
    }
    match v.get("unix").and_then(Value::as_f64) {
        Some(u) if u >= 0.0 => {}
        _ => return Err("missing non-negative numeric \"unix\"".to_string()),
    }
    match v.get("rows").and_then(Value::as_f64) {
        Some(r) if r >= 1.0 => {}
        _ => return Err("missing positive numeric \"rows\"".to_string()),
    }
    match v.get("total_ms").and_then(Value::as_f64) {
        Some(t) if t >= 0.0 => {}
        _ => return Err("missing non-negative numeric \"total_ms\"".to_string()),
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::Span;

    #[test]
    fn capture_serialize_validate_roundtrip() {
        let _g = crate::span::test_guard();
        crate::reset();
        {
            let _root = Span::enter("pipeline");
            let _child = Span::enter("route.simulate");
            crate::counter_add("route.sweeps", 7);
            crate::gauge_set("bdd.nodes", 42.0);
            crate::observe("reach.relaxations", 30);
            crate::event("quarantine", "r9", "parse-panic");
        }
        let mut report = capture();
        report.meta.insert("commit".into(), "abc123".into());
        report.quarantined.push(QuarantineEntry {
            device: "r9".into(),
            stage: "parse".into(),
            code: "parse-panic".into(),
            detail: "index out of bounds".into(),
        });
        report.partial = Some(PartialOutcome {
            stage: "bgp-fixed-point".into(),
            limit: "deadline (120000 ms)".into(),
            abandoned: vec!["10.0.0.0/8".into()],
        });
        report.snapshot = Some(SnapshotSummary {
            devices: 3,
            quarantined: 1,
            diagnostics: 2,
        });
        let text = report.to_json();
        let parsed = json::parse(&text).expect("report JSON parses");
        validate_run_report(&parsed).expect("report validates");
        // The span tree nests route.simulate under pipeline.
        let spans = parsed.get("spans").and_then(Value::as_arr).expect("spans");
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].get("name").and_then(Value::as_str), Some("pipeline"));
        let kids = spans[0]
            .get("children")
            .and_then(Value::as_arr)
            .expect("children");
        assert_eq!(
            kids[0].get("name").and_then(Value::as_str),
            Some("route.simulate")
        );
        // Accessors see the same data.
        assert_eq!(report.span_count("pipeline"), 1);
        assert_eq!(report.counter("route.sweeps"), Some(7));
    }

    #[test]
    fn validator_rejects_drift() {
        let good = r#"{"schema": 1, "meta": {}, "spans": [], "metrics": {},
                       "events": [], "events_dropped": 0, "quarantined": [],
                       "partial": null, "snapshot": null}"#;
        let v = json::parse(good).expect("parses");
        validate_run_report(&v).expect("valid");
        let drifted = good.replace("\"schema\": 1", "\"schema\": 2");
        let v = json::parse(&drifted).expect("parses");
        assert!(validate_run_report(&v).unwrap_err().contains("drift"));
        let missing = good.replace("\"quarantined\": []", "\"quarantined\": 5");
        let v = json::parse(&missing).expect("parses");
        assert!(validate_run_report(&v).is_err());
    }

    #[test]
    fn tracez_schema_validates() {
        let doc = r#"{"schema": 1, "capacity": 256, "evicted": 3, "traces": [
          {"trace_id": "9a1b2c3d4e5f6071", "method": "GET", "path": "/healthz",
           "status": 200, "queue_wait_ms": 0.25, "handler_ms": 1.5,
           "deadline_ms": null, "partial": false,
           "spans": [{"name": "serve.request", "start_ms": 0, "ms": 1.5,
                      "self_ms": 1.5, "children": []}]}]}"#;
        let v = json::parse(doc).expect("parses");
        validate_tracez(&v).expect("valid tracez document");
        for (needle, replacement, what) in [
            (r#""trace_id": "9a1b2c3d4e5f6071""#, r#""trace_id": """#, "empty trace id"),
            (r#""status": 200"#, r#""status": 42"#, "non-HTTP status"),
            (r#""queue_wait_ms": 0.25"#, r#""queue_wait_ms": -1"#, "negative wait"),
            (r#""partial": false"#, r#""partial": "no""#, "non-boolean partial"),
            (r#""capacity": 256"#, r#""capacity": 0"#, "zero capacity"),
        ] {
            let bad = doc.replace(needle, replacement);
            let v = json::parse(&bad).expect("parses");
            assert!(validate_tracez(&v).is_err(), "{what} must fail");
        }
    }

    #[test]
    fn bench_schema_validates() {
        let doc = r#"{"schema": 1, "bench": "table2", "meta": {},
          "rows": [{"bench": "table2", "network": "N2", "stage": "parse",
                    "ms": 1.25, "meta": {}}],
          "report": {"schema": 1, "meta": {}, "spans": [], "metrics": {},
                     "events": [], "events_dropped": 0, "quarantined": [],
                     "partial": null, "snapshot": null}}"#;
        let v = json::parse(doc).expect("parses");
        validate_bench(&v).expect("valid bench file");
        let bad = doc.replace("\"ms\": 1.25", "\"ms\": -1");
        let v = json::parse(&bad).expect("parses");
        assert!(validate_bench(&v).is_err());
        let empty = doc.replace(
            r#""rows": [{"bench": "table2", "network": "N2", "stage": "parse",
                    "ms": 1.25, "meta": {}}]"#,
            r#""rows": []"#,
        );
        if let Ok(v) = json::parse(&empty) {
            assert!(validate_bench(&v).is_err());
        }
    }

    #[test]
    fn profile_schema_validates() {
        let doc = r#"{"schema": 1, "kind": "batnet-prof/v1", "hz": 99,
          "window": {"ticks": 10, "duration_ms": 101.5},
          "sampler": {"samples": 10, "recorded": 9, "dropped": 1,
                      "truncated": 0, "overhead_us": 42},
          "gauges": {"heap.current_bytes": 0, "bdd.nodes": 1234},
          "stacks": [{"stack": "harness;network.n1;parse", "count": 6},
                     {"stack": "(idle)", "count": 3}]}"#;
        let v = json::parse(doc).expect("parses");
        validate_profile(&v).expect("valid profile");
        for (needle, replacement, what) in [
            (r#""kind": "batnet-prof/v1""#, r#""kind": "other""#, "wrong kind"),
            (r#""dropped": 1"#, r#""dropped": 2"#, "unbalanced accounting"),
            (r#""count": 3"#, r#""count": 0"#, "zero stack count"),
            (r#""stack": "(idle)""#, r#""stack": """#, "empty stack path"),
            (r#""bdd.nodes": 1234"#, r#""bdd.nodes": "many""#, "non-numeric gauge"),
        ] {
            let bad = doc.replace(needle, replacement);
            let v = json::parse(&bad).expect("parses");
            assert!(validate_profile(&v).is_err(), "{what} must fail");
        }
        // Recorded samples must all be folded somewhere: 6 + 2 != 9.
        let short = doc.replace(r#""count": 3"#, r#""count": 2"#);
        let v = json::parse(&short).expect("parses");
        assert!(validate_profile(&v).is_err(), "missing folds must fail");
    }

    #[test]
    fn trajectory_row_validates() {
        let row = r#"{"schema": 1, "bench": "table2", "commit": "0ecb0d3",
                      "unix": 1754600000, "rows": 12, "total_ms": 842.5}"#;
        let v = json::parse(row).expect("parses");
        validate_trajectory_row(&v).expect("valid trajectory row");
        for (needle, replacement) in [
            (r#""commit": "0ecb0d3""#, r#""commit": """#),
            (r#""rows": 12"#, r#""rows": 0"#),
            (r#""total_ms": 842.5"#, r#""total_ms": -1"#),
        ] {
            let bad = row.replace(needle, replacement);
            let v = json::parse(&bad).expect("parses");
            assert!(validate_trajectory_row(&v).is_err());
        }
    }
}
