//! The sharded recorder backbone: one telemetry shard per OS thread.
//!
//! Every recording call (`Span::enter`/close, `counter_add`, `observe`,
//! `event`) touches only its own thread's shard — an uncontended
//! `Mutex` reached through a `thread_local!` handle — so concurrent
//! workers never serialize on a global lock. The global pieces are all
//! lock-free on the hot path: the run epoch is an atomic nanosecond
//! offset, span identities come from one atomic counter, and the shard
//! registry's mutex is taken only on first use per thread and at
//! capture/reset time.
//!
//! `capture()` performs the deterministic merge: every shard is locked
//! briefly (one at a time), cloned, and the pieces are combined in a
//! stable order — spans by their globally unique open sequence, metrics
//! name-wise (counters sum, histograms add bucket-wise, gauges resolve
//! by write stamp), events by timestamp with shard registration order
//! as the tie-break. A single-threaded run has exactly one shard, so
//! the merge is the identity and reports stay byte-identical with the
//! pre-sharding recorder.
//!
//! Shards are owned by `Arc` from the registry, so a worker thread that
//! exits before capture leaves its recorded data behind for the merge
//! (the thread-local handle only drops its own reference).

use crate::clock;
use crate::metrics::{Event, MetricSlot};
use crate::span::SpanSlot;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};
use std::time::Instant;

/// Everything one thread records between resets.
#[derive(Default)]
pub(crate) struct ShardData {
    /// Spans in open order (closing rewrites `dur_ns` in place).
    pub spans: Vec<SpanSlot>,
    /// This thread's slice of the metrics registry.
    pub metrics: BTreeMap<String, MetricSlot>,
    /// This thread's events, capped per shard.
    pub events: Vec<Event>,
    /// Events beyond the per-shard retention cap.
    pub events_dropped: u64,
    /// Span-name → interned id, consulted under the data lock every
    /// span open already takes. Never cleared on reset: name ids stay
    /// stable for the life of the shard so a sampler snapshot taken
    /// across a reset still resolves.
    pub name_ids: BTreeMap<String, u32>,
}

/// Frames retained in a [`StackView`] snapshot. Deeper stacks publish
/// their depth honestly and truncate the frames; the sampler counts
/// them (`truncated` in the profile) rather than losing them silently.
pub(crate) const STACK_VIEW_FRAMES: usize = 64;

/// Outcome of one lock-free stack read.
pub(crate) enum StackRead {
    /// A consistent snapshot: interned frame ids, root first, plus
    /// whether the live stack was deeper than the view retains.
    Ok { frames: Vec<u32>, truncated: bool },
    /// The writer kept racing the reader past the retry budget. The
    /// sampler accounts this as a dropped sample — never silent.
    Torn,
}

/// A seqlock snapshot of one thread's live open-span stack. The owning
/// thread is the only writer, so publication needs no lock: bump the
/// generation to odd, store the frames (each an interned name id),
/// bump back to even. Readers (the sampler thread) retry while the
/// generation is odd or moves, so the span hot path pays two relaxed
/// `fetch_add`s and a handful of relaxed stores — no shared lock, no
/// waiting on the sampler.
pub(crate) struct StackView {
    generation: AtomicU64,
    depth: AtomicUsize,
    frames: [AtomicU32; STACK_VIEW_FRAMES],
}

impl Default for StackView {
    fn default() -> StackView {
        StackView {
            generation: AtomicU64::new(0),
            depth: AtomicUsize::new(0),
            frames: std::array::from_fn(|_| AtomicU32::new(0)),
        }
    }
}

impl StackView {
    /// Publishes the current stack (root first). Called only from the
    /// shard's owning thread — the single-writer seqlock invariant.
    pub fn publish(&self, frames: &[u32]) {
        // Odd generation: snapshot in flight. The acquire half keeps
        // the frame stores from floating above this increment.
        self.generation.fetch_add(1, Ordering::AcqRel);
        self.depth.store(frames.len(), Ordering::Relaxed);
        for (slot, &f) in self.frames.iter().zip(frames) {
            slot.store(f, Ordering::Relaxed);
        }
        // Even again: snapshot complete. Release keeps the stores above.
        self.generation.fetch_add(1, Ordering::Release);
    }

    /// One consistent read, bounded retries. Reuses `scratch` so a
    /// steady-state sampler allocates nothing per shard per tick.
    pub fn read(&self, scratch: &mut Vec<u32>) -> StackRead {
        for _ in 0..8 {
            let before = self.generation.load(Ordering::Acquire);
            if before & 1 == 1 {
                std::hint::spin_loop();
                continue;
            }
            let depth = self.depth.load(Ordering::Relaxed);
            let take = depth.min(STACK_VIEW_FRAMES);
            scratch.clear();
            for slot in &self.frames[..take] {
                scratch.push(slot.load(Ordering::Relaxed));
            }
            std::sync::atomic::fence(Ordering::Acquire);
            if self.generation.load(Ordering::Relaxed) == before {
                return StackRead::Ok {
                    frames: scratch.clone(),
                    truncated: depth > STACK_VIEW_FRAMES,
                };
            }
        }
        StackRead::Torn
    }
}

/// One thread's shard: its registration sequence (the stable `tid` in
/// merged records and exported traces) plus the data behind an
/// uncontended lock.
pub(crate) struct Shard {
    /// Registration order, dense from 0. The merge and the Chrome-trace
    /// exporter use it as the OS-thread identity.
    pub seq: u64,
    data: Mutex<ShardData>,
    /// Interned-id → span-name table, appended on first use of a name
    /// (under the data lock, so the lock order is always data → names)
    /// and read by the sampler to resolve snapshot frames.
    names: Mutex<Vec<String>>,
    /// The live open-span stack, lock-free-readable.
    pub stack: StackView,
}

impl Shard {
    /// Locks this shard's data, recovering from poisoning: a panic on
    /// some thread mid-record must never disable telemetry for the
    /// rest of the process (serve workers run under `catch_unwind`).
    pub fn lock(&self) -> MutexGuard<'_, ShardData> {
        self.data.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Interns `name` for stack-view frames. Callers already hold the
    /// data lock (span open); the names lock is only taken for a name
    /// this shard has never seen.
    pub fn intern(&self, data: &mut ShardData, name: &str) -> u32 {
        if let Some(&id) = data.name_ids.get(name) {
            return id;
        }
        let mut names = self.names.lock().unwrap_or_else(|e| e.into_inner());
        let id = names.len() as u32;
        names.push(name.to_string());
        drop(names);
        data.name_ids.insert(name.to_string(), id);
        id
    }

    /// Resolves interned frame ids to a `;`-joined span-name path (the
    /// same key shape as `attr::path_totals`). Unknown ids — impossible
    /// unless a snapshot tears undetected — render as `?<id>` rather
    /// than being dropped.
    pub fn resolve_path(&self, frames: &[u32]) -> String {
        let names = self.names.lock().unwrap_or_else(|e| e.into_inner());
        let mut out = String::new();
        for (i, &f) in frames.iter().enumerate() {
            if i > 0 {
                out.push(';');
            }
            match names.get(f as usize) {
                Some(n) => out.push_str(n),
                None => {
                    out.push('?');
                    let _ = std::fmt::Write::write_fmt(&mut out, format_args!("{f}"));
                }
            }
        }
        out
    }
}

fn registry() -> &'static Mutex<Vec<Arc<Shard>>> {
    static R: OnceLock<Mutex<Vec<Arc<Shard>>>> = OnceLock::new();
    R.get_or_init(|| Mutex::new(Vec::new()))
}

fn registry_lock() -> MutexGuard<'static, Vec<Arc<Shard>>> {
    registry().lock().unwrap_or_else(|e| e.into_inner())
}

thread_local! {
    static LOCAL: std::cell::OnceCell<Arc<Shard>> = const { std::cell::OnceCell::new() };
}

/// Runs `f` on the calling thread's shard, registering it on first use.
pub(crate) fn with_local<R>(f: impl FnOnce(&Arc<Shard>) -> R) -> R {
    LOCAL.with(|cell| {
        let shard = cell.get_or_init(|| {
            let mut reg = registry_lock();
            let shard = Arc::new(Shard {
                seq: reg.len() as u64,
                data: Mutex::new(ShardData::default()),
                names: Mutex::new(Vec::new()),
                stack: StackView::default(),
            });
            reg.push(Arc::clone(&shard));
            shard
        });
        f(shard)
    })
}

/// Runs `f` on the calling thread's shard only if one is already
/// registered — the stack-view reset path uses this so resetting the
/// recorder from a thread that never recorded doesn't mint a shard.
pub(crate) fn try_local<R>(f: impl FnOnce(&Arc<Shard>) -> R) -> Option<R> {
    LOCAL.with(|cell| cell.get().map(f))
}

/// A snapshot of every registered shard, in registration order.
pub(crate) fn all() -> Vec<Arc<Shard>> {
    registry_lock().clone()
}

/// Clears every shard's data (the registry itself is kept: threads stay
/// registered, their next record simply starts a fresh window).
pub(crate) fn reset_all() {
    for shard in all() {
        let mut data = shard.lock();
        data.spans.clear();
        data.metrics.clear();
        data.events.clear();
        data.events_dropped = 0;
    }
}

fn process_epoch() -> Instant {
    static E: OnceLock<Instant> = OnceLock::new();
    *E.get_or_init(clock::now)
}

static RUN_OFFSET_NS: AtomicU64 = AtomicU64::new(0);

/// Nanoseconds from the current run epoch to `at`. Lock-free: the run
/// epoch is an atomic offset from a fixed process epoch.
pub(crate) fn run_ns(at: Instant) -> u64 {
    let since_process = at
        .saturating_duration_since(process_epoch())
        .as_nanos()
        .min(u64::MAX as u128) as u64;
    since_process.saturating_sub(RUN_OFFSET_NS.load(Ordering::Relaxed))
}

/// Restarts the run epoch at "now".
pub(crate) fn reset_epoch() {
    let since_process = clock::now()
        .saturating_duration_since(process_epoch())
        .as_nanos()
        .min(u64::MAX as u128) as u64;
    RUN_OFFSET_NS.store(since_process, Ordering::Relaxed);
}
