//! The sharded recorder backbone: one telemetry shard per OS thread.
//!
//! Every recording call (`Span::enter`/close, `counter_add`, `observe`,
//! `event`) touches only its own thread's shard — an uncontended
//! `Mutex` reached through a `thread_local!` handle — so concurrent
//! workers never serialize on a global lock. The global pieces are all
//! lock-free on the hot path: the run epoch is an atomic nanosecond
//! offset, span identities come from one atomic counter, and the shard
//! registry's mutex is taken only on first use per thread and at
//! capture/reset time.
//!
//! `capture()` performs the deterministic merge: every shard is locked
//! briefly (one at a time), cloned, and the pieces are combined in a
//! stable order — spans by their globally unique open sequence, metrics
//! name-wise (counters sum, histograms add bucket-wise, gauges resolve
//! by write stamp), events by timestamp with shard registration order
//! as the tie-break. A single-threaded run has exactly one shard, so
//! the merge is the identity and reports stay byte-identical with the
//! pre-sharding recorder.
//!
//! Shards are owned by `Arc` from the registry, so a worker thread that
//! exits before capture leaves its recorded data behind for the merge
//! (the thread-local handle only drops its own reference).

use crate::clock;
use crate::metrics::{Event, MetricSlot};
use crate::span::SpanSlot;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};
use std::time::Instant;

/// Everything one thread records between resets.
#[derive(Default)]
pub(crate) struct ShardData {
    /// Spans in open order (closing rewrites `dur_ns` in place).
    pub spans: Vec<SpanSlot>,
    /// This thread's slice of the metrics registry.
    pub metrics: BTreeMap<String, MetricSlot>,
    /// This thread's events, capped per shard.
    pub events: Vec<Event>,
    /// Events beyond the per-shard retention cap.
    pub events_dropped: u64,
}

/// One thread's shard: its registration sequence (the stable `tid` in
/// merged records and exported traces) plus the data behind an
/// uncontended lock.
pub(crate) struct Shard {
    /// Registration order, dense from 0. The merge and the Chrome-trace
    /// exporter use it as the OS-thread identity.
    pub seq: u64,
    data: Mutex<ShardData>,
}

impl Shard {
    /// Locks this shard's data, recovering from poisoning: a panic on
    /// some thread mid-record must never disable telemetry for the
    /// rest of the process (serve workers run under `catch_unwind`).
    pub fn lock(&self) -> MutexGuard<'_, ShardData> {
        self.data.lock().unwrap_or_else(|e| e.into_inner())
    }
}

fn registry() -> &'static Mutex<Vec<Arc<Shard>>> {
    static R: OnceLock<Mutex<Vec<Arc<Shard>>>> = OnceLock::new();
    R.get_or_init(|| Mutex::new(Vec::new()))
}

fn registry_lock() -> MutexGuard<'static, Vec<Arc<Shard>>> {
    registry().lock().unwrap_or_else(|e| e.into_inner())
}

thread_local! {
    static LOCAL: std::cell::OnceCell<Arc<Shard>> = const { std::cell::OnceCell::new() };
}

/// Runs `f` on the calling thread's shard, registering it on first use.
pub(crate) fn with_local<R>(f: impl FnOnce(&Arc<Shard>) -> R) -> R {
    LOCAL.with(|cell| {
        let shard = cell.get_or_init(|| {
            let mut reg = registry_lock();
            let shard = Arc::new(Shard {
                seq: reg.len() as u64,
                data: Mutex::new(ShardData::default()),
            });
            reg.push(Arc::clone(&shard));
            shard
        });
        f(shard)
    })
}

/// A snapshot of every registered shard, in registration order.
pub(crate) fn all() -> Vec<Arc<Shard>> {
    registry_lock().clone()
}

/// Clears every shard's data (the registry itself is kept: threads stay
/// registered, their next record simply starts a fresh window).
pub(crate) fn reset_all() {
    for shard in all() {
        let mut data = shard.lock();
        data.spans.clear();
        data.metrics.clear();
        data.events.clear();
        data.events_dropped = 0;
    }
}

fn process_epoch() -> Instant {
    static E: OnceLock<Instant> = OnceLock::new();
    *E.get_or_init(clock::now)
}

static RUN_OFFSET_NS: AtomicU64 = AtomicU64::new(0);

/// Nanoseconds from the current run epoch to `at`. Lock-free: the run
/// epoch is an atomic offset from a fixed process epoch.
pub(crate) fn run_ns(at: Instant) -> u64 {
    let since_process = at
        .saturating_duration_since(process_epoch())
        .as_nanos()
        .min(u64::MAX as u128) as u64;
    since_process.saturating_sub(RUN_OFFSET_NS.load(Ordering::Relaxed))
}

/// Restarts the run epoch at "now".
pub(crate) fn reset_epoch() {
    let since_process = clock::now()
        .saturating_duration_since(process_epoch())
        .as_nanos()
        .min(u64::MAX as u128) as u64;
    RUN_OFFSET_NS.store(since_process, Ordering::Relaxed);
}
