//! Noise-aware performance diffing: compare two bench files or two run
//! reports and say whether anything got slower — without crying wolf
//! over timer jitter.
//!
//! A row regresses only when `|Δmedian|` exceeds
//! `max(k·MAD, pct·base, min_ms)`: the MAD term comes from
//! `--repeat`-derived baselines (per-row `mad_ms` meta), the percentage
//! floor covers baselines recorded without repeats (MAD 0), and the
//! absolute floor keeps sub-millisecond noise from ever flagging.
//! Improvements are reported but never fail; structural drift (a stage
//! present in the baseline but missing from the new file, or vice
//! versa) always fails — a silently vanished stage is how perf bugs
//! hide.
//!
//! Bench files are compared row-by-row on the `(bench, network, stage)`
//! key; run reports are compared on aggregated span paths
//! ([`crate::attr::path_totals`]). Comparing a debug-profile file
//! against a release baseline is refused outright (the numbers are not
//! comparable) unless forced.

use crate::attr;
use crate::json::{self, Value};
use crate::report::{validate_bench, validate_run_report};
use crate::trace;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Diff thresholds and modes.
#[derive(Clone, Debug)]
pub struct DiffOptions {
    /// MAD multiplier in the noise threshold.
    pub k: f64,
    /// Relative floor: a fraction of the baseline value.
    pub pct: f64,
    /// Absolute floor in milliseconds.
    pub min_ms: f64,
    /// Structure/schema gate only: check keys and shapes, ignore time.
    pub structure_only: bool,
    /// Compare even across build profiles.
    pub force: bool,
}

impl Default for DiffOptions {
    fn default() -> DiffOptions {
        DiffOptions {
            k: 4.0,
            pct: 0.25,
            min_ms: 0.01,
            structure_only: false,
            force: false,
        }
    }
}

/// What kind of drift a finding reports.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FindingKind {
    /// Slower than the noise threshold allows. Fails.
    Regression,
    /// Faster than the noise threshold. Informational.
    Improvement,
    /// Key in the baseline but not the new file. Fails.
    MissingInNew,
    /// Key in the new file but not the baseline. Fails for bench files
    /// (schema drift), informational for run reports (span structure
    /// may legitimately grow).
    ExtraInNew,
}

/// One diff finding.
#[derive(Clone, Debug)]
pub struct Finding {
    /// Drift class.
    pub kind: FindingKind,
    /// The `(bench, network, stage)` key or span path.
    pub key: String,
    /// Baseline milliseconds (0 for `ExtraInNew`).
    pub base_ms: f64,
    /// New milliseconds (0 for `MissingInNew`).
    pub new_ms: f64,
    /// The threshold that was exceeded (0 for structural findings).
    pub threshold_ms: f64,
}

impl Finding {
    /// One-line human rendering.
    pub fn render(&self) -> String {
        match self.kind {
            FindingKind::Regression | FindingKind::Improvement => {
                let word = if self.kind == FindingKind::Regression {
                    "REGRESSION"
                } else {
                    "improvement"
                };
                let pct = if self.base_ms > 0.0 {
                    (self.new_ms - self.base_ms) / self.base_ms * 100.0
                } else {
                    0.0
                };
                format!(
                    "{word} {}: {:.3}ms -> {:.3}ms ({:+.0}%, threshold {:.3}ms)",
                    self.key, self.base_ms, self.new_ms, pct, self.threshold_ms
                )
            }
            FindingKind::MissingInNew => {
                format!("MISSING {}: in baseline ({:.3}ms) but not in new file", self.key, self.base_ms)
            }
            FindingKind::ExtraInNew => {
                format!("EXTRA {}: in new file ({:.3}ms) but not in baseline", self.key, self.new_ms)
            }
        }
    }
}

/// The full diff outcome.
#[derive(Clone, Debug, Default)]
pub struct DiffReport {
    /// All findings, in key order.
    pub findings: Vec<Finding>,
    /// Non-failing notes (networks absent from the new file, rustc
    /// version drift, …).
    pub warnings: Vec<String>,
    /// Keys compared on both sides.
    pub compared: usize,
    /// Whether structural findings fail (bench mode) or inform (report
    /// mode).
    strict_structure: bool,
}

impl DiffReport {
    /// Findings that should fail a CI gate.
    pub fn failures(&self) -> Vec<&Finding> {
        self.findings
            .iter()
            .filter(|f| match f.kind {
                FindingKind::Regression => true,
                FindingKind::Improvement => false,
                FindingKind::MissingInNew => true,
                FindingKind::ExtraInNew => self.strict_structure,
            })
            .collect()
    }

    /// True when the gate should pass.
    pub fn ok(&self) -> bool {
        self.failures().is_empty()
    }

    /// Text rendering, one line per finding plus warnings.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for w in &self.warnings {
            let _ = writeln!(out, "warning: {w}");
        }
        for f in &self.findings {
            let _ = writeln!(out, "{}", f.render());
        }
        let _ = writeln!(
            out,
            "compared {} keys: {} failing, {} informational",
            self.compared,
            self.failures().len(),
            self.findings.len() - self.failures().len()
        );
        out
    }

    /// JSON rendering (`{ok, compared, findings, warnings}`).
    pub fn render_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        let _ = write!(out, "{{\"ok\": {}, \"compared\": {}", self.ok(), self.compared);
        out.push_str(", \"findings\": [");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str("{\"kind\": ");
            let kind = match f.kind {
                FindingKind::Regression => "regression",
                FindingKind::Improvement => "improvement",
                FindingKind::MissingInNew => "missing",
                FindingKind::ExtraInNew => "extra",
            };
            json::write_str(&mut out, kind);
            out.push_str(", \"key\": ");
            json::write_str(&mut out, &f.key);
            out.push_str(", \"base_ms\": ");
            json::write_f64(&mut out, f.base_ms);
            out.push_str(", \"new_ms\": ");
            json::write_f64(&mut out, f.new_ms);
            out.push_str(", \"threshold_ms\": ");
            json::write_f64(&mut out, f.threshold_ms);
            out.push('}');
        }
        out.push_str("], \"warnings\": [");
        for (i, w) in self.warnings.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            json::write_str(&mut out, w);
        }
        out.push_str("]}");
        out
    }
}

/// One comparable measurement.
#[derive(Clone, Copy, Debug, Default)]
struct Sample {
    ms: f64,
    mad_ms: f64,
}

fn threshold(base: Sample, opts: &DiffOptions) -> f64 {
    (opts.k * base.mad_ms).max(opts.pct * base.ms).max(opts.min_ms)
}

fn compare(
    base: &BTreeMap<String, Sample>,
    new: &BTreeMap<String, Sample>,
    opts: &DiffOptions,
    strict_structure: bool,
    skip_missing: impl Fn(&str) -> bool,
) -> DiffReport {
    let mut report = DiffReport {
        strict_structure,
        ..DiffReport::default()
    };
    for (key, b) in base {
        let Some(n) = new.get(key) else {
            if skip_missing(key) {
                continue;
            }
            report.findings.push(Finding {
                kind: FindingKind::MissingInNew,
                key: key.clone(),
                base_ms: b.ms,
                new_ms: 0.0,
                threshold_ms: 0.0,
            });
            continue;
        };
        report.compared += 1;
        if opts.structure_only {
            continue;
        }
        let thr = threshold(*b, opts);
        let delta = n.ms - b.ms;
        if delta.abs() > thr {
            report.findings.push(Finding {
                kind: if delta > 0.0 {
                    FindingKind::Regression
                } else {
                    FindingKind::Improvement
                },
                key: key.clone(),
                base_ms: b.ms,
                new_ms: n.ms,
                threshold_ms: thr,
            });
        }
    }
    for (key, n) in new {
        if !base.contains_key(key) {
            report.findings.push(Finding {
                kind: FindingKind::ExtraInNew,
                key: key.clone(),
                base_ms: 0.0,
                new_ms: n.ms,
                threshold_ms: 0.0,
            });
        }
    }
    report
}

fn meta_str<'v>(doc: &'v Value, key: &str) -> Option<&'v str> {
    doc.get("meta").and_then(|m| m.get(key)).and_then(Value::as_str)
}

fn bench_samples(doc: &Value) -> (BTreeMap<String, Sample>, std::collections::BTreeSet<String>) {
    let mut samples = BTreeMap::new();
    let mut networks = std::collections::BTreeSet::new();
    let rows = doc.get("rows").and_then(Value::as_arr).unwrap_or(&[]);
    for row in rows {
        let get = |k: &str| row.get(k).and_then(Value::as_str).unwrap_or("?");
        let key = format!("{}/{}/{}", get("bench"), get("network"), get("stage"));
        networks.insert(get("network").to_string());
        let ms = row.get("ms").and_then(Value::as_f64).unwrap_or(0.0);
        let mad_ms = row
            .get("meta")
            .and_then(|m| m.get("mad_ms"))
            .and_then(Value::as_str)
            .and_then(|s| s.parse::<f64>().ok())
            .unwrap_or(0.0);
        samples.insert(key, Sample { ms, mad_ms });
    }
    (samples, networks)
}

/// Diffs two parsed bench documents (`BENCH_*.json`). Both must pass
/// the bench schema validator; a build-profile mismatch is refused
/// unless `opts.force`. Networks wholly absent from the new file are
/// warnings (a subset run, like the CI perf smoke, is legitimate);
/// a missing *stage* for a network both files cover is a failure.
pub fn diff_bench(base: &Value, new: &Value, opts: &DiffOptions) -> Result<DiffReport, String> {
    validate_bench(base).map_err(|e| format!("baseline: {e}"))?;
    validate_bench(new).map_err(|e| format!("new file: {e}"))?;
    let mut warnings = Vec::new();
    match (meta_str(base, "profile"), meta_str(new, "profile")) {
        (Some(b), Some(n)) if b != n && !opts.force => {
            return Err(format!(
                "refusing to compare build profiles {b:?} (baseline) vs {n:?} (new); \
                 regenerate with matching profiles or pass --force"
            ));
        }
        (Some(b), Some(n)) if b != n => {
            warnings.push(format!("comparing across build profiles ({b} vs {n})"));
        }
        (None, _) | (_, None) => {
            warnings.push("a file has no build-profile provenance; comparison may be bogus".into());
        }
        _ => {}
    }
    if let (Some(b), Some(n)) = (meta_str(base, "rustc"), meta_str(new, "rustc")) {
        if b != n {
            warnings.push(format!("rustc versions differ ({b} vs {n})"));
        }
    }
    let (base_samples, _) = bench_samples(base);
    let (new_samples, new_networks) = bench_samples(new);
    let absent: std::collections::BTreeSet<&str> = base_samples
        .keys()
        .filter_map(|k| k.split('/').nth(1))
        .filter(|n| !new_networks.contains(*n))
        .collect();
    for n in &absent {
        warnings.push(format!("network {n} absent from the new file; its rows were skipped"));
    }
    let mut report = compare(&base_samples, &new_samples, opts, true, |key| {
        key.split('/').nth(1).is_some_and(|n| absent.contains(n))
    });
    report.warnings.splice(0..0, warnings);
    Ok(report)
}

/// Diffs two parsed run reports by aggregated span path. Extra paths in
/// the new report are informational (structure may grow); a path that
/// vanished, or one past the noise threshold, fails. Diffing a report
/// against itself is always empty.
pub fn diff_reports(base: &Value, new: &Value, opts: &DiffOptions) -> Result<DiffReport, String> {
    validate_run_report(base).map_err(|e| format!("baseline: {e}"))?;
    validate_run_report(new).map_err(|e| format!("new report: {e}"))?;
    let samples = |doc: &Value| -> Result<BTreeMap<String, Sample>, String> {
        let forest = trace::forest_from_json(doc)?;
        let mut flat: Vec<crate::span::SpanRecord> = Vec::new();
        fn push(
            node: &trace::SpanNode,
            parent: Option<usize>,
            flat: &mut Vec<crate::span::SpanRecord>,
        ) {
            let idx = flat.len();
            flat.push(crate::span::SpanRecord {
                name: node.name.clone(),
                parent,
                start_ns: node.start_ns,
                dur_ns: Some(node.dur_ns),
                tid: 0,
            });
            for c in &node.children {
                push(c, Some(idx), flat);
            }
        }
        for root in &forest {
            push(root, None, &mut flat);
        }
        Ok(attr::path_totals(&flat)
            .into_iter()
            .map(|(path, t)| {
                (
                    path,
                    Sample {
                        ms: t.total_ns as f64 / 1e6,
                        mad_ms: 0.0,
                    },
                )
            })
            .collect())
    };
    Ok(compare(&samples(base)?, &samples(new)?, opts, false, |_| false))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bench_doc(graph_ms: f64, mad: &str, profile: &str, extra_stage: bool) -> Value {
        let extra = if extra_stage {
            r#", {"bench": "t", "network": "N2", "stage": "bonus", "ms": 1.0, "meta": {}}"#
        } else {
            ""
        };
        let doc = format!(
            r#"{{"schema": 1, "bench": "t", "meta": {{"profile": "{profile}", "rustc": "rustc 1.0"}},
              "rows": [
                {{"bench": "t", "network": "N2", "stage": "parse", "ms": 2.0,
                  "meta": {{"mad_ms": "{mad}"}}}},
                {{"bench": "t", "network": "N2", "stage": "graph", "ms": {graph_ms},
                  "meta": {{"mad_ms": "{mad}"}}}}{extra}],
              "report": {{"schema": 1, "meta": {{}}, "spans": [], "metrics": {{}},
                         "events": [], "events_dropped": 0, "quarantined": [],
                         "partial": null, "snapshot": null}}}}"#
        );
        json::parse(&doc).expect("test doc parses")
    }

    #[test]
    fn self_diff_is_empty() {
        let doc = bench_doc(50.0, "0.5", "release", false);
        let d = diff_bench(&doc, &doc, &DiffOptions::default()).expect("comparable");
        assert!(d.findings.is_empty(), "{:?}", d.findings);
        assert!(d.ok());
        assert_eq!(d.compared, 2);
    }

    #[test]
    fn two_x_slowdown_names_the_row() {
        let base = bench_doc(50.0, "0.5", "release", false);
        let new = bench_doc(100.0, "0.5", "release", false);
        let d = diff_bench(&base, &new, &DiffOptions::default()).expect("comparable");
        assert!(!d.ok());
        let fails = d.failures();
        assert_eq!(fails.len(), 1);
        assert_eq!(fails[0].kind, FindingKind::Regression);
        assert_eq!(fails[0].key, "t/N2/graph");
        assert!(fails[0].render().contains("t/N2/graph"));
    }

    #[test]
    fn mad_widens_the_threshold() {
        let base = bench_doc(50.0, "20.0", "release", false);
        let new = bench_doc(75.0, "20.0", "release", false);
        // Δ = 25ms < max(4·20, 0.25·50) = 80ms → noise, not a regression.
        let d = diff_bench(&base, &new, &DiffOptions::default()).expect("comparable");
        assert!(d.ok(), "{:?}", d.findings);
        // With MAD 0 the same Δ exceeds the 25% floor and flags.
        let base = bench_doc(50.0, "0", "release", false);
        let new = bench_doc(75.0, "0", "release", false);
        let d = diff_bench(&base, &new, &DiffOptions::default()).expect("comparable");
        assert!(!d.ok());
    }

    #[test]
    fn cross_profile_refused_unless_forced() {
        let base = bench_doc(50.0, "0", "release", false);
        let new = bench_doc(50.0, "0", "debug", false);
        assert!(diff_bench(&base, &new, &DiffOptions::default()).is_err());
        let forced = DiffOptions {
            force: true,
            ..DiffOptions::default()
        };
        let d = diff_bench(&base, &new, &forced).expect("forced comparison");
        assert!(d.warnings.iter().any(|w| w.contains("profiles")));
    }

    #[test]
    fn structural_drift_fails_even_structure_only() {
        let base = bench_doc(50.0, "0", "release", true);
        let new = bench_doc(5000.0, "0", "release", false);
        let opts = DiffOptions {
            structure_only: true,
            ..DiffOptions::default()
        };
        let d = diff_bench(&base, &new, &opts).expect("comparable");
        // The missing "bonus" stage fails; the 100× slowdown does not
        // (structure-only ignores time).
        let fails = d.failures();
        assert_eq!(fails.len(), 1);
        assert_eq!(fails[0].kind, FindingKind::MissingInNew);
        assert!(fails[0].key.contains("bonus"));
        // Extra stages in the new file are schema drift too.
        let d = diff_bench(&new, &base, &opts).expect("comparable");
        assert!(!d.ok());
        assert_eq!(d.failures()[0].kind, FindingKind::ExtraInNew);
    }

    #[test]
    fn subset_networks_warn_but_pass() {
        let base_doc = r#"{"schema": 1, "bench": "t", "meta": {"profile": "release"},
              "rows": [
                {"bench": "t", "network": "N2", "stage": "parse", "ms": 2.0, "meta": {}},
                {"bench": "t", "network": "N9", "stage": "parse", "ms": 9.0, "meta": {}}],
              "report": {"schema": 1, "meta": {}, "spans": [], "metrics": {},
                         "events": [], "events_dropped": 0, "quarantined": [],
                         "partial": null, "snapshot": null}}"#;
        let base = json::parse(base_doc).expect("parses");
        let new = bench_doc(50.0, "0", "release", false);
        // New covers only N2 (plus a graph stage the baseline lacks).
        let d = diff_bench(&base, &new, &DiffOptions::default()).expect("comparable");
        assert!(d.warnings.iter().any(|w| w.contains("N9")));
        assert!(!d.findings.iter().any(|f| f.key.contains("N9")));
    }

    #[test]
    fn report_self_diff_is_empty_and_json_renders() {
        let doc = r#"{"schema": 1, "meta": {}, "spans":
            [{"name": "run", "start_ms": 0, "ms": 10.0, "children":
              [{"name": "stage", "start_ms": 1, "ms": 4.0, "children": []}]}],
            "metrics": {}, "events": [], "events_dropped": 0,
            "quarantined": [], "partial": null, "snapshot": null}"#;
        let v = json::parse(doc).expect("parses");
        let d = diff_reports(&v, &v, &DiffOptions::default()).expect("comparable");
        assert!(d.findings.is_empty());
        assert!(d.ok());
        let rendered = json::parse(&d.render_json()).expect("diff JSON parses");
        assert_eq!(rendered.get("ok"), Some(&Value::Bool(true)));
    }
}
