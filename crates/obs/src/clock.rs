//! The one place in the workspace allowed to read the monotonic clock.
//!
//! A clippy `disallowed-methods` gate (see `clippy.toml` at the
//! workspace root) rejects `std::time::Instant::now()` in every other
//! crate, so ad-hoc timing cannot bypass the observability layer: code
//! either opens a [`crate::Span`] (observable in the run report) or
//! takes an explicit [`now`] timestamp (greppable, reviewable).

use std::time::Instant;

/// Returns the current monotonic instant. The only sanctioned
/// `Instant::now` in the workspace.
#[allow(clippy::disallowed_methods)]
pub fn now() -> Instant {
    Instant::now()
}
