//! Compares two bench files or run reports with noise-aware thresholds
//! and exits non-zero on regressions — the perf gate every future
//! change is judged with.
//!
//! ```text
//! obs-diff [options] BASELINE NEW
//!   --kind bench|report   force the document kind (default: autodetect,
//!                         bench when a "bench" key is present)
//!   --k F                 MAD multiplier in the threshold (default 4)
//!   --pct F               relative floor as a fraction (default 0.25)
//!   --min-ms F            absolute floor in ms (default 0.01)
//!   --structure-only      schema/structure gate, ignore timings
//!   --force               compare even across build profiles
//!   --json                emit the verdict as JSON
//! ```
//!
//! A row regresses only when `|Δmedian| > max(k·MAD, pct·base, min_ms)`.
//! Exit codes: 0 clean (improvements and warnings allowed), 1 failing
//! findings, 2 usage errors or incomparable inputs (schema-invalid
//! files, mismatched build profiles without `--force`).

use batnet_obs::diff::{diff_bench, diff_reports, DiffOptions};
use batnet_obs::json::{self, Value};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: obs-diff [--kind bench|report] [--k F] [--pct F] [--min-ms F]\n\
         \x20               [--structure-only] [--force] [--json] BASELINE NEW"
    );
    ExitCode::from(2)
}

fn load(path: &str) -> Result<Value, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    json::parse(&text).map_err(|e| format!("{path}: not valid JSON: {e}"))
}

fn main() -> ExitCode {
    let mut opts = DiffOptions::default();
    let mut kind: Option<String> = None;
    let mut as_json = false;
    let mut files: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut float = |name: &str| -> Option<f64> {
            match args.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(f) if f >= 0.0 => Some(f),
                _ => {
                    eprintln!("{name} wants a non-negative number");
                    None
                }
            }
        };
        match arg.as_str() {
            "--kind" => match args.next() {
                Some(k) if k == "bench" || k == "report" => kind = Some(k),
                _ => {
                    eprintln!("--kind wants 'bench' or 'report'");
                    return ExitCode::from(2);
                }
            },
            "--k" => match float("--k") {
                Some(f) => opts.k = f,
                None => return ExitCode::from(2),
            },
            "--pct" => match float("--pct") {
                Some(f) => opts.pct = f,
                None => return ExitCode::from(2),
            },
            "--min-ms" => match float("--min-ms") {
                Some(f) => opts.min_ms = f,
                None => return ExitCode::from(2),
            },
            "--structure-only" => opts.structure_only = true,
            "--force" => opts.force = true,
            "--json" => as_json = true,
            other if !other.starts_with("--") => files.push(other.to_string()),
            _ => return usage(),
        }
    }
    if files.len() != 2 {
        return usage();
    }
    let (base, new) = match (load(&files[0]), load(&files[1])) {
        (Ok(b), Ok(n)) => (b, n),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("obs-diff: {e}");
            return ExitCode::from(2);
        }
    };
    let is_bench = match kind.as_deref() {
        Some("bench") => true,
        Some(_) => false,
        None => base.get("bench").is_some() || new.get("bench").is_some(),
    };
    let result = if is_bench {
        diff_bench(&base, &new, &opts)
    } else {
        diff_reports(&base, &new, &opts)
    };
    let report = match result {
        Ok(r) => r,
        Err(e) => {
            eprintln!("obs-diff: {e}");
            return ExitCode::from(2);
        }
    };
    if as_json {
        println!("{}", report.render_json());
    } else {
        print!("{}", report.render_text());
    }
    if report.ok() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
