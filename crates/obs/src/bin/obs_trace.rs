//! Exports batnet run reports as Chrome trace JSON or folded-stack
//! flamegraph text.
//!
//! ```text
//! obs-trace [--format chrome|folded] [--out FILE] INPUT
//! obs-trace --validate TRACE.json
//! ```
//!
//! `INPUT` is a run-report JSON file, a `BENCH_*.json` bench file (the
//! embedded report is used), or a `batnet-prof/v1` sampling profile
//! (from `/profilez` or `harness --profile`; its folded stacks export
//! directly, so `--format folded` is implied). The Chrome output loads
//! in Perfetto or `chrome://tracing` (open the UI, drag the file in); it
//! is validated against the in-tree checker before it is written, so
//! `obs-trace` never emits a trace Perfetto would reject. `--validate`
//! checks an existing trace file and exits non-zero if it is not
//! loadable.

use batnet_obs::json::{self, Value};
use batnet_obs::report::validate_profile;
use batnet_obs::sampler::profile_folded;
use batnet_obs::trace::{chrome_trace, folded, forest_from_json, validate_chrome_trace};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!("usage: obs-trace [--format chrome|folded] [--out FILE] INPUT");
    eprintln!("       obs-trace --validate TRACE.json");
    ExitCode::from(2)
}

fn load(path: &str) -> Result<Value, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    json::parse(&text).map_err(|e| format!("{path}: not valid JSON: {e}"))
}

fn main() -> ExitCode {
    let mut format = "chrome".to_string();
    let mut out: Option<String> = None;
    let mut validate: Option<String> = None;
    let mut input: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--format" => match args.next() {
                Some(f) if f == "chrome" || f == "folded" => format = f,
                _ => {
                    eprintln!("--format wants 'chrome' or 'folded'");
                    return ExitCode::from(2);
                }
            },
            "--out" => match args.next() {
                Some(p) => out = Some(p),
                None => return usage(),
            },
            "--validate" => match args.next() {
                Some(p) => validate = Some(p),
                None => return usage(),
            },
            other if !other.starts_with("--") && input.is_none() => input = Some(other.to_string()),
            _ => return usage(),
        }
    }

    if let Some(path) = validate {
        let v = match load(&path) {
            Ok(v) => v,
            Err(e) => {
                eprintln!("obs-trace: {e}");
                return ExitCode::FAILURE;
            }
        };
        return match validate_chrome_trace(&v) {
            Ok(()) => {
                let n = v
                    .get("traceEvents")
                    .and_then(Value::as_arr)
                    .map(<[Value]>::len)
                    .unwrap_or(0);
                println!("obs-trace: {path}: OK ({n} events)");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("obs-trace: {path}: INVALID: {e}");
                ExitCode::FAILURE
            }
        };
    }

    let Some(input) = input else { return usage() };
    let doc = match load(&input) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("obs-trace: {e}");
            return ExitCode::FAILURE;
        }
    };
    // A sampling profile carries folded stacks already — validate and
    // export them directly (sampled counts have no span forest to
    // reconstruct, so a Chrome trace is not available).
    if doc.get("kind").and_then(Value::as_str) == Some("batnet-prof/v1") {
        if format == "chrome" {
            eprintln!("obs-trace: {input}: sampling profiles export as --format folded only");
            return ExitCode::FAILURE;
        }
        let rendered = match validate_profile(&doc).and_then(|()| profile_folded(&doc)) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("obs-trace: {input}: INVALID profile: {e}");
                return ExitCode::FAILURE;
            }
        };
        return match out {
            Some(path) => match std::fs::write(&path, rendered) {
                Ok(()) => {
                    println!("wrote {path}");
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("obs-trace: {path}: {e}");
                    ExitCode::FAILURE
                }
            },
            None => {
                print!("{rendered}");
                ExitCode::SUCCESS
            }
        };
    }
    // A bench file embeds its run report under "report".
    let report = if doc.get("bench").is_some() {
        match doc.get("report") {
            Some(r) => r.clone(),
            None => {
                eprintln!("obs-trace: {input}: bench file has no embedded report");
                return ExitCode::FAILURE;
            }
        }
    } else {
        doc
    };
    let forest = match forest_from_json(&report) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("obs-trace: {input}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let rendered = if format == "chrome" {
        let text = chrome_trace(&forest);
        // Never emit a trace the validator would reject.
        match json::parse(&text).map_err(|e| e.to_string()).and_then(|v| {
            validate_chrome_trace(&v).map(|()| {
                v.get("traceEvents")
                    .and_then(Value::as_arr)
                    .map(<[Value]>::len)
                    .unwrap_or(0)
            })
        }) {
            Ok(n) => eprintln!("obs-trace: {n} events, validated"),
            Err(e) => {
                eprintln!("obs-trace: internal error, rendered trace invalid: {e}");
                return ExitCode::FAILURE;
            }
        }
        text
    } else {
        folded(&forest)
    };
    match out {
        Some(path) => match std::fs::write(&path, rendered) {
            Ok(()) => {
                println!("wrote {path}");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("obs-trace: {path}: {e}");
                ExitCode::FAILURE
            }
        },
        None => {
            print!("{rendered}");
            ExitCode::SUCCESS
        }
    }
}
