//! Validates batnet observability JSON files against the schema.
//!
//! ```text
//! obs-validate [--kind bench|report|tracez|profile|trajectory] FILE...
//! ```
//!
//! `--kind bench` (default for `BENCH_*.json` names) checks the stable
//! `{bench, network, stage, ms, meta}` row schema plus the embedded run
//! report; `--kind report` checks a bare run report; `--kind tracez`
//! (default for `tracez*.json` names) checks a serve `/tracez` dump of
//! per-request traces; `--kind profile` (default for names containing
//! `profile`) checks a `batnet-prof/v1` sampling profile, including the
//! `samples == recorded + dropped` accounting balance; `--kind
//! trajectory` (default for `TRAJECTORY*.jsonl` names) checks every line
//! of a perf-trajectory JSONL file. Exits non-zero on the first invalid
//! file, so `make ci` fails on schema drift.

use batnet_obs::json;
use batnet_obs::report::{
    validate_bench, validate_profile, validate_run_report, validate_tracez,
    validate_trajectory_row,
};
use std::process::ExitCode;

#[derive(Clone, Copy, PartialEq)]
enum Kind {
    Bench,
    Report,
    Tracez,
    Profile,
    Trajectory,
}

impl Kind {
    fn label(self) -> &'static str {
        match self {
            Kind::Bench => "bench schema",
            Kind::Report => "run report",
            Kind::Tracez => "tracez dump",
            Kind::Profile => "sampling profile",
            Kind::Trajectory => "perf trajectory",
        }
    }
}

fn main() -> ExitCode {
    let mut kind: Option<Kind> = None;
    let mut files: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--kind" => match args.next().as_deref() {
                Some("bench") => kind = Some(Kind::Bench),
                Some("report") => kind = Some(Kind::Report),
                Some("tracez") => kind = Some(Kind::Tracez),
                Some("profile") => kind = Some(Kind::Profile),
                Some("trajectory") => kind = Some(Kind::Trajectory),
                _ => {
                    eprintln!(
                        "--kind wants 'bench', 'report', 'tracez', 'profile', or 'trajectory'"
                    );
                    return ExitCode::from(2);
                }
            },
            "--tracez" => kind = Some(Kind::Tracez),
            other => files.push(other.to_string()),
        }
    }
    if files.is_empty() {
        eprintln!("usage: obs-validate [--kind bench|report|tracez|profile|trajectory] FILE...");
        return ExitCode::from(2);
    }
    for file in &files {
        let text = match std::fs::read_to_string(file) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("obs-validate: {file}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let resolved = kind.unwrap_or_else(|| {
            let base = file.rsplit('/').next().unwrap_or(file);
            // `profile` wins over the `BENCH_` prefix: bench artifacts
            // like `BENCH_serve.profile.json` are profiles, not benches.
            if base.contains("profile") {
                Kind::Profile
            } else if base.starts_with("BENCH_") {
                Kind::Bench
            } else if base.starts_with("tracez") {
                Kind::Tracez
            } else if base.contains("TRAJECTORY") && base.ends_with(".jsonl") {
                Kind::Trajectory
            } else {
                Kind::Report
            }
        });
        // Trajectory files are JSONL: validate each line independently.
        if resolved == Kind::Trajectory {
            for (lineno, line) in text.lines().enumerate() {
                if line.trim().is_empty() {
                    continue;
                }
                let result = json::parse(line)
                    .map_err(|e| format!("not valid JSON: {e}"))
                    .and_then(|v| validate_trajectory_row(&v));
                if let Err(e) = result {
                    eprintln!("obs-validate: {file}:{}: INVALID: {e}", lineno + 1);
                    return ExitCode::FAILURE;
                }
            }
            println!(
                "obs-validate: {file}: OK ({}, {} rows)",
                resolved.label(),
                text.lines().filter(|l| !l.trim().is_empty()).count()
            );
            continue;
        }
        let value = match json::parse(&text) {
            Ok(v) => v,
            Err(e) => {
                eprintln!("obs-validate: {file}: not valid JSON: {e}");
                return ExitCode::FAILURE;
            }
        };
        let result = match resolved {
            Kind::Bench => validate_bench(&value),
            Kind::Report => validate_run_report(&value),
            Kind::Tracez => validate_tracez(&value),
            Kind::Profile => validate_profile(&value),
            Kind::Trajectory => unreachable!("handled above"),
        };
        match result {
            Ok(()) => println!("obs-validate: {file}: OK ({})", resolved.label()),
            Err(e) => {
                eprintln!("obs-validate: {file}: INVALID: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
