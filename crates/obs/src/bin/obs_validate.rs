//! Validates batnet observability JSON files against the schema.
//!
//! ```text
//! obs-validate [--kind bench|report] FILE...
//! ```
//!
//! `--kind bench` (default for `BENCH_*.json` names) checks the stable
//! `{bench, network, stage, ms, meta}` row schema plus the embedded run
//! report; `--kind report` checks a bare run report. Exits non-zero on
//! the first invalid file, so `make ci` fails on schema drift.

use batnet_obs::json;
use batnet_obs::report::{validate_bench, validate_run_report};
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut kind: Option<String> = None;
    let mut files: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--kind" => match args.next() {
                Some(k) if k == "bench" || k == "report" => kind = Some(k),
                _ => {
                    eprintln!("--kind wants 'bench' or 'report'");
                    return ExitCode::from(2);
                }
            },
            other => files.push(other.to_string()),
        }
    }
    if files.is_empty() {
        eprintln!("usage: obs-validate [--kind bench|report] FILE...");
        return ExitCode::from(2);
    }
    for file in &files {
        let text = match std::fs::read_to_string(file) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("obs-validate: {file}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let value = match json::parse(&text) {
            Ok(v) => v,
            Err(e) => {
                eprintln!("obs-validate: {file}: not valid JSON: {e}");
                return ExitCode::FAILURE;
            }
        };
        let is_bench = match kind.as_deref() {
            Some("bench") => true,
            Some(_) => false,
            None => {
                let base = file.rsplit('/').next().unwrap_or(file);
                base.starts_with("BENCH_")
            }
        };
        let result = if is_bench {
            validate_bench(&value)
        } else {
            validate_run_report(&value)
        };
        match result {
            Ok(()) => println!(
                "obs-validate: {file}: OK ({})",
                if is_bench { "bench schema" } else { "run report" }
            ),
            Err(e) => {
                eprintln!("obs-validate: {file}: INVALID: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
