//! Validates batnet observability JSON files against the schema.
//!
//! ```text
//! obs-validate [--kind bench|report|tracez] FILE...
//! ```
//!
//! `--kind bench` (default for `BENCH_*.json` names) checks the stable
//! `{bench, network, stage, ms, meta}` row schema plus the embedded run
//! report; `--kind report` checks a bare run report; `--kind tracez`
//! (default for `tracez*.json` names) checks a serve `/tracez` dump of
//! per-request traces. Exits non-zero on the first invalid file, so
//! `make ci` fails on schema drift.

use batnet_obs::json;
use batnet_obs::report::{validate_bench, validate_run_report, validate_tracez};
use std::process::ExitCode;

#[derive(Clone, Copy, PartialEq)]
enum Kind {
    Bench,
    Report,
    Tracez,
}

impl Kind {
    fn label(self) -> &'static str {
        match self {
            Kind::Bench => "bench schema",
            Kind::Report => "run report",
            Kind::Tracez => "tracez dump",
        }
    }
}

fn main() -> ExitCode {
    let mut kind: Option<Kind> = None;
    let mut files: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--kind" => match args.next().as_deref() {
                Some("bench") => kind = Some(Kind::Bench),
                Some("report") => kind = Some(Kind::Report),
                Some("tracez") => kind = Some(Kind::Tracez),
                _ => {
                    eprintln!("--kind wants 'bench', 'report', or 'tracez'");
                    return ExitCode::from(2);
                }
            },
            "--tracez" => kind = Some(Kind::Tracez),
            other => files.push(other.to_string()),
        }
    }
    if files.is_empty() {
        eprintln!("usage: obs-validate [--kind bench|report|tracez] FILE...");
        return ExitCode::from(2);
    }
    for file in &files {
        let text = match std::fs::read_to_string(file) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("obs-validate: {file}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let value = match json::parse(&text) {
            Ok(v) => v,
            Err(e) => {
                eprintln!("obs-validate: {file}: not valid JSON: {e}");
                return ExitCode::FAILURE;
            }
        };
        let resolved = kind.unwrap_or_else(|| {
            let base = file.rsplit('/').next().unwrap_or(file);
            if base.starts_with("BENCH_") {
                Kind::Bench
            } else if base.starts_with("tracez") {
                Kind::Tracez
            } else {
                Kind::Report
            }
        });
        let result = match resolved {
            Kind::Bench => validate_bench(&value),
            Kind::Report => validate_run_report(&value),
            Kind::Tracez => validate_tracez(&value),
        };
        match result {
            Ok(()) => println!("obs-validate: {file}: OK ({})", resolved.label()),
            Err(e) => {
                eprintln!("obs-validate: {file}: INVALID: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
