//! # batnet-bdd — a from-scratch binary decision diagram package
//!
//! The paper's Lesson 2: *"BDDs are great for data plane analysis"*. This
//! crate is the substrate under `batnet-dataplane`: reduced ordered BDDs
//! with hash-consing, an ITE/apply core with operation caches, existential
//! quantification, variable renaming, and the **fused transform operation**
//! the paper describes for NAT edges (§4.2.3: *"we implemented an optimized
//! BDD operation to execute these three steps simultaneously"* — intersect
//! with the rule, erase input variables, remap output variables).
//!
//! Design choices, in the spirit of the paper and of robust systems Rust:
//!
//! * **Arena, no garbage collection.** Analyses are snapshot-scoped: a
//!   manager lives for one analysis and is dropped whole. This removes
//!   reference counting from the hot path and makes node ids stable, which
//!   the identity-keyed operation caches exploit (*"we exploit canonicity to
//!   short-circuit full BDD traversals using identity-based operation
//!   caches"*).
//! * **No complement edges.** They complicate every operation for a ~2×
//!   size win that does not matter at our scale; simplicity wins.
//! * **Deterministic.** Node ids depend only on the order of `mk` calls,
//!   so a deterministic analysis produces identical diagrams run to run.
//!
//! ```
//! use batnet_bdd::Bdd;
//! let mut bdd = Bdd::new(8);
//! let x0 = bdd.var(0);
//! let x1 = bdd.var(1);
//! let f = bdd.and(x0, x1);
//! let g = bdd.or(x0, x1);
//! assert!(bdd.implies_true(f, g)); // x0∧x1 ⊆ x0∨x1
//! ```

mod dot;
mod manager;
mod ops;
mod sat;

pub use manager::{Bdd, BddStats, NodeId};
pub use ops::{Transform, VarMap};
pub use sat::Cube;
