//! Graphviz (DOT) export for debugging and documentation.

use crate::manager::{Bdd, NodeId};
use std::fmt::Write;

impl Bdd {
    /// Renders the diagram rooted at `f` as Graphviz DOT. Solid edges are
    /// the high (1) branch, dashed the low (0) branch; `label` names
    /// variables (defaults to `x<i>`).
    pub fn to_dot(&self, f: NodeId, label: impl Fn(u32) -> String) -> String {
        let mut out = String::from("digraph bdd {\n  rankdir=TB;\n");
        out.push_str("  t1 [label=\"1\", shape=box];\n  t0 [label=\"0\", shape=box];\n");
        let mut seen = std::collections::BTreeSet::new();
        let mut stack = vec![f];
        let name = |n: NodeId| match n {
            NodeId::FALSE => "t0".to_string(),
            NodeId::TRUE => "t1".to_string(),
            other => format!("n{}", other.0),
        };
        while let Some(n) = stack.pop() {
            if n.is_terminal() || !seen.insert(n) {
                continue;
            }
            let _ = writeln!(
                out,
                "  n{} [label=\"{}\", shape=circle];",
                n.0,
                label(self.var_of(n))
            );
            let _ = writeln!(out, "  n{} -> {} [style=dashed];", n.0, name(self.lo_of(n)));
            let _ = writeln!(out, "  n{} -> {};", n.0, name(self.hi_of(n)));
            stack.push(self.lo_of(n));
            stack.push(self.hi_of(n));
        }
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_contains_all_nodes_and_edges() {
        let mut b = Bdd::new(4);
        let x = b.var(0);
        let y = b.var(2);
        let f = b.xor(x, y);
        let dot = b.to_dot(f, |v| format!("v{v}"));
        assert!(dot.starts_with("digraph bdd {"));
        assert!(dot.contains("label=\"v0\""));
        assert!(dot.contains("label=\"v2\""));
        assert!(dot.contains("style=dashed"));
        // xor over 2 vars: 3 decision nodes.
        assert_eq!(dot.matches("shape=circle").count(), 3);
        // Terminals once each.
        assert_eq!(dot.matches("shape=box").count(), 2);
    }

    #[test]
    fn dot_of_terminal() {
        let b = Bdd::new(2);
        let dot = b.to_dot(NodeId::TRUE, |v| format!("{v}"));
        assert_eq!(dot.matches("shape=circle").count(), 0);
    }
}
