//! Quantification, variable renaming, and the fused transform operation.
//!
//! The transform operation is the paper's NAT workhorse (§4.2.3): a NAT
//! edge's behaviour is a *relation* between input and output packets,
//! encoded over a doubled set of IP/port variables. Applying a NAT to a
//! reachable set is `rename(∃inputs. set ∧ rule)`; the fused
//! [`Bdd::transform`] does all three steps in one traversal, and the
//! unfused [`Bdd::transform_3step`] is kept for the A-5 ablation benchmark.

use crate::manager::{Bdd, NodeId};

/// A registered variable renaming. Create with [`Bdd::register_map`]; apply
/// with [`Bdd::rename`]. Handles are cheap copies; the mapping data lives in
/// the manager so the per-(node, map) cache stays identity-keyed.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct VarMap {
    pub(crate) id: u32,
}

/// A registered transform: the set of variables to existentially quantify
/// (the *input* copies) plus the renaming applied to the surviving
/// variables (the *output* copies back onto input positions).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Transform {
    pub(crate) id: u32,
}

#[derive(Clone)]
pub(crate) struct MapData {
    /// `mapping[v]` is the new index of variable `v` (identity if absent).
    pub mapping: Vec<u32>,
}

#[derive(Clone)]
pub(crate) struct TransformData {
    /// `quantify[v]` — erase variable `v`.
    pub quantify: Vec<bool>,
    /// Renaming applied to surviving variables.
    pub mapping: Vec<u32>,
    /// Cube of the quantified variables (for the unfused ablation path).
    pub cube: NodeId,
    /// Registered map equivalent to `mapping` (for the unfused path).
    pub map: VarMap,
}

impl Bdd {
    /// Existentially quantifies every variable in `cube` (a conjunction of
    /// positive literals) out of `f`: the "erase the input headers" step.
    pub fn exists(&mut self, f: NodeId, cube: NodeId) -> NodeId {
        if f.is_terminal() || cube == NodeId::TRUE {
            return f;
        }
        debug_assert!(cube != NodeId::FALSE, "quantifier cube must be a product of literals");
        let key = (f, cube);
        if let Some(&r) = self.quant_cache.get(&key) {
            return r;
        }
        // Skip cube variables above f's top variable.
        let fv = self.var_of(f);
        let mut c = cube;
        while !c.is_terminal() && self.var_of(c) < fv {
            c = self.hi_of(c);
        }
        if c == NodeId::TRUE {
            self.quant_cache.insert(key, f);
            return f;
        }
        let cv = self.var_of(c);
        let r = if fv == cv {
            let inner = self.hi_of(c);
            let lo = self.exists(self.lo_of(f), inner);
            let hi = self.exists(self.hi_of(f), inner);
            self.or(lo, hi)
        } else {
            debug_assert!(fv < cv);
            let lo = self.exists(self.lo_of(f), c);
            let hi = self.exists(self.hi_of(f), c);
            self.mk(fv, lo, hi)
        };
        self.quant_cache.insert(key, r);
        r
    }

    /// Builds the positive-literal cube over `vars` (sorted internally).
    pub fn cube_of_vars(&mut self, vars: &[u32]) -> NodeId {
        let mut sorted: Vec<u32> = vars.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        let mut acc = NodeId::TRUE;
        for &v in sorted.iter().rev() {
            acc = self.mk(v, NodeId::FALSE, acc);
        }
        acc
    }

    /// Registers a variable renaming given `(from, to)` pairs; unlisted
    /// variables map to themselves. The renaming must be injective on the
    /// support of any BDD it is applied to (checked only in debug builds,
    /// via canonical-form assertions in `mk`).
    pub fn register_map(&mut self, pairs: &[(u32, u32)]) -> VarMap {
        let mut mapping: Vec<u32> = (0..self.num_vars()).collect();
        for &(from, to) in pairs {
            mapping[from as usize] = to;
        }
        self.maps.push(MapData { mapping });
        VarMap {
            id: (self.maps.len() - 1) as u32,
        }
    }

    /// Applies a registered renaming to `f`.
    ///
    /// Uses the fast `mk` path when the renamed variable still sits above
    /// both children (the common case for the interleaved NAT layout) and
    /// falls back to an ITE-based rebuild otherwise, so arbitrary maps are
    /// handled correctly.
    pub fn rename(&mut self, f: NodeId, map: VarMap) -> NodeId {
        if f.is_terminal() {
            return f;
        }
        let key = (f, map.id);
        if let Some(&r) = self.rename_cache.get(&key) {
            return r;
        }
        let v = self.var_of(f);
        let lo = self.rename(self.lo_of(f), map);
        let hi = self.rename(self.hi_of(f), map);
        let nv = self.maps[map.id as usize].mapping[v as usize];
        let r = self.mk_ordered(nv, lo, hi);
        self.rename_cache.insert(key, r);
        r
    }

    /// `mk` that tolerates an out-of-order variable by falling back to ITE.
    fn mk_ordered(&mut self, v: u32, lo: NodeId, hi: NodeId) -> NodeId {
        if self.var_of(lo) > v && self.var_of(hi) > v {
            self.mk(v, lo, hi)
        } else {
            let lit = self.var(v);
            self.ite(lit, hi, lo)
        }
    }

    /// Registers a transform: quantify `inputs`, then rename according to
    /// `pairs` (typically each output variable back onto its input
    /// partner's position).
    pub fn register_transform(&mut self, inputs: &[u32], pairs: &[(u32, u32)]) -> Transform {
        let mut quantify = vec![false; self.num_vars() as usize];
        for &v in inputs {
            quantify[v as usize] = true;
        }
        let cube = self.cube_of_vars(inputs);
        let map = self.register_map(pairs);
        let mapping = self.maps[map.id as usize].mapping.clone();
        self.transforms.push(TransformData {
            quantify,
            mapping,
            cube,
            map,
        });
        Transform {
            id: (self.transforms.len() - 1) as u32,
        }
    }

    /// The fused transform: `rename(∃inputs. f ∧ rule)` in a single
    /// traversal of the pair `(f, rule)` — the paper's optimized NAT
    /// operation.
    pub fn transform(&mut self, f: NodeId, rule: NodeId, t: Transform) -> NodeId {
        if f == NodeId::FALSE || rule == NodeId::FALSE {
            return NodeId::FALSE;
        }
        if f == NodeId::TRUE && rule == NodeId::TRUE {
            return NodeId::TRUE;
        }
        let key = (f, rule, t.id);
        if let Some(&r) = self.transform_cache.get(&key) {
            return r;
        }
        let v = self.var_of(f).min(self.var_of(rule));
        let (f0, f1) = self.cofactors(f, v);
        let (r0, r1) = self.cofactors(rule, v);
        let lo = self.transform(f0, r0, t);
        let hi = self.transform(f1, r1, t);
        let quantified = self.transforms[t.id as usize].quantify[v as usize];
        let r = if quantified {
            self.or(lo, hi)
        } else {
            let nv = self.transforms[t.id as usize].mapping[v as usize];
            self.mk_ordered(nv, lo, hi)
        };
        self.transform_cache.insert(key, r);
        r
    }

    /// The unfused three-step version of [`Bdd::transform`], kept as the
    /// comparison leg for the A-5 ablation benchmark.
    pub fn transform_3step(&mut self, f: NodeId, rule: NodeId, t: Transform) -> NodeId {
        let data = self.transforms[t.id as usize].clone();
        let conj = self.and(f, rule);
        let erased = self.exists(conj, data.cube);
        self.rename(erased, data.map)
    }

    /// Universal quantification, defined dually to [`Bdd::exists`].
    pub fn forall(&mut self, f: NodeId, cube: NodeId) -> NodeId {
        let nf = self.not(f);
        let e = self.exists(nf, cube);
        self.not(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exists_removes_variable() {
        let mut b = Bdd::new(4);
        let x = b.var(0);
        let y = b.var(1);
        let f = b.and(x, y);
        let cube = b.cube_of_vars(&[0]);
        let g = b.exists(f, cube);
        assert_eq!(g, y, "∃x. x∧y == y");
        // Quantifying a variable not in the support is a no-op.
        let cube3 = b.cube_of_vars(&[3]);
        assert_eq!(b.exists(f, cube3), f);
    }

    #[test]
    fn exists_multiple_vars() {
        let mut b = Bdd::new(4);
        let x = b.var(0);
        let y = b.var(1);
        let z = b.var(2);
        let xy = b.and(x, y);
        let f = b.or(xy, z);
        let cube = b.cube_of_vars(&[0, 1]);
        let g = b.exists(f, cube);
        assert_eq!(g, NodeId::TRUE, "∃x,y. (x∧y)∨z is satisfiable for every z");
        let cube_z = b.cube_of_vars(&[2]);
        let h = b.exists(f, cube_z);
        assert_eq!(h, NodeId::TRUE);
    }

    #[test]
    fn forall_duality() {
        let mut b = Bdd::new(3);
        let x = b.var(0);
        let y = b.var(1);
        let f = b.or(x, y);
        let cube = b.cube_of_vars(&[0]);
        // ∀x. x∨y == y
        assert_eq!(b.forall(f, cube), y);
    }

    #[test]
    fn rename_shifts_variables() {
        let mut b = Bdd::new(6);
        let x = b.var(0);
        let y = b.var(2);
        let f = b.and(x, y);
        let map = b.register_map(&[(0, 1), (2, 3)]);
        let g = b.rename(f, map);
        let x1 = b.var(1);
        let y3 = b.var(3);
        let expect = b.and(x1, y3);
        assert_eq!(g, expect);
    }

    #[test]
    fn rename_non_monotone_map() {
        let mut b = Bdd::new(6);
        // Swap-like: move var 4 up to position 0 while 5 stays.
        let a = b.var(4);
        let c = b.var(5);
        let f = b.and(a, c);
        let map = b.register_map(&[(4, 0)]);
        let g = b.rename(f, map);
        let v0 = b.var(0);
        let expect = b.and(v0, c);
        assert_eq!(g, expect);
    }

    #[test]
    fn transform_identity_relation() {
        // Variables: input bits {0,2}, output bits {1,3} (interleaved).
        let mut b = Bdd::new(4);
        let i0 = b.var(0);
        let o0 = b.var(1);
        let i1 = b.var(2);
        let o1 = b.var(3);
        // Identity rule: o0 == i0 ∧ o1 == i1.
        let eq0 = b.xor(i0, o0);
        let eq0 = b.not(eq0);
        let eq1 = b.xor(i1, o1);
        let eq1 = b.not(eq1);
        let rule = b.and(eq0, eq1);
        let t = b.register_transform(&[0, 2], &[(1, 0), (3, 2)]);
        // Any set must map to itself under the identity relation.
        let set = b.and(i0, i1);
        let out = b.transform(set, rule, t);
        assert_eq!(out, set);
        let set2 = b.or(i0, i1);
        assert_eq!(b.transform(set2, rule, t), set2);
    }

    #[test]
    fn transform_constant_rewrite() {
        // NAT that rewrites the single input bit 0 to constant 1 on output
        // bit 1.
        let mut b = Bdd::new(2);
        let o0 = b.var(1);
        let rule = o0; // output bit is 1, input unconstrained
        let t = b.register_transform(&[0], &[(1, 0)]);
        let i0 = b.var(0);
        let ni0 = b.not(i0);
        // Both "bit set" and "bit clear" inputs map to "bit set".
        assert_eq!(b.transform(i0, rule, t), i0);
        assert_eq!(b.transform(ni0, rule, t), i0);
        assert_eq!(b.transform(NodeId::FALSE, rule, t), NodeId::FALSE);
    }

    #[test]
    fn fused_matches_3step() {
        // Random-ish small relation over 3 input (0,2,4) and 3 output
        // (1,3,5) variables: output = input with bit0 flipped.
        let mut b = Bdd::new(6);
        let mut rule = NodeId::TRUE;
        // o0 = ¬i0
        let i0 = b.var(0);
        let o0 = b.var(1);
        let x = b.xor(i0, o0);
        rule = b.and(rule, x);
        // o1 = i1, o2 = i2
        for (iv, ov) in [(2u32, 3u32), (4, 5)] {
            let i = b.var(iv);
            let o = b.var(ov);
            let eq = b.xor(i, o);
            let eq = b.not(eq);
            rule = b.and(rule, eq);
        }
        let t = b.register_transform(&[0, 2, 4], &[(1, 0), (3, 2), (5, 4)]);
        // Try several input sets.
        let i1 = b.var(2);
        let i2 = b.var(4);
        let sets = {
            let a = b.and(i0, i1);
            let bb = b.or(i1, i2);
            let c = b.xor(i0, i2);
            vec![i0, a, bb, c, NodeId::TRUE, NodeId::FALSE]
        };
        for s in sets {
            let fused = b.transform(s, rule, t);
            let steps = b.transform_3step(s, rule, t);
            assert_eq!(fused, steps, "fused and 3-step must agree");
        }
    }

    #[test]
    fn transform_of_union_is_union_of_transforms() {
        let mut b = Bdd::new(4);
        // rule: o = i (identity on one pair), second pair free.
        let i0 = b.var(0);
        let o0 = b.var(1);
        let eq = b.xor(i0, o0);
        let rule = b.not(eq);
        let t = b.register_transform(&[0], &[(1, 0)]);
        let i1 = b.var(2);
        let a = b.and(i0, i1);
        let na = b.not(i0);
        let c = b.and(na, i1);
        let union = b.or(a, c);
        let ta = b.transform(a, rule, t);
        let tc = b.transform(c, rule, t);
        let tu = b.transform(union, rule, t);
        let expect = b.or(ta, tc);
        assert_eq!(tu, expect);
    }
}
