//! The BDD manager: node arena, hash-consing, and the apply/ITE core.

use batnet_net::governor::{Exhaustion, ResourceGovernor};
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// A reference to a BDD node within one [`Bdd`] manager.
///
/// Ids are only meaningful relative to the manager that produced them.
/// `FALSE` and `TRUE` are the two terminals.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The constant-false terminal (empty packet set).
    pub const FALSE: NodeId = NodeId(0);
    /// The constant-true terminal (universe packet set).
    pub const TRUE: NodeId = NodeId(1);

    /// Is this one of the two terminals?
    pub fn is_terminal(self) -> bool {
        self.0 <= 1
    }
}

/// One decision node: branch variable plus low (var=0) and high (var=1)
/// children. 16 bytes; the arena stores millions of these comfortably.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
struct Node {
    var: u32,
    lo: NodeId,
    hi: NodeId,
}

/// Variable index used for terminals: larger than any real variable so the
/// min-var recursion in apply never descends into a terminal.
const TERMINAL_VAR: u32 = u32::MAX;

/// A fast, deterministic hasher (FxHash-style multiply-xor). BDD workloads
/// are hash-table bound; SipHash's DoS resistance buys nothing here because
/// all keys are internally generated.
#[derive(Default)]
pub(crate) struct FxHasher {
    hash: u64,
}

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl Hasher for FxHasher {
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.write_u64(b as u64);
        }
    }
    fn write_u32(&mut self, v: u32) {
        self.write_u64(v as u64);
    }
    fn write_u64(&mut self, v: u64) {
        self.hash = (self.hash.rotate_left(5) ^ v).wrapping_mul(SEED);
    }
    fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }
    fn finish(&self) -> u64 {
        self.hash
    }
}

pub(crate) type FxBuild = BuildHasherDefault<FxHasher>;
pub(crate) type FxMap<K, V> = HashMap<K, V, FxBuild>;

/// Binary operations cached in the apply cache.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub(crate) enum Op {
    And,
    Or,
    Xor,
    /// Set difference `a ∧ ¬b`.
    Diff,
}

/// Counters exposed for benchmarks and regression tests.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BddStats {
    /// Nodes currently in the arena (including terminals).
    pub nodes: usize,
    /// Apply-cache hits since creation.
    pub cache_hits: u64,
    /// Apply-cache misses since creation.
    pub cache_misses: u64,
}

/// A BDD manager: owns the node arena, the unique table (hash-consing), and
/// the operation caches. All operations go through `&mut self`; one manager
/// is used per analysis.
pub struct Bdd {
    nodes: Vec<Node>,
    unique: FxMap<Node, NodeId>,
    apply_cache: FxMap<(Op, NodeId, NodeId), NodeId>,
    not_cache: FxMap<NodeId, NodeId>,
    ite_cache: FxMap<(NodeId, NodeId, NodeId), NodeId>,
    pub(crate) quant_cache: FxMap<(NodeId, NodeId), NodeId>,
    pub(crate) rename_cache: FxMap<(NodeId, u32), NodeId>,
    pub(crate) transform_cache: FxMap<(NodeId, NodeId, u32), NodeId>,
    pub(crate) maps: Vec<crate::ops::MapData>,
    pub(crate) transforms: Vec<crate::ops::TransformData>,
    num_vars: u32,
    cache_hits: u64,
    cache_misses: u64,
    governor: Option<ResourceGovernor>,
    exhausted: Option<Exhaustion>,
}

impl Bdd {
    /// Creates a manager for `num_vars` variables, indexed `0..num_vars`
    /// with 0 topmost in the order.
    pub fn new(num_vars: u32) -> Bdd {
        let mut bdd = Bdd {
            nodes: Vec::with_capacity(1 << 12),
            unique: FxMap::default(),
            apply_cache: FxMap::default(),
            not_cache: FxMap::default(),
            ite_cache: FxMap::default(),
            quant_cache: FxMap::default(),
            rename_cache: FxMap::default(),
            transform_cache: FxMap::default(),
            maps: Vec::new(),
            transforms: Vec::new(),
            num_vars,
            cache_hits: 0,
            cache_misses: 0,
            governor: None,
            exhausted: None,
        };
        // Terminals occupy slots 0 and 1; their `lo`/`hi` are self-loops
        // that no operation ever follows.
        bdd.nodes.push(Node { var: TERMINAL_VAR, lo: NodeId::FALSE, hi: NodeId::FALSE });
        bdd.nodes.push(Node { var: TERMINAL_VAR, lo: NodeId::TRUE, hi: NodeId::TRUE });
        bdd
    }

    /// Number of variables this manager was created with.
    pub fn num_vars(&self) -> u32 {
        self.num_vars
    }

    /// A detached copy for a shard worker: same node arena, unique
    /// table, and registered maps/transforms — every existing `NodeId`,
    /// `VarMap`, and `Transform` handle stays valid in the fork — but
    /// fresh empty operation caches and **no governor** (shards are
    /// budgeted by their driver, not by a shared manager; a governor
    /// must not be cloned into threads it was not accounting for).
    /// Forks diverge from the parent: nodes created in one are
    /// invisible to the other, which is exactly what per-worker
    /// reachability sharding wants.
    pub fn fork(&self) -> Bdd {
        Bdd {
            nodes: self.nodes.clone(),
            unique: self.unique.clone(),
            apply_cache: FxMap::default(),
            not_cache: FxMap::default(),
            ite_cache: FxMap::default(),
            quant_cache: FxMap::default(),
            rename_cache: FxMap::default(),
            transform_cache: FxMap::default(),
            maps: self.maps.clone(),
            transforms: self.transforms.clone(),
            num_vars: self.num_vars,
            cache_hits: 0,
            cache_misses: 0,
            governor: None,
            exhausted: None,
        }
    }

    /// Grows the variable universe (used when an analysis discovers it
    /// needs extra bits, e.g. waypoint variables added on demand).
    pub fn ensure_vars(&mut self, num_vars: u32) {
        self.num_vars = self.num_vars.max(num_vars);
    }

    #[inline]
    pub(crate) fn var_of(&self, id: NodeId) -> u32 {
        self.nodes[id.0 as usize].var
    }

    #[inline]
    pub(crate) fn lo_of(&self, id: NodeId) -> NodeId {
        self.nodes[id.0 as usize].lo
    }

    #[inline]
    pub(crate) fn hi_of(&self, id: NodeId) -> NodeId {
        self.nodes[id.0 as usize].hi
    }

    /// Hash-consing constructor: returns the canonical node for
    /// `(var, lo, hi)`, eliding redundant tests (`lo == hi`).
    pub(crate) fn mk(&mut self, var: u32, lo: NodeId, hi: NodeId) -> NodeId {
        debug_assert!(var < self.num_vars, "variable {var} out of range");
        debug_assert!(
            self.var_of(lo) > var && self.var_of(hi) > var,
            "ordering violation at var {var}"
        );
        if lo == hi {
            return lo;
        }
        let node = Node { var, lo, hi };
        if let Some(&id) = self.unique.get(&node) {
            return id;
        }
        // Governance: record (once, sticky) when the arena crosses the
        // ceiling or the deadline passes. The in-flight operation still
        // completes — canonicity requires finishing the recursion — but
        // governed drivers poll `exhausted()` between operations and stop.
        // The deadline is polled every 4096 allocations (an `Instant::now`
        // per node would dominate mk).
        if self.exhausted.is_none() {
            if let Some(gov) = &self.governor {
                if let Err(e) = gov.check_nodes("bdd", self.nodes.len()) {
                    self.exhausted = Some(e);
                } else if self.nodes.len() & 0xFFF == 0 {
                    if let Err(e) = gov.check("bdd") {
                        self.exhausted = Some(e);
                    }
                }
            }
        }
        let id = NodeId(u32::try_from(self.nodes.len()).expect("BDD arena overflow"));
        self.nodes.push(node);
        self.unique.insert(node, id);
        id
    }

    /// Installs a [`ResourceGovernor`]. The manager polls it as the arena
    /// grows; drivers observe trips via [`Bdd::exhausted`].
    pub fn install_governor(&mut self, gov: ResourceGovernor) {
        if gov.is_limited() {
            self.governor = Some(gov);
        }
    }

    /// The sticky exhaustion record, if a governed limit has tripped.
    pub fn exhausted(&self) -> Option<&Exhaustion> {
        self.exhausted.as_ref()
    }

    /// The function "variable `v` is 1".
    pub fn var(&mut self, v: u32) -> NodeId {
        self.mk(v, NodeId::FALSE, NodeId::TRUE)
    }

    /// The function "variable `v` is 0".
    pub fn nvar(&mut self, v: u32) -> NodeId {
        self.mk(v, NodeId::TRUE, NodeId::FALSE)
    }

    /// The literal for `v` with the given polarity.
    pub fn literal(&mut self, v: u32, value: bool) -> NodeId {
        if value {
            self.var(v)
        } else {
            self.nvar(v)
        }
    }

    /// Branch children of `id` with respect to variable `v` (Shannon
    /// cofactors): if `id` does not test `v` both cofactors are `id`.
    #[inline]
    pub(crate) fn cofactors(&self, id: NodeId, v: u32) -> (NodeId, NodeId) {
        if self.var_of(id) == v {
            (self.lo_of(id), self.hi_of(id))
        } else {
            (id, id)
        }
    }

    fn apply(&mut self, op: Op, a: NodeId, b: NodeId) -> NodeId {
        // Terminal cases per operation.
        match op {
            Op::And => {
                if a == NodeId::FALSE || b == NodeId::FALSE {
                    return NodeId::FALSE;
                }
                if a == NodeId::TRUE {
                    return b;
                }
                if b == NodeId::TRUE || a == b {
                    return a;
                }
            }
            Op::Or => {
                if a == NodeId::TRUE || b == NodeId::TRUE {
                    return NodeId::TRUE;
                }
                if a == NodeId::FALSE {
                    return b;
                }
                if b == NodeId::FALSE || a == b {
                    return a;
                }
            }
            Op::Xor => {
                if a == b {
                    return NodeId::FALSE;
                }
                if a == NodeId::FALSE {
                    return b;
                }
                if b == NodeId::FALSE {
                    return a;
                }
            }
            Op::Diff => {
                if a == NodeId::FALSE || b == NodeId::TRUE || a == b {
                    return NodeId::FALSE;
                }
                if b == NodeId::FALSE {
                    return a;
                }
            }
        }
        // Commutative ops: canonicalize the key order to double cache hits.
        let key = match op {
            Op::And | Op::Or | Op::Xor if a.0 > b.0 => (op, b, a),
            _ => (op, a, b),
        };
        if let Some(&r) = self.apply_cache.get(&key) {
            self.cache_hits += 1;
            return r;
        }
        self.cache_misses += 1;
        let va = self.var_of(key.1);
        let vb = self.var_of(key.2);
        let v = va.min(vb);
        let (a0, a1) = self.cofactors(key.1, v);
        let (b0, b1) = self.cofactors(key.2, v);
        let lo = self.apply(op, a0, b0);
        let hi = self.apply(op, a1, b1);
        let r = self.mk(v, lo, hi);
        self.apply_cache.insert(key, r);
        r
    }

    /// Conjunction (packet-set intersection).
    pub fn and(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.apply(Op::And, a, b)
    }

    /// Disjunction (packet-set union).
    pub fn or(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.apply(Op::Or, a, b)
    }

    /// Exclusive or (symmetric difference).
    pub fn xor(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.apply(Op::Xor, a, b)
    }

    /// Set difference `a ∖ b`.
    pub fn diff(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.apply(Op::Diff, a, b)
    }

    /// Negation (set complement).
    pub fn not(&mut self, a: NodeId) -> NodeId {
        if a == NodeId::FALSE {
            return NodeId::TRUE;
        }
        if a == NodeId::TRUE {
            return NodeId::FALSE;
        }
        if let Some(&r) = self.not_cache.get(&a) {
            self.cache_hits += 1;
            return r;
        }
        self.cache_misses += 1;
        let lo = self.not(self.lo_of(a));
        let hi = self.not(self.hi_of(a));
        let r = self.mk(self.var_of(a), lo, hi);
        self.not_cache.insert(a, r);
        // Negation is an involution; prime the reverse direction too.
        self.not_cache.insert(r, a);
        r
    }

    /// If-then-else: `(f ∧ g) ∨ (¬f ∧ h)` computed in one pass.
    pub fn ite(&mut self, f: NodeId, g: NodeId, h: NodeId) -> NodeId {
        if f == NodeId::TRUE {
            return g;
        }
        if f == NodeId::FALSE {
            return h;
        }
        if g == h {
            return g;
        }
        if g == NodeId::TRUE && h == NodeId::FALSE {
            return f;
        }
        let key = (f, g, h);
        if let Some(&r) = self.ite_cache.get(&key) {
            self.cache_hits += 1;
            return r;
        }
        self.cache_misses += 1;
        let v = self.var_of(f).min(self.var_of(g)).min(self.var_of(h));
        let (f0, f1) = self.cofactors(f, v);
        let (g0, g1) = self.cofactors(g, v);
        let (h0, h1) = self.cofactors(h, v);
        let lo = self.ite(f0, g0, h0);
        let hi = self.ite(f1, g1, h1);
        let r = self.mk(v, lo, hi);
        self.ite_cache.insert(key, r);
        r
    }

    /// Logical implication as a set query: is `a ⊆ b`? Equivalent to
    /// `a ∖ b = ∅` but short-circuits without building the difference.
    pub fn implies_true(&mut self, a: NodeId, b: NodeId) -> bool {
        self.diff(a, b) == NodeId::FALSE
    }

    /// Evaluates `f` on a concrete assignment (index = variable).
    pub fn eval(&self, f: NodeId, assignment: &[bool]) -> bool {
        let mut cur = f;
        while !cur.is_terminal() {
            let v = self.var_of(cur) as usize;
            cur = if assignment.get(v).copied().unwrap_or(false) {
                self.hi_of(cur)
            } else {
                self.lo_of(cur)
            };
        }
        cur == NodeId::TRUE
    }

    /// Number of decision nodes reachable from `f` (diagram size).
    pub fn size(&self, f: NodeId) -> usize {
        let mut seen: FxMap<NodeId, ()> = FxMap::default();
        let mut stack = vec![f];
        let mut count = 0;
        while let Some(n) = stack.pop() {
            if n.is_terminal() || seen.contains_key(&n) {
                continue;
            }
            seen.insert(n, ());
            count += 1;
            stack.push(self.lo_of(n));
            stack.push(self.hi_of(n));
        }
        count
    }

    /// Current statistics snapshot.
    pub fn stats(&self) -> BddStats {
        BddStats {
            nodes: self.nodes.len(),
            cache_hits: self.cache_hits,
            cache_misses: self.cache_misses,
        }
    }

    /// Nodes currently in the arena (including the two terminals).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Entries in the unique table (hash-consed decision nodes).
    pub fn unique_table_len(&self) -> usize {
        self.unique.len()
    }

    /// Apply/ITE/not-cache hits since creation or the last
    /// [`Bdd::take_stats`].
    pub fn cache_hits(&self) -> u64 {
        self.cache_hits
    }

    /// Cache misses since creation or the last [`Bdd::take_stats`].
    pub fn cache_misses(&self) -> u64 {
        self.cache_misses
    }

    /// Cache hit rate in `[0, 1]` over the current accounting window
    /// (0 when no lookups happened).
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }

    /// Returns the statistics accumulated since the last call (or
    /// creation) and resets the hit/miss counters, so per-snapshot
    /// reports see per-snapshot numbers rather than process-lifetime
    /// accumulation. The node count is a level, not a flow, and is not
    /// reset.
    pub fn take_stats(&mut self) -> BddStats {
        let stats = self.stats();
        self.cache_hits = 0;
        self.cache_misses = 0;
        stats
    }

    /// Total entries across every operation cache — the memory-accounting
    /// proxy for cache footprint that the bench harness surfaces as the
    /// `bdd.cache.entries` gauge (each entry is a fixed-size key/value
    /// pair, so entries × entry size ≈ cache bytes).
    pub fn cache_entries(&self) -> usize {
        self.apply_cache.len()
            + self.not_cache.len()
            + self.ite_cache.len()
            + self.quant_cache.len()
            + self.rename_cache.len()
            + self.transform_cache.len()
    }

    /// Drops all operation caches (not the arena). Useful between analysis
    /// phases when the cached operands will not recur.
    pub fn clear_caches(&mut self) {
        self.apply_cache.clear();
        self.not_cache.clear();
        self.ite_cache.clear();
        self.quant_cache.clear();
        self.rename_cache.clear();
        self.transform_cache.clear();
    }

    /// Builds the conjunction of literals for an unsigned value laid out on
    /// `bits` variables starting at `first_var`, most significant bit first
    /// — the §4.2.2 bit order. Constructed bottom-up in a single pass so no
    /// intermediate conjunctions are allocated.
    pub fn value_cube(&mut self, first_var: u32, bits: u32, value: u64) -> NodeId {
        let mut acc = NodeId::TRUE;
        for i in (0..bits).rev() {
            let bit = (value >> (bits - 1 - i)) & 1 == 1;
            let v = first_var + i;
            acc = if bit {
                self.mk(v, NodeId::FALSE, acc)
            } else {
                self.mk(v, acc, NodeId::FALSE)
            };
        }
        acc
    }

    /// Like [`Bdd::value_cube`] but only constrains the top `fixed` bits —
    /// the BDD for "field starts with this prefix", the workhorse of IP
    /// prefix encoding.
    pub fn prefix_cube(&mut self, first_var: u32, bits: u32, value: u64, fixed: u32) -> NodeId {
        debug_assert!(fixed <= bits);
        let mut acc = NodeId::TRUE;
        for i in (0..fixed).rev() {
            let bit = (value >> (bits - 1 - i)) & 1 == 1;
            let v = first_var + i;
            acc = if bit {
                self.mk(v, NodeId::FALSE, acc)
            } else {
                self.mk(v, acc, NodeId::FALSE)
            };
        }
        acc
    }
}

impl std::fmt::Debug for Bdd {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Bdd")
            .field("num_vars", &self.num_vars)
            .field("nodes", &self.nodes.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn terminals_behave() {
        let mut b = Bdd::new(4);
        assert_eq!(b.and(NodeId::TRUE, NodeId::FALSE), NodeId::FALSE);
        assert_eq!(b.or(NodeId::TRUE, NodeId::FALSE), NodeId::TRUE);
        assert_eq!(b.not(NodeId::TRUE), NodeId::FALSE);
        assert_eq!(b.xor(NodeId::TRUE, NodeId::TRUE), NodeId::FALSE);
        assert_eq!(b.diff(NodeId::TRUE, NodeId::FALSE), NodeId::TRUE);
    }

    #[test]
    fn hash_consing_is_canonical() {
        let mut b = Bdd::new(4);
        let x = b.var(0);
        let y = b.var(1);
        let f1 = b.and(x, y);
        let f2 = b.and(y, x);
        assert_eq!(f1, f2, "commutativity must yield identical nodes");
        let ny = b.not(y);
        let g = b.or(f1, ny);
        let g2 = {
            // (x∧y) ∨ ¬y == x ∨ ¬y  (absorption-ish identity)
            let nv = b.not(y);
            b.or(x, nv)
        };
        assert_eq!(g, g2, "equivalent formulas must be the same node");
    }

    #[test]
    fn redundant_tests_elided() {
        let mut b = Bdd::new(4);
        let x = b.var(2);
        // ite(var0, x, x) must collapse to x without testing var0.
        let v0 = b.var(0);
        let f = b.ite(v0, x, x);
        assert_eq!(f, x);
        assert_eq!(b.var_of(f), 2);
    }

    #[test]
    fn demorgan() {
        let mut b = Bdd::new(6);
        let x = b.var(3);
        let y = b.var(5);
        let lhs = {
            let a = b.and(x, y);
            b.not(a)
        };
        let rhs = {
            let nx = b.not(x);
            let ny = b.not(y);
            b.or(nx, ny)
        };
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn ite_equals_expansion() {
        let mut b = Bdd::new(6);
        let f = b.var(0);
        let x1 = b.var(1);
        let x2 = b.var(2);
        let g = b.or(x1, x2);
        let x3 = b.var(3);
        let h = b.and(x2, x3);
        let ite = b.ite(f, g, h);
        let expanded = {
            let fg = b.and(f, g);
            let nf = b.not(f);
            let nfh = b.and(nf, h);
            b.or(fg, nfh)
        };
        assert_eq!(ite, expanded);
    }

    #[test]
    fn eval_walks_correctly() {
        let mut b = Bdd::new(3);
        let x0 = b.var(0);
        let x2 = b.var(2);
        let f = b.xor(x0, x2);
        assert!(!b.eval(f, &[false, false, false]));
        assert!(b.eval(f, &[true, false, false]));
        assert!(b.eval(f, &[false, true, true]));
        assert!(!b.eval(f, &[true, false, true]));
    }

    #[test]
    fn value_cube_matches_exact_value() {
        let mut b = Bdd::new(8);
        let f = b.value_cube(0, 8, 0b1010_0001);
        for v in 0u32..256 {
            let assignment: Vec<bool> = (0..8).map(|i| (v >> (7 - i)) & 1 == 1).collect();
            assert_eq!(b.eval(f, &assignment), v == 0b1010_0001, "v={v}");
        }
        assert_eq!(b.size(f), 8);
    }

    #[test]
    fn prefix_cube_matches_prefix() {
        let mut b = Bdd::new(8);
        // Top 3 bits must equal 101.
        let f = b.prefix_cube(0, 8, 0b1010_0000, 3);
        for v in 0u32..256 {
            let assignment: Vec<bool> = (0..8).map(|i| (v >> (7 - i)) & 1 == 1).collect();
            assert_eq!(b.eval(f, &assignment), v >> 5 == 0b101, "v={v}");
        }
        assert_eq!(b.size(f), 3);
        // fixed = 0 is the universe.
        assert_eq!(b.prefix_cube(0, 8, 0, 0), NodeId::TRUE);
    }

    #[test]
    fn diff_and_implies() {
        let mut b = Bdd::new(4);
        let x = b.var(0);
        let y = b.var(1);
        let xy = b.and(x, y);
        assert!(b.implies_true(xy, x));
        assert!(!b.implies_true(x, xy));
        let d = b.diff(x, xy);
        // x ∖ (x∧y) == x∧¬y
        let ny = b.not(y);
        let expect = b.and(x, ny);
        assert_eq!(d, expect);
    }

    #[test]
    fn governor_ceiling_sets_sticky_exhaustion() {
        let mut b = Bdd::new(32);
        b.install_governor(ResourceGovernor::with_node_ceiling(16));
        assert!(b.exhausted().is_none());
        // Build something bigger than 16 nodes; the op completes but the
        // exhaustion is recorded.
        let mut acc = NodeId::FALSE;
        for k in 0..64u64 {
            let c = b.value_cube(0, 32, k * 997);
            acc = b.or(acc, c);
        }
        assert_ne!(acc, NodeId::FALSE);
        let e = b.exhausted().expect("ceiling must trip");
        assert_eq!(e.stage, "bdd");
        // Unlimited governors are not even installed.
        let mut b2 = Bdd::new(4);
        b2.install_governor(ResourceGovernor::unlimited());
        let x = b2.var(0);
        let y = b2.var(1);
        b2.and(x, y);
        assert!(b2.exhausted().is_none());
    }

    #[test]
    fn take_stats_resets_cache_counters_not_nodes() {
        let mut b = Bdd::new(8);
        let x = b.var(0);
        let y = b.var(1);
        let f = b.and(x, y);
        b.and(x, y); // cache hit
        let first = b.take_stats();
        assert!(first.cache_hits >= 1, "repeat apply must hit the cache");
        assert!(first.cache_misses >= 1);
        let nodes_before = b.node_count();
        // After the take, the window restarts at zero…
        assert_eq!(b.cache_hits(), 0);
        assert_eq!(b.cache_misses(), 0);
        assert_eq!(b.cache_hit_rate(), 0.0);
        // …but the arena and unique table are untouched.
        assert_eq!(b.node_count(), nodes_before);
        assert_eq!(b.unique_table_len(), nodes_before - 2, "terminals are not hash-consed");
        // A fresh window counts only new activity.
        b.and(x, y);
        assert!(b.cache_hits() >= 1);
        assert!(b.eval(f, &[true, true]));
    }

    #[test]
    fn fork_preserves_ids_and_diverges() {
        let mut b = Bdd::new(8);
        let x = b.var(0);
        let y = b.var(3);
        let f = b.and(x, y);
        b.install_governor(ResourceGovernor::with_node_ceiling(10_000));
        let mut shard = b.fork();
        // Existing NodeIds mean the same function in the fork.
        for v in 0u32..4 {
            let assignment: Vec<bool> = (0..8).map(|i| (v >> i) & 1 == 1).collect();
            assert_eq!(b.eval(f, &assignment), shard.eval(f, &assignment));
        }
        // The fork hash-conses against the copied unique table: an
        // equivalent build resolves to the same NodeId.
        assert_eq!(shard.and(x, y), f);
        // Divergence: new nodes in the fork do not touch the parent.
        let parent_nodes = b.node_count();
        let z = shard.var(6);
        let g = shard.or(f, z);
        assert!(shard.eval(g, &[false, false, false, false, false, false, true, false]));
        assert_eq!(b.node_count(), parent_nodes);
        // The governor stays behind: forks are budgeted by their driver.
        assert!(shard.exhausted().is_none());
    }

    #[test]
    fn stats_count_nodes() {
        let mut b = Bdd::new(4);
        let before = b.stats().nodes;
        let x = b.var(0);
        let y = b.var(1);
        b.and(x, y);
        assert!(b.stats().nodes > before);
        b.clear_caches();
        // Clearing caches must not lose nodes.
        let f = b.and(x, y);
        assert!(b.eval(f, &[true, true]));
    }
}
