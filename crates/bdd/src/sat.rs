//! Model counting, cube extraction, and preference-guided example picking.
//!
//! The paper's §4.4.3: *"BDDs help to select positive and negative examples
//! quickly by intersecting the answer space with preferences constraints
//! (also encoded as BDDs)"*. [`Bdd::pick_with_prefs`] is that operation:
//! preferences are applied greedily in priority order, each kept only if
//! the intersection stays non-empty, and a concrete cube is read off the
//! result.

use crate::manager::{Bdd, FxMap, NodeId};

/// A (partial) satisfying assignment: `Some(bit)` for constrained
/// variables, `None` for don't-cares. Indexed by variable number.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Cube {
    bits: Vec<Option<bool>>,
}

impl Cube {
    /// The assignment for variable `v`.
    pub fn get(&self, v: u32) -> Option<bool> {
        self.bits.get(v as usize).copied().flatten()
    }

    /// All variables, indexed.
    pub fn bits(&self) -> &[Option<bool>] {
        &self.bits
    }

    /// Reads an unsigned field laid out MSB-first on `bits` variables
    /// starting at `first_var`; don't-care bits read as 0 (the numerically
    /// smallest completion, which keeps examples stable run to run).
    pub fn field(&self, first_var: u32, bits: u32) -> u64 {
        let mut v = 0u64;
        for i in 0..bits {
            v <<= 1;
            if self.get(first_var + i) == Some(true) {
                v |= 1;
            }
        }
        v
    }

    /// A fully concrete assignment vector (don't-cares resolved to 0).
    pub fn concretize(&self) -> Vec<bool> {
        self.bits.iter().map(|b| b.unwrap_or(false)).collect()
    }
}

impl Bdd {
    /// Number of satisfying assignments over the manager's full variable
    /// set, as `f64` (exact for counts below 2^53; the universe at 261
    /// packet variables is ~3.7e78, well inside `f64` range).
    pub fn sat_count(&self, f: NodeId) -> f64 {
        let mut cache: FxMap<NodeId, f64> = FxMap::default();
        let n = self.num_vars();
        // fraction(f) = |f| / 2^num_vars computed top-down as a weight.
        fn frac(bdd: &Bdd, f: NodeId, cache: &mut FxMap<NodeId, f64>) -> f64 {
            if f == NodeId::FALSE {
                return 0.0;
            }
            if f == NodeId::TRUE {
                return 1.0;
            }
            if let Some(&v) = cache.get(&f) {
                return v;
            }
            let lo = frac(bdd, bdd.lo_of(f), cache);
            let hi = frac(bdd, bdd.hi_of(f), cache);
            let v = 0.5 * (lo + hi);
            cache.insert(f, v);
            v
        }
        frac(self, f, &mut cache) * (n as f64).exp2()
    }

    /// Deterministically picks one satisfying cube, or `None` for the empty
    /// set. Prefers the 0-branch at every node, so the example is the
    /// numerically smallest available in each constrained field.
    pub fn pick_cube(&self, f: NodeId) -> Option<Cube> {
        if f == NodeId::FALSE {
            return None;
        }
        let mut bits = vec![None; self.num_vars() as usize];
        let mut cur = f;
        while cur != NodeId::TRUE {
            let v = self.var_of(cur) as usize;
            if self.lo_of(cur) != NodeId::FALSE {
                bits[v] = Some(false);
                cur = self.lo_of(cur);
            } else {
                bits[v] = Some(true);
                cur = self.hi_of(cur);
            }
        }
        Some(Cube { bits })
    }

    /// Picks an example from `f` biased by `prefs`, applied greedily in
    /// priority order: each preference is intersected in only if the result
    /// stays satisfiable. This is the paper's example-selection mechanism.
    pub fn pick_with_prefs(&mut self, f: NodeId, prefs: &[NodeId]) -> Option<Cube> {
        if f == NodeId::FALSE {
            return None;
        }
        let mut cur = f;
        for &p in prefs {
            let refined = self.and(cur, p);
            if refined != NodeId::FALSE {
                cur = refined;
            }
        }
        self.pick_cube(cur)
    }

    /// Calls `visit` for every cube (path to TRUE) of `f`. Used by tests
    /// and by the cube-based baseline engine for cross-validation; the
    /// number of cubes can be exponential, so production analyses never
    /// call this on large diagrams.
    pub fn for_each_cube(&self, f: NodeId, mut visit: impl FnMut(&Cube)) {
        let mut bits = vec![None; self.num_vars() as usize];
        self.cube_walk(f, &mut bits, &mut visit);
    }

    fn cube_walk(
        &self,
        f: NodeId,
        bits: &mut Vec<Option<bool>>,
        visit: &mut impl FnMut(&Cube),
    ) {
        if f == NodeId::FALSE {
            return;
        }
        if f == NodeId::TRUE {
            visit(&Cube { bits: bits.clone() });
            return;
        }
        let v = self.var_of(f) as usize;
        bits[v] = Some(false);
        self.cube_walk(self.lo_of(f), bits, visit);
        bits[v] = Some(true);
        self.cube_walk(self.hi_of(f), bits, visit);
        bits[v] = None;
    }

    /// The support of `f`: every variable tested anywhere in the diagram,
    /// ascending.
    pub fn support(&self, f: NodeId) -> Vec<u32> {
        let mut seen: FxMap<NodeId, ()> = FxMap::default();
        let mut vars: Vec<u32> = Vec::new();
        let mut stack = vec![f];
        while let Some(n) = stack.pop() {
            if n.is_terminal() || seen.contains_key(&n) {
                continue;
            }
            seen.insert(n, ());
            vars.push(self.var_of(n));
            stack.push(self.lo_of(n));
            stack.push(self.hi_of(n));
        }
        vars.sort_unstable();
        vars.dedup();
        vars
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sat_count_simple() {
        let mut b = Bdd::new(3);
        assert_eq!(b.sat_count(NodeId::TRUE), 8.0);
        assert_eq!(b.sat_count(NodeId::FALSE), 0.0);
        let x = b.var(0);
        assert_eq!(b.sat_count(x), 4.0);
        let y = b.var(1);
        let xy = b.and(x, y);
        assert_eq!(b.sat_count(xy), 2.0);
        let xor = b.xor(x, y);
        assert_eq!(b.sat_count(xor), 4.0);
    }

    #[test]
    fn pick_cube_smallest() {
        let mut b = Bdd::new(4);
        let x = b.var(0);
        let y = b.var(1);
        let f = b.or(x, y);
        let c = b.pick_cube(f).unwrap();
        // Smallest solution: x=0, y=1.
        assert_eq!(c.get(0), Some(false));
        assert_eq!(c.get(1), Some(true));
        assert_eq!(c.get(2), None);
        assert!(b.eval(f, &c.concretize()));
        assert!(b.pick_cube(NodeId::FALSE).is_none());
    }

    #[test]
    fn pick_with_prefs_steers() {
        let mut b = Bdd::new(4);
        let x = b.var(0);
        let y = b.var(1);
        let f = b.or(x, y);
        // Prefer x=1 over the default smallest pick.
        let c = b.pick_with_prefs(f, &[x]).unwrap();
        assert_eq!(c.get(0), Some(true));
        // An unsatisfiable preference is skipped, not fatal.
        let nx = b.not(x);
        let ny = b.not(y);
        let only_x = b.and(f, ny);
        let c2 = b.pick_with_prefs(only_x, &[nx]).unwrap();
        assert_eq!(c2.get(0), Some(true), "pref dropped because f requires x");
    }

    #[test]
    fn prefs_apply_in_priority_order() {
        let mut b = Bdd::new(4);
        let x = b.var(0);
        let y = b.var(1);
        let f = NodeId::TRUE;
        let nx = b.not(x);
        // First pref (x) wins, later conflicting pref (¬x) is skipped,
        // compatible pref (y) still applies.
        let c = b.pick_with_prefs(f, &[x, nx, y]).unwrap();
        assert_eq!(c.get(0), Some(true));
        assert_eq!(c.get(1), Some(true));
    }

    #[test]
    fn field_extraction() {
        let mut b = Bdd::new(8);
        let f = b.value_cube(0, 8, 0xA5);
        let c = b.pick_cube(f).unwrap();
        assert_eq!(c.field(0, 8), 0xA5);
    }

    #[test]
    fn cube_enumeration_counts() {
        let mut b = Bdd::new(3);
        let x = b.var(0);
        let y = b.var(1);
        let f = b.xor(x, y);
        let mut n = 0;
        b.for_each_cube(f, |c| {
            n += 1;
            assert!(b.eval(f, &c.concretize()));
        });
        assert_eq!(n, 2, "xor has two cubes");
    }

    #[test]
    fn support_reports_tested_vars() {
        let mut b = Bdd::new(8);
        let x = b.var(2);
        let y = b.var(5);
        let f = b.and(x, y);
        assert_eq!(b.support(f), vec![2, 5]);
        assert!(b.support(NodeId::TRUE).is_empty());
    }

    #[test]
    fn sat_count_matches_enumeration() {
        let mut b = Bdd::new(4);
        let x = b.var(0);
        let y = b.var(1);
        let z = b.var(3);
        let xy = b.or(x, y);
        let f = b.and(xy, z);
        let count = b.sat_count(f);
        let mut brute = 0u32;
        for v in 0..16u32 {
            let assignment: Vec<bool> = (0..4).map(|i| (v >> i) & 1 == 1).collect();
            if b.eval(f, &assignment) {
                brute += 1;
            }
        }
        assert_eq!(count, brute as f64);
    }
}
