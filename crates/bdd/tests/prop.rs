//! Property-based tests: BDD operations against brute-force truth tables.
//!
//! A random boolean expression over a small variable set is evaluated two
//! ways — via the BDD and directly — on every assignment. This exercises
//! apply/ITE/not/quantification/renaming together with the reduction rules.

use batnet_bdd::{Bdd, NodeId};
use proptest::prelude::*;

/// A small expression language over `NVARS` variables.
#[derive(Clone, Debug)]
enum Expr {
    Var(u32),
    Not(Box<Expr>),
    And(Box<Expr>, Box<Expr>),
    Or(Box<Expr>, Box<Expr>),
    Xor(Box<Expr>, Box<Expr>),
    Ite(Box<Expr>, Box<Expr>, Box<Expr>),
    Const(bool),
}

const NVARS: u32 = 5;

fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        (0..NVARS).prop_map(Expr::Var),
        any::<bool>().prop_map(Expr::Const),
    ];
    leaf.prop_recursive(4, 32, 3, |inner| {
        prop_oneof![
            inner.clone().prop_map(|e| Expr::Not(Box::new(e))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::And(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Or(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Xor(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone(), inner)
                .prop_map(|(a, b, c)| Expr::Ite(Box::new(a), Box::new(b), Box::new(c))),
        ]
    })
}

fn to_bdd(e: &Expr, b: &mut Bdd) -> NodeId {
    match e {
        Expr::Var(v) => b.var(*v),
        Expr::Const(true) => NodeId::TRUE,
        Expr::Const(false) => NodeId::FALSE,
        Expr::Not(x) => {
            let f = to_bdd(x, b);
            b.not(f)
        }
        Expr::And(x, y) => {
            let f = to_bdd(x, b);
            let g = to_bdd(y, b);
            b.and(f, g)
        }
        Expr::Or(x, y) => {
            let f = to_bdd(x, b);
            let g = to_bdd(y, b);
            b.or(f, g)
        }
        Expr::Xor(x, y) => {
            let f = to_bdd(x, b);
            let g = to_bdd(y, b);
            b.xor(f, g)
        }
        Expr::Ite(c, t, e2) => {
            let f = to_bdd(c, b);
            let g = to_bdd(t, b);
            let h = to_bdd(e2, b);
            b.ite(f, g, h)
        }
    }
}

fn eval_expr(e: &Expr, a: &[bool]) -> bool {
    match e {
        Expr::Var(v) => a[*v as usize],
        Expr::Const(c) => *c,
        Expr::Not(x) => !eval_expr(x, a),
        Expr::And(x, y) => eval_expr(x, a) && eval_expr(y, a),
        Expr::Or(x, y) => eval_expr(x, a) || eval_expr(y, a),
        Expr::Xor(x, y) => eval_expr(x, a) ^ eval_expr(y, a),
        Expr::Ite(c, t, e2) => {
            if eval_expr(c, a) {
                eval_expr(t, a)
            } else {
                eval_expr(e2, a)
            }
        }
    }
}

fn assignments() -> impl Iterator<Item = Vec<bool>> {
    (0..(1u32 << NVARS)).map(|v| (0..NVARS).map(|i| (v >> i) & 1 == 1).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn bdd_matches_truth_table(e in arb_expr()) {
        let mut b = Bdd::new(NVARS);
        let f = to_bdd(&e, &mut b);
        for a in assignments() {
            prop_assert_eq!(b.eval(f, &a), eval_expr(&e, &a));
        }
    }

    #[test]
    fn canonical_equal_functions_equal_nodes(e1 in arb_expr(), e2 in arb_expr()) {
        let mut b = Bdd::new(NVARS);
        let f1 = to_bdd(&e1, &mut b);
        let f2 = to_bdd(&e2, &mut b);
        let same_fn = assignments().all(|a| eval_expr(&e1, &a) == eval_expr(&e2, &a));
        prop_assert_eq!(f1 == f2, same_fn, "canonicity: node equality iff function equality");
    }

    #[test]
    fn sat_count_matches_brute_force(e in arb_expr()) {
        let mut b = Bdd::new(NVARS);
        let f = to_bdd(&e, &mut b);
        let brute = assignments().filter(|a| eval_expr(&e, a)).count();
        prop_assert_eq!(b.sat_count(f), brute as f64);
    }

    #[test]
    fn exists_matches_brute_force(e in arb_expr(), qvar in 0..NVARS) {
        let mut b = Bdd::new(NVARS);
        let f = to_bdd(&e, &mut b);
        let cube = b.cube_of_vars(&[qvar]);
        let g = b.exists(f, cube);
        for a in assignments() {
            let mut a0 = a.clone();
            a0[qvar as usize] = false;
            let mut a1 = a.clone();
            a1[qvar as usize] = true;
            let expect = eval_expr(&e, &a0) || eval_expr(&e, &a1);
            prop_assert_eq!(b.eval(g, &a), expect);
        }
    }

    #[test]
    fn pick_cube_satisfies(e in arb_expr()) {
        let mut b = Bdd::new(NVARS);
        let f = to_bdd(&e, &mut b);
        match b.pick_cube(f) {
            None => prop_assert_eq!(f, NodeId::FALSE),
            Some(c) => prop_assert!(b.eval(f, &c.concretize())),
        }
    }

    #[test]
    fn not_is_involution(e in arb_expr()) {
        let mut b = Bdd::new(NVARS);
        let f = to_bdd(&e, &mut b);
        let nf = b.not(f);
        let nnf = b.not(nf);
        prop_assert_eq!(f, nnf);
        prop_assert_eq!(b.and(f, nf), NodeId::FALSE);
        prop_assert_eq!(b.or(f, nf), NodeId::TRUE);
    }

    #[test]
    fn rename_shift_matches(e in arb_expr()) {
        // Shift all variables up by NVARS within a double-width manager.
        let mut b = Bdd::new(NVARS * 2);
        let f = to_bdd(&e, &mut b);
        let pairs: Vec<(u32, u32)> = (0..NVARS).map(|v| (v, v + NVARS)).collect();
        let map = b.register_map(&pairs);
        let g = b.rename(f, map);
        for a in assignments() {
            // Place the assignment on the shifted positions.
            let mut wide = vec![false; (NVARS * 2) as usize];
            for (i, &bit) in a.iter().enumerate() {
                wide[i + NVARS as usize] = bit;
            }
            prop_assert_eq!(b.eval(g, &wide), eval_expr(&e, &a));
        }
    }

    #[test]
    fn fused_transform_matches_3step(e in arb_expr(), r in arb_expr()) {
        // Inputs are vars 0..NVARS, outputs NVARS..2*NVARS; rule relates
        // them via an arbitrary expression over inputs ∧ shifted expr over
        // outputs (enough to stress quantify+rename interplay).
        let mut b = Bdd::new(NVARS * 2);
        let f = to_bdd(&e, &mut b);
        let rule_in = to_bdd(&r, &mut b);
        let pairs_up: Vec<(u32, u32)> = (0..NVARS).map(|v| (v, v + NVARS)).collect();
        let up = b.register_map(&pairs_up);
        let rule_out = b.rename(rule_in, up);
        let rule = b.or(rule_in, rule_out);
        let inputs: Vec<u32> = (0..NVARS).collect();
        let pairs_down: Vec<(u32, u32)> = (0..NVARS).map(|v| (v + NVARS, v)).collect();
        let t = b.register_transform(&inputs, &pairs_down);
        let fused = b.transform(f, rule, t);
        let steps = b.transform_3step(f, rule, t);
        prop_assert_eq!(fused, steps);
    }
}
