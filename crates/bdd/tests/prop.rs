//! Randomized property tests: BDD operations against brute-force truth
//! tables.
//!
//! A random boolean expression over a small variable set is evaluated two
//! ways — via the BDD and directly — on every assignment. This exercises
//! apply/ITE/not/quantification/renaming together with the reduction
//! rules. Expressions are generated from the workspace's seeded PRNG
//! (deterministic: every run tests the same cases; a failure names the
//! case index to reproduce).

use batnet_bdd::{Bdd, NodeId};
use batnet_net::Rng;

/// A small expression language over `NVARS` variables.
#[derive(Clone, Debug)]
enum Expr {
    Var(u32),
    Not(Box<Expr>),
    And(Box<Expr>, Box<Expr>),
    Or(Box<Expr>, Box<Expr>),
    Xor(Box<Expr>, Box<Expr>),
    Ite(Box<Expr>, Box<Expr>, Box<Expr>),
    Const(bool),
}

const NVARS: u32 = 5;
const CASES: u64 = 256;

/// A random expression of depth ≤ `depth`.
fn gen_expr(rng: &mut Rng, depth: u32) -> Expr {
    if depth == 0 || rng.chance(1, 4) {
        return if rng.flip() {
            Expr::Var(rng.below(NVARS as u64) as u32)
        } else {
            Expr::Const(rng.flip())
        };
    }
    match rng.below(5) {
        0 => Expr::Not(Box::new(gen_expr(rng, depth - 1))),
        1 => Expr::And(
            Box::new(gen_expr(rng, depth - 1)),
            Box::new(gen_expr(rng, depth - 1)),
        ),
        2 => Expr::Or(
            Box::new(gen_expr(rng, depth - 1)),
            Box::new(gen_expr(rng, depth - 1)),
        ),
        3 => Expr::Xor(
            Box::new(gen_expr(rng, depth - 1)),
            Box::new(gen_expr(rng, depth - 1)),
        ),
        _ => Expr::Ite(
            Box::new(gen_expr(rng, depth - 1)),
            Box::new(gen_expr(rng, depth - 1)),
            Box::new(gen_expr(rng, depth - 1)),
        ),
    }
}

fn case_rng(test: u64, case: u64) -> Rng {
    Rng::new(0xB00_D0D0 ^ (test << 32) ^ case)
}

fn to_bdd(e: &Expr, b: &mut Bdd) -> NodeId {
    match e {
        Expr::Var(v) => b.var(*v),
        Expr::Const(true) => NodeId::TRUE,
        Expr::Const(false) => NodeId::FALSE,
        Expr::Not(x) => {
            let f = to_bdd(x, b);
            b.not(f)
        }
        Expr::And(x, y) => {
            let f = to_bdd(x, b);
            let g = to_bdd(y, b);
            b.and(f, g)
        }
        Expr::Or(x, y) => {
            let f = to_bdd(x, b);
            let g = to_bdd(y, b);
            b.or(f, g)
        }
        Expr::Xor(x, y) => {
            let f = to_bdd(x, b);
            let g = to_bdd(y, b);
            b.xor(f, g)
        }
        Expr::Ite(c, t, e2) => {
            let f = to_bdd(c, b);
            let g = to_bdd(t, b);
            let h = to_bdd(e2, b);
            b.ite(f, g, h)
        }
    }
}

fn eval_expr(e: &Expr, a: &[bool]) -> bool {
    match e {
        Expr::Var(v) => a[*v as usize],
        Expr::Const(c) => *c,
        Expr::Not(x) => !eval_expr(x, a),
        Expr::And(x, y) => eval_expr(x, a) && eval_expr(y, a),
        Expr::Or(x, y) => eval_expr(x, a) || eval_expr(y, a),
        Expr::Xor(x, y) => eval_expr(x, a) ^ eval_expr(y, a),
        Expr::Ite(c, t, e2) => {
            if eval_expr(c, a) {
                eval_expr(t, a)
            } else {
                eval_expr(e2, a)
            }
        }
    }
}

fn assignments() -> impl Iterator<Item = Vec<bool>> {
    (0..(1u32 << NVARS)).map(|v| (0..NVARS).map(|i| (v >> i) & 1 == 1).collect())
}

#[test]
fn bdd_matches_truth_table() {
    for case in 0..CASES {
        let mut rng = case_rng(1, case);
        let e = gen_expr(&mut rng, 4);
        let mut b = Bdd::new(NVARS);
        let f = to_bdd(&e, &mut b);
        for a in assignments() {
            assert_eq!(b.eval(f, &a), eval_expr(&e, &a), "case {case}: {e:?}");
        }
    }
}

#[test]
fn canonical_equal_functions_equal_nodes() {
    for case in 0..CASES {
        let mut rng = case_rng(2, case);
        let e1 = gen_expr(&mut rng, 4);
        let e2 = gen_expr(&mut rng, 4);
        let mut b = Bdd::new(NVARS);
        let f1 = to_bdd(&e1, &mut b);
        let f2 = to_bdd(&e2, &mut b);
        let same_fn = assignments().all(|a| eval_expr(&e1, &a) == eval_expr(&e2, &a));
        assert_eq!(
            f1 == f2,
            same_fn,
            "case {case}: canonicity: node equality iff function equality"
        );
    }
}

#[test]
fn sat_count_matches_brute_force() {
    for case in 0..CASES {
        let mut rng = case_rng(3, case);
        let e = gen_expr(&mut rng, 4);
        let mut b = Bdd::new(NVARS);
        let f = to_bdd(&e, &mut b);
        let brute = assignments().filter(|a| eval_expr(&e, a)).count();
        assert_eq!(b.sat_count(f), brute as f64, "case {case}: {e:?}");
    }
}

#[test]
fn exists_matches_brute_force() {
    for case in 0..CASES {
        let mut rng = case_rng(4, case);
        let e = gen_expr(&mut rng, 4);
        let qvar = rng.below(NVARS as u64) as u32;
        let mut b = Bdd::new(NVARS);
        let f = to_bdd(&e, &mut b);
        let cube = b.cube_of_vars(&[qvar]);
        let g = b.exists(f, cube);
        for a in assignments() {
            let mut a0 = a.clone();
            a0[qvar as usize] = false;
            let mut a1 = a.clone();
            a1[qvar as usize] = true;
            let expect = eval_expr(&e, &a0) || eval_expr(&e, &a1);
            assert_eq!(b.eval(g, &a), expect, "case {case}: exists {qvar} over {e:?}");
        }
    }
}

#[test]
fn pick_cube_satisfies() {
    for case in 0..CASES {
        let mut rng = case_rng(5, case);
        let e = gen_expr(&mut rng, 4);
        let mut b = Bdd::new(NVARS);
        let f = to_bdd(&e, &mut b);
        match b.pick_cube(f) {
            None => assert_eq!(f, NodeId::FALSE, "case {case}"),
            Some(c) => assert!(b.eval(f, &c.concretize()), "case {case}: {e:?}"),
        }
    }
}

#[test]
fn not_is_involution() {
    for case in 0..CASES {
        let mut rng = case_rng(6, case);
        let e = gen_expr(&mut rng, 4);
        let mut b = Bdd::new(NVARS);
        let f = to_bdd(&e, &mut b);
        let nf = b.not(f);
        let nnf = b.not(nf);
        assert_eq!(f, nnf, "case {case}");
        assert_eq!(b.and(f, nf), NodeId::FALSE, "case {case}");
        assert_eq!(b.or(f, nf), NodeId::TRUE, "case {case}");
    }
}

#[test]
fn rename_shift_matches() {
    for case in 0..CASES {
        let mut rng = case_rng(7, case);
        let e = gen_expr(&mut rng, 4);
        // Shift all variables up by NVARS within a double-width manager.
        let mut b = Bdd::new(NVARS * 2);
        let f = to_bdd(&e, &mut b);
        let pairs: Vec<(u32, u32)> = (0..NVARS).map(|v| (v, v + NVARS)).collect();
        let map = b.register_map(&pairs);
        let g = b.rename(f, map);
        for a in assignments() {
            // Place the assignment on the shifted positions.
            let mut wide = vec![false; (NVARS * 2) as usize];
            for (i, &bit) in a.iter().enumerate() {
                wide[i + NVARS as usize] = bit;
            }
            assert_eq!(b.eval(g, &wide), eval_expr(&e, &a), "case {case}: {e:?}");
        }
    }
}

#[test]
fn fused_transform_matches_3step() {
    for case in 0..CASES {
        let mut rng = case_rng(8, case);
        let e = gen_expr(&mut rng, 4);
        let r = gen_expr(&mut rng, 4);
        // Inputs are vars 0..NVARS, outputs NVARS..2*NVARS; rule relates
        // them via an arbitrary expression over inputs ∧ shifted expr over
        // outputs (enough to stress quantify+rename interplay).
        let mut b = Bdd::new(NVARS * 2);
        let f = to_bdd(&e, &mut b);
        let rule_in = to_bdd(&r, &mut b);
        let pairs_up: Vec<(u32, u32)> = (0..NVARS).map(|v| (v, v + NVARS)).collect();
        let up = b.register_map(&pairs_up);
        let rule_out = b.rename(rule_in, up);
        let rule = b.or(rule_in, rule_out);
        let inputs: Vec<u32> = (0..NVARS).collect();
        let pairs_down: Vec<(u32, u32)> = (0..NVARS).map(|v| (v + NVARS, v)).collect();
        let t = b.register_transform(&inputs, &pairs_down);
        let fused = b.transform(f, rule, t);
        let steps = b.transform_3step(f, rule, t);
        assert_eq!(fused, steps, "case {case}: {e:?} / {r:?}");
    }
}
