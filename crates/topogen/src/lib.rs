//! # batnet-topogen — synthetic network generators
//!
//! The paper evaluates on 11 real (proprietary) networks. This crate
//! generates deterministic synthetic stand-ins with the same structural
//! spread — data centers from 75 to 2735 devices, enterprise campuses,
//! WAN backbones, paired DCs, firewall deployments — emitting *vendor
//! config text* so every experiment exercises the full pipeline from
//! parsing onwards. The substitution argument is in DESIGN.md §1.
//!
//! Everything is seed-free and deterministic: the same call always emits
//! byte-identical configs (stable results across runs is itself a §4.1.2
//! design goal).
//!
//! Also here: the paper's figure workloads — the Figure 1a/1b
//! convergence gadgets and the Figure 2 example network — and `NET1`, the
//! stand-in for the original paper's evaluation network.

// Fixture-generation code: unwraps are on literal prefixes/addresses and
// a panic on a malformed fixture is the desired failure mode. This keeps
// the workspace-wide `-D clippy::unwrap_used -D clippy::panic` robustness
// gate (which sweeps dependencies in) scoped to production crates.
#![allow(clippy::unwrap_used, clippy::panic)]

pub mod dc;
pub mod enterprise;
pub mod gadgets;
pub mod perturb;
pub mod suite;
pub mod wan;

use batnet_routing::Environment;

/// A generated network: named config files plus the environment
/// (external BGP feeds, link state).
pub struct GeneratedNetwork {
    /// Network name (NET1, N2, …).
    pub name: String,
    /// Network type for Table 1 ("DC", "enterprise", …).
    pub kind: String,
    /// `(hostname, config text)` pairs.
    pub configs: Vec<(String, String)>,
    /// External announcements and link state.
    pub env: Environment,
}

impl GeneratedNetwork {
    /// Number of devices.
    pub fn node_count(&self) -> usize {
        self.configs.len()
    }

    /// Total configuration lines (Table 1's "LoC" column).
    pub fn config_lines(&self) -> usize {
        self.configs.iter().map(|(_, t)| t.lines().count()).sum()
    }

    /// Parses every config into the VI model (panics on parse errors —
    /// generated configs must be clean).
    pub fn parse(&self) -> Vec<batnet_config::vi::Device> {
        self.configs
            .iter()
            .map(|(name, text)| {
                let (device, diags) = batnet_config::parse_device(name, text);
                if let Some(d) = diags.items().first() {
                    panic!("{name}: generated config produced diagnostic: {d}");
                }
                device
            })
            .collect()
    }

    /// Seeds a semantic policy drift: rewrites the victim device's DNS
    /// ACL line from port 53 to 5353, so the victim's policy diverges
    /// from its role peers while staying perfectly well-formed — the
    /// fixture for the `policy-drift` lint check. Returns false when the
    /// victim does not exist or carries no such line.
    pub fn seed_policy_drift(&mut self, victim: &str) -> bool {
        for (name, text) in &mut self.configs {
            if name == victim && text.contains("eq 53\n") {
                *text = text.replacen("eq 53\n", "eq 5353\n", 1);
                return true;
            }
        }
        false
    }
}
