//! Enterprise / campus generator: OSPF core with iBGP overlay, access
//! subnets, borders with external transit feeds, edge NAT, and optional
//! zone firewalls — the NET1-class topology.
//!
//! Structure:
//!
//! * `core` routers in a ring plus chords, OSPF area 0, iBGP full mesh
//!   over loopbacks;
//! * `dist` distribution routers, each dual-homed to two cores (OSPF
//!   area 0), iBGP clients of every core;
//! * `access` routers, each homed to one distribution pair, owning a host
//!   /24 (OSPF passive) with an inbound ACL;
//! * `borders` with eBGP to an external transit peer announcing a
//!   default route plus Internet prefixes, `next-hop-self` towards the
//!   mesh, and source NAT on the uplink;
//! * optionally `firewalls` (junos dialect) inserted in front of the
//!   borders with trust/untrust zones.
//!
//! Addressing: hosts `10.<a/256>.<a%256>.0/24`, links /31s from
//! `172.16/12`, loopbacks `192.168.x.y/32`.

use crate::dc::LinkAlloc;
use crate::GeneratedNetwork;
use batnet_net::Asn;
use batnet_routing::{Environment, ExternalAnnouncement};
use std::fmt::Write;

/// Generator parameters.
pub struct EnterpriseSpec {
    /// Core routers (≥2).
    pub cores: usize,
    /// Distribution routers.
    pub dists: usize,
    /// Access routers.
    pub accesses: usize,
    /// Border routers (≥1).
    pub borders: usize,
    /// Zone firewalls between borders and the transit feeds (junos
    /// dialect); 0 disables.
    pub firewalls: usize,
    /// Emit this fraction (percent) of access devices in the `flat`
    /// dialect instead of `ios` (mixed-vendor networks).
    pub flat_access_percent: usize,
    /// Source NAT on the border uplinks (on by default; the APT
    /// comparison network disables it because Atomic Predicates does not
    /// model transformations).
    pub nat: bool,
}

impl Default for EnterpriseSpec {
    fn default() -> Self {
        EnterpriseSpec {
            cores: 2,
            dists: 2,
            accesses: 4,
            borders: 1,
            firewalls: 0,
            flat_access_percent: 0,
            nat: true,
        }
    }
}

/// The enterprise AS number.
pub const ENTERPRISE_AS: u32 = 65500;
/// The transit provider's AS.
pub const TRANSIT_AS: u32 = 174;

fn loopback(i: usize) -> String {
    format!("192.168.{}.{}", i / 250, 1 + i % 250)
}

/// Generates the network.
pub fn enterprise(name: &str, spec: &EnterpriseSpec) -> GeneratedNetwork {
    assert!(spec.cores >= 2 && spec.borders >= 1);
    let mut links = LinkAlloc::new();
    let mut configs: Vec<(String, String)> = Vec::new();
    let mut env = Environment::none();

    let core_name = |i: usize| format!("core{i}");
    let n_core = spec.cores;
    let n_dist = spec.dists;
    // Device id space for loopbacks: cores, dists, borders, accesses.
    let core_lo = |i: usize| loopback(i);
    let dist_lo = |i: usize| loopback(n_core + i);
    let border_lo = |i: usize| loopback(n_core + n_dist + i);

    // Per-device config accumulators (interfaces, then sections).
    let mut iface_lines: Vec<Vec<String>> = Vec::new();
    let mut tail_lines: Vec<Vec<String>> = Vec::new();
    let mut names: Vec<String> = Vec::new();
    let mut add_device = |name: String| -> usize {
        names.push(name);
        iface_lines.push(Vec::new());
        tail_lines.push(Vec::new());
        names.len() - 1
    };

    let cores: Vec<usize> = (0..n_core).map(|i| add_device(core_name(i))).collect();
    let dists: Vec<usize> = (0..n_dist).map(|i| add_device(format!("dist{i}"))).collect();
    let borders: Vec<usize> = (0..spec.borders)
        .map(|i| add_device(format!("border{i}")))
        .collect();
    let accesses: Vec<usize> = (0..spec.accesses)
        .map(|i| add_device(format!("access{i}")))
        .collect();

    let ospf_link = |ia: usize, ib: usize,
                         iface_lines: &mut Vec<Vec<String>>,
                         links: &mut LinkAlloc,
                         cost: u32| {
        let (lo, hi) = links.next_pair();
        let name_a = format!("to-{}", ia ^ ib ^ usize::MAX & 0xffff); // unique-ish but deterministic
        let _ = name_a;
        let ia_if = format!("p{}", iface_lines[ia].len());
        let ib_if = format!("p{}", iface_lines[ib].len());
        iface_lines[ia].push(format!(
            "interface {ia_if}\n ip address {lo}/31\n ip ospf area 0\n ip ospf cost {cost}"
        ));
        iface_lines[ib].push(format!(
            "interface {ib_if}\n ip address {hi}/31\n ip ospf area 0\n ip ospf cost {cost}"
        ));
    };

    // Core ring + chord.
    for i in 0..n_core {
        let j = (i + 1) % n_core;
        if n_core > 1 && (i < j || n_core == 2) {
            ospf_link(cores[i], cores[j], &mut iface_lines, &mut links, 10);
        }
    }
    if n_core >= 4 {
        ospf_link(cores[0], cores[n_core / 2], &mut iface_lines, &mut links, 10);
    }
    // Dists dual-home to consecutive cores.
    for (i, &d) in dists.iter().enumerate() {
        ospf_link(d, cores[i % n_core], &mut iface_lines, &mut links, 20);
        ospf_link(d, cores[(i + 1) % n_core], &mut iface_lines, &mut links, 20);
    }
    // Borders home to two cores.
    for (i, &b) in borders.iter().enumerate() {
        ospf_link(b, cores[i % n_core], &mut iface_lines, &mut links, 10);
        ospf_link(b, cores[(i + 1) % n_core], &mut iface_lines, &mut links, 10);
    }
    // Accesses home to one dist (two uplinks when possible).
    for (i, &a) in accesses.iter().enumerate() {
        if n_dist > 0 {
            ospf_link(a, dists[i % n_dist], &mut iface_lines, &mut links, 50);
            if n_dist > 1 {
                ospf_link(a, dists[(i + 1) % n_dist], &mut iface_lines, &mut links, 50);
            }
        } else {
            ospf_link(a, cores[i % n_core], &mut iface_lines, &mut links, 50);
        }
    }

    // Loopbacks + host subnets + ACLs.
    for (i, &c) in cores.iter().enumerate() {
        iface_lines[c].push(format!(
            "interface lo0\n ip address {}/32\n ip ospf area 0\n ip ospf passive",
            core_lo(i)
        ));
    }
    for (i, &d) in dists.iter().enumerate() {
        iface_lines[d].push(format!(
            "interface lo0\n ip address {}/32\n ip ospf area 0\n ip ospf passive",
            dist_lo(i)
        ));
    }
    for (i, &b) in borders.iter().enumerate() {
        iface_lines[b].push(format!(
            "interface lo0\n ip address {}/32\n ip ospf area 0\n ip ospf passive",
            border_lo(i)
        ));
    }
    for (i, &a) in accesses.iter().enumerate() {
        iface_lines[a].push(format!(
            "interface hosts\n ip access-group HOSTS in\n ip address 10.{}.{}.1/24\n ip ospf area 0\n ip ospf passive",
            i / 256,
            i % 256
        ));
        tail_lines[a].push(
            "ip access-list extended HOSTS\n 10 deny ip 10.99.0.0 0.0.255.255 any\n 20 permit tcp any any\n 30 permit udp any any\n 40 permit icmp any any\n 50 deny ip any any\n".to_string(),
        );
    }

    // iBGP: cores mesh among themselves; dists and borders peer with all
    // cores.
    let mesh_sessions = |tail: &mut Vec<Vec<String>>,
                         me: usize,
                         my_lo: String,
                         peers: Vec<(usize, String)>,
                         next_hop_self: bool| {
        let mut s = format!("router bgp {ENTERPRISE_AS}\n bgp router-id {my_lo}\n");
        for (_, lo) in &peers {
            writeln!(s, " neighbor {lo} remote-as {ENTERPRISE_AS}").unwrap();
            if next_hop_self {
                writeln!(s, " neighbor {lo} next-hop-self").unwrap();
            }
        }
        tail[me].push(s);
    };
    for (i, &c) in cores.iter().enumerate() {
        let peers: Vec<(usize, String)> = (0..n_core)
            .filter(|&j| j != i)
            .map(|j| (cores[j], core_lo(j)))
            .chain((0..n_dist).map(|j| (dists[j], dist_lo(j))))
            .chain((0..spec.borders).map(|j| (borders[j], border_lo(j))))
            .collect();
        mesh_sessions(&mut tail_lines, c, core_lo(i), peers, false);
    }
    for (i, &d) in dists.iter().enumerate() {
        let peers: Vec<(usize, String)> = (0..n_core).map(|j| (cores[j], core_lo(j))).collect();
        mesh_sessions(&mut tail_lines, d, dist_lo(i), peers, false);
    }
    for (i, &b) in borders.iter().enumerate() {
        let peers: Vec<(usize, String)> = (0..n_core).map(|j| (cores[j], core_lo(j))).collect();
        mesh_sessions(&mut tail_lines, b, border_lo(i), peers, true);
        // Uplink with transit peer + NAT + import policy.
        let (lo, hi) = links.next_pair();
        iface_lines[b].push(format!("interface uplink\n ip address {lo}/31"));
        tail_lines[b].push(format!(
            "router bgp {ENTERPRISE_AS}\n neighbor {hi} remote-as {TRANSIT_AS}\n neighbor {hi} route-map FROM-TRANSIT in\n neighbor {hi} route-map TO-TRANSIT out\n"
        ));
        tail_lines[b].push(format!(
            "ip prefix-list OURS seq 5 permit 10.0.0.0/8 le 24\nip community-list standard TRANSIT permit {TRANSIT_AS}:100\nroute-map FROM-TRANSIT permit 10\n set local-preference 150\n set community {ENTERPRISE_AS}:20 additive\nroute-map TO-TRANSIT permit 10\n match ip address prefix-list OURS\n set as-path prepend {ENTERPRISE_AS}\nroute-map TO-TRANSIT deny 99\n"
        ));
        if spec.nat {
            tail_lines[b].push(format!(
                "ip nat pool EDGE 203.0.113.{} 203.0.113.{}\nip access-list extended INSIDE\n 10 permit ip 10.0.0.0 0.255.255.255 any\nip nat source list INSIDE pool EDGE interface uplink\n",
                16 * i,
                16 * i + 15
            ));
        }
        // Default route towards transit, redistributed into OSPF so
        // non-BGP access devices get it (classic default-information
        // originate pattern).
        tail_lines[b].push(format!(
            "ip route 0.0.0.0/0 {hi}\nrouter ospf 1\n redistribute static\n"
        ));
        // External feed: default route + a couple of Internet prefixes.
        env.announcements.push(ExternalAnnouncement::simple(
            names[b].clone(),
            hi.parse().unwrap(),
            Asn(TRANSIT_AS),
            "0.0.0.0/0".parse().unwrap(),
        ));
        env.announcements.push(ExternalAnnouncement {
            device: names[b].clone(),
            peer_ip: hi.parse().unwrap(),
            prefix: "198.51.100.0/24".parse().unwrap(),
            as_path: batnet_net::AsPath(vec![Asn(TRANSIT_AS), Asn(3356)]),
            med: 10,
            communities: vec![batnet_net::Community::new(TRANSIT_AS as u16, 100)],
        });
    }

    // Render ios configs.
    for i in 0..names.len() {
        let is_flat_access = names[i].starts_with("access")
            && spec.flat_access_percent > 0
            && (i % 100) < spec.flat_access_percent;
        let text = if is_flat_access {
            render_flat(&names[i], &iface_lines[i], &tail_lines[i])
        } else {
            let mut s = String::new();
            writeln!(s, "hostname {}", names[i]).unwrap();
            writeln!(s, "ntp server 192.168.255.1").unwrap();
            writeln!(s, "ip name-server 192.168.255.53").unwrap();
            for block in &iface_lines[i] {
                s.push_str(block);
                s.push('\n');
            }
            writeln!(s, "router ospf 1\n router-id {}", loopback(i)).unwrap();
            for block in &tail_lines[i] {
                s.push_str(block);
                if !block.ends_with('\n') {
                    s.push('\n');
                }
            }
            s
        };
        configs.push((names[i].clone(), text));
    }

    // Optional junos firewalls in front of each border's access side are
    // modeled as standalone zone firewalls hanging off cores (exercising
    // the junos frontend + zones); traffic to their protected subnets
    // flows through them.
    for f in 0..spec.firewalls {
        let (lo, hi) = links.next_pair();
        let fw_name = format!("fw{f}");
        let core_idx = f % n_core;
        // Attach to a core via OSPF-passive static routing: the core gets
        // a static route to the protected subnet via the firewall.
        let protected = format!("10.200.{f}.0/24");
        let mut fw = String::new();
        writeln!(fw, "set system host-name {fw_name}").unwrap();
        writeln!(fw, "set interfaces up unit 0 family inet address {hi}/31").unwrap();
        writeln!(
            fw,
            "set interfaces protected unit 0 family inet address 10.200.{f}.1/24"
        )
        .unwrap();
        writeln!(fw, "set routing-options static route 0.0.0.0/0 next-hop {lo}").unwrap();
        writeln!(fw, "set security zones security-zone untrust interfaces up").unwrap();
        writeln!(fw, "set security zones security-zone trust interfaces protected").unwrap();
        writeln!(fw, "set firewall filter INBOUND term web from protocol tcp").unwrap();
        writeln!(fw, "set firewall filter INBOUND term web from destination-port 443").unwrap();
        writeln!(fw, "set firewall filter INBOUND term web then accept").unwrap();
        writeln!(fw, "set firewall filter INBOUND term drop then discard").unwrap();
        writeln!(
            fw,
            "set security policies from-zone untrust to-zone trust filter INBOUND"
        )
        .unwrap();
        writeln!(
            fw,
            "set firewall filter OUTBOUND term any then accept"
        )
        .unwrap();
        writeln!(
            fw,
            "set security policies from-zone trust to-zone untrust filter OUTBOUND"
        )
        .unwrap();
        configs.push((fw_name, fw));
        // Core side: interface + static + redistribute into OSPF & BGP.
        let c = &mut configs[cores[core_idx]];
        c.1.push_str(&format!(
            "interface fwlink{f}\n ip address {lo}/31\nip route {protected} {hi}\nrouter ospf 1\n redistribute static\n"
        ));
    }

    GeneratedNetwork {
        name: name.to_string(),
        kind: if spec.firewalls > 0 {
            "enterprise + firewalls".into()
        } else {
            "enterprise".into()
        },
        configs,
        env,
    }
}

fn render_flat(name: &str, ifaces: &[String], tails: &[String]) -> String {
    // Translate the generator's internal ios-ish blocks into the flat
    // dialect (only the constructs access devices use).
    let mut s = format!("device {name}\nntp-server 192.168.255.1\n");
    for block in ifaces {
        let mut lines = block.lines();
        let header = lines.next().unwrap_or("");
        let ifname = header.trim_start_matches("interface ").to_string();
        let mut ip = String::new();
        let mut cost = String::new();
        let mut area = String::new();
        let mut passive = false;
        let mut acl_in = String::new();
        for l in lines {
            let l = l.trim();
            if let Some(rest) = l.strip_prefix("ip address ") {
                ip = rest.to_string();
            } else if let Some(rest) = l.strip_prefix("ip ospf cost ") {
                cost = rest.to_string();
            } else if let Some(rest) = l.strip_prefix("ip ospf area ") {
                area = rest.to_string();
            } else if l == "ip ospf passive" {
                passive = true;
            } else if let Some(rest) = l.strip_prefix("ip access-group ") {
                acl_in = rest.trim_end_matches(" in").to_string();
            }
        }
        let mut line = format!("interface {ifname} ip={ip}");
        if !area.is_empty() {
            line.push_str(&format!(" ospf-area={area}"));
        }
        if !cost.is_empty() {
            line.push_str(&format!(" ospf-cost={cost}"));
        }
        if passive {
            line.push_str(" passive");
        }
        if !acl_in.is_empty() {
            line.push_str(&format!(" acl-in={acl_in}"));
        }
        s.push_str(&line);
        s.push('\n');
    }
    s.push_str("ospf\n");
    for block in tails {
        if block.starts_with("ip access-list extended HOSTS") {
            s.push_str("acl HOSTS 10 deny src=10.99.0.0/16\n");
            s.push_str("acl HOSTS 20 permit proto=tcp\n");
            s.push_str("acl HOSTS 30 permit proto=udp\n");
            s.push_str("acl HOSTS 40 permit proto=icmp\n");
            s.push_str("acl HOSTS 50 deny\n");
        } else if block.starts_with("router bgp") {
            s.push_str(&format!("bgp asn={ENTERPRISE_AS}\n"));
            for l in block.lines() {
                let l = l.trim();
                if let Some(rest) = l.strip_prefix("neighbor ") {
                    if let Some((peer, as_part)) = rest.split_once(" remote-as ") {
                        s.push_str(&format!("bgp-neighbor {peer} remote-as={as_part}\n"));
                    }
                }
            }
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use batnet_routing::{simulate, SimOptions};

    fn small_spec() -> EnterpriseSpec {
        EnterpriseSpec {
            cores: 2,
            dists: 2,
            accesses: 4,
            borders: 1,
            firewalls: 0,
            flat_access_percent: 0,
            nat: true,
        }
    }

    #[test]
    fn enterprise_parses_and_converges() {
        let net = enterprise("t", &small_spec());
        assert_eq!(net.node_count(), 9);
        let devices = net.parse();
        let dp = simulate(&devices, &net.env, &SimOptions::default());
        assert!(dp.convergence.converged, "{:?}", dp.convergence);
        // An access router must have the default route via OSPF (the
        // border redistributes its transit default).
        let access = dp.device("access0").unwrap();
        let (p, routes) = access.main_rib.lookup("8.8.8.8".parse().unwrap()).expect("default route");
        assert!(p.is_default());
        assert_eq!(routes[0].protocol, batnet_config::vi::RouteProtocol::Ospf);
        // And OSPF routes to other access subnets.
        let (p2, r2) = access.main_rib.lookup("10.0.1.9".parse().unwrap()).unwrap();
        assert_eq!(p2.to_string(), "10.0.1.0/24");
        assert_eq!(r2[0].protocol, batnet_config::vi::RouteProtocol::Ospf);
    }

    #[test]
    fn borders_apply_import_policy() {
        let net = enterprise("t", &small_spec());
        let devices = net.parse();
        let dp = simulate(&devices, &net.env, &SimOptions::default());
        let border = dp.device("border0").unwrap();
        let best = border
            .bgp
            .best
            .get(&"198.51.100.0/24".parse().unwrap())
            .expect("transit prefix");
        assert_eq!(best.attrs.local_pref, 150, "FROM-TRANSIT sets 150");
        assert!(best
            .attrs
            .communities
            .contains(&batnet_net::Community::new(ENTERPRISE_AS as u16, 20)));
    }

    #[test]
    fn firewalls_emit_junos_and_parse() {
        let mut spec = small_spec();
        spec.firewalls = 1;
        let net = enterprise("t", &spec);
        assert_eq!(net.node_count(), 10);
        let devices = net.parse();
        let fw = devices.iter().find(|d| d.name == "fw0").unwrap();
        assert!(fw.stateful);
        assert_eq!(fw.zones.len(), 2);
        assert_eq!(fw.zone_policies.len(), 2);
        let dp = simulate(&devices, &net.env, &SimOptions::default());
        assert!(dp.convergence.converged);
        // Core has the static to the protected subnet redistributed.
        let access = dp.device("access0").unwrap();
        assert!(
            access.main_rib.lookup("10.200.0.9".parse().unwrap()).is_some(),
            "protected subnet reachable via OSPF redistribution"
        );
    }

    #[test]
    fn flat_access_devices_parse() {
        let mut spec = small_spec();
        spec.flat_access_percent = 100;
        let net = enterprise("t", &spec);
        let flat_count = net
            .configs
            .iter()
            .filter(|(_, t)| t.starts_with("device "))
            .count();
        assert_eq!(flat_count, 4, "all access devices flat");
        let devices = net.parse();
        let dp = simulate(&devices, &net.env, &SimOptions::default());
        assert!(dp.convergence.converged);
        let access = dp.device("access0").unwrap();
        assert!(access.main_rib.lookup("10.0.1.9".parse().unwrap()).is_some());
    }
}
