//! Change-scenario generators: deterministic pre/post config pairs for
//! differential analysis (`batnet-diff`) tests and benches.
//!
//! Each scenario is a small, realistic candidate change applied as a
//! *text edit* to one victim device's config — the same thing an
//! operator would push — so the perturbed snapshot exercises the full
//! pipeline from parsing onwards. Victim selection is seeded and the
//! edits are pure text surgery, so the same `(network, scenario, seed)`
//! always yields byte-identical output.

use crate::GeneratedNetwork;
use batnet_net::rng::Rng;

/// A candidate-change scenario.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Scenario {
    /// Insert a new first line into the victim's first ACL
    /// (` 5 deny tcp any any eq 443`).
    AclAddLine,
    /// Delete the first line of the victim's first ACL.
    AclRemoveLine,
    /// Attach the existing `SERVERS` ACL inbound on the victim's first
    /// peering interface (`swp0`) — one ACL edit that kills the BGP
    /// session riding that link (TCP/179 SYN is not `established`), so
    /// the change cascades into FIB deltas and changed flows.
    AclAttachPeering,
    /// Flip the victim's first permit route-map clause to deny.
    RouteMapEdit,
    /// Drain the victim: shut down every interface.
    DrainDevice,
    /// Renumber the victim's first advertised `10.a.b.0/24` prefix to
    /// `10.(a+100).b.0/24` (address + network statement together).
    PrefixRenumber,
}

impl Scenario {
    /// Every scenario, in a stable order.
    pub const ALL: [Scenario; 6] = [
        Scenario::AclAddLine,
        Scenario::AclRemoveLine,
        Scenario::AclAttachPeering,
        Scenario::RouteMapEdit,
        Scenario::DrainDevice,
        Scenario::PrefixRenumber,
    ];

    /// Stable machine-readable name.
    pub fn name(&self) -> &'static str {
        match self {
            Scenario::AclAddLine => "acl-add-line",
            Scenario::AclRemoveLine => "acl-remove-line",
            Scenario::AclAttachPeering => "acl-attach-peering",
            Scenario::RouteMapEdit => "route-map-edit",
            Scenario::DrainDevice => "drain-device",
            Scenario::PrefixRenumber => "prefix-renumber",
        }
    }

    /// Parses a scenario name (the CLI's `--scenario` flag).
    pub fn from_name(s: &str) -> Option<Scenario> {
        Scenario::ALL.iter().copied().find(|sc| sc.name() == s)
    }
}

/// One applied perturbation: the after-side configs plus provenance.
pub struct Perturbation {
    /// The scenario that was applied.
    pub scenario: Scenario,
    /// The device whose config was edited.
    pub victim: String,
    /// Human-readable summary of the edit.
    pub description: String,
    /// The full after-side config set (victim edited, rest untouched).
    pub configs: Vec<(String, String)>,
}

/// Does this config text satisfy the scenario's precondition?
fn eligible(scenario: Scenario, text: &str) -> bool {
    match scenario {
        Scenario::AclAddLine => text.contains("ip access-list extended "),
        Scenario::AclRemoveLine => first_acl_body_line(text).is_some(),
        Scenario::AclAttachPeering => {
            text.contains("ip access-list extended SERVERS")
                && text.contains("interface swp0\n ip address")
        }
        Scenario::RouteMapEdit => first_permit_route_map_line(text).is_some(),
        Scenario::DrainDevice => text.contains("interface "),
        Scenario::PrefixRenumber => first_network_24(text).is_some(),
    }
}

/// The first body line of the first extended ACL, with its byte range.
fn first_acl_body_line(text: &str) -> Option<(usize, usize)> {
    let header = text.find("ip access-list extended ")?;
    let body_start = header + text[header..].find('\n')? + 1;
    let line_end = body_start + text[body_start..].find('\n')?;
    if text[body_start..].starts_with(' ') {
        Some((body_start, line_end + 1))
    } else {
        None
    }
}

/// Byte range of the first `route-map <name> permit <seq>` line.
fn first_permit_route_map_line(text: &str) -> Option<(usize, usize)> {
    let mut offset = 0;
    for line in text.split_inclusive('\n') {
        if line.starts_with("route-map ") && line.contains(" permit ") {
            return Some((offset, offset + line.len()));
        }
        offset += line.len();
    }
    None
}

/// The `10.a.b.` stem of the first `network 10.a.b.0/24` statement.
fn first_network_24(text: &str) -> Option<(u8, u8)> {
    for line in text.lines() {
        let Some(rest) = line.strip_prefix(" network 10.") else {
            continue;
        };
        let mut parts = rest.split('.');
        let (Some(a), Some(b)) = (
            parts.next().and_then(|s| s.parse::<u8>().ok()),
            parts.next().and_then(|s| s.parse::<u8>().ok()),
        ) else {
            continue;
        };
        if parts.next() == Some("0/24") && a < 100 {
            return Some((a, b));
        }
    }
    None
}

/// Applies the scenario's text edit. Returns the edited text and a
/// description; `None` when the precondition unexpectedly fails.
fn apply(scenario: Scenario, text: &str) -> Option<(String, String)> {
    match scenario {
        Scenario::AclAddLine => {
            let header = text.find("ip access-list extended ")?;
            let insert_at = header + text[header..].find('\n')? + 1;
            let mut out = String::with_capacity(text.len() + 32);
            out.push_str(&text[..insert_at]);
            out.push_str(" 5 deny tcp any any eq 443\n");
            out.push_str(&text[insert_at..]);
            Some((out, "insert ` 5 deny tcp any any eq 443` as the first ACL line".to_string()))
        }
        Scenario::AclRemoveLine => {
            let (start, end) = first_acl_body_line(text)?;
            let removed = text[start..end].trim().to_string();
            Some((
                format!("{}{}", &text[..start], &text[end..]),
                format!("remove ACL line `{removed}`"),
            ))
        }
        Scenario::AclAttachPeering => {
            if !text.contains("interface swp0\n ip address") {
                return None;
            }
            let out = text.replacen(
                "interface swp0\n ip address",
                "interface swp0\n ip access-group SERVERS in\n ip address",
                1,
            );
            Some((out, "attach ACL SERVERS inbound on peering interface swp0".to_string()))
        }
        Scenario::RouteMapEdit => {
            let (start, end) = first_permit_route_map_line(text)?;
            let edited = text[start..end].replacen(" permit ", " deny ", 1);
            let name = text[start..end].trim().to_string();
            Some((
                format!("{}{edited}{}", &text[..start], &text[end..]),
                format!("flip `{name}` to deny"),
            ))
        }
        Scenario::DrainDevice => {
            let mut out = String::with_capacity(text.len() + 64);
            for line in text.split_inclusive('\n') {
                out.push_str(line);
                if line.starts_with("interface ") {
                    out.push_str(" shutdown\n");
                }
            }
            Some((out, "shut down every interface".to_string()))
        }
        Scenario::PrefixRenumber => {
            let (a, b) = first_network_24(text)?;
            let old = format!("10.{a}.{b}.");
            let new = format!("10.{}.{b}.", a as u32 + 100);
            Some((
                text.replace(&old, &new),
                format!("renumber {old}0/24 to {new}0/24"),
            ))
        }
    }
}

/// Applies `scenario` to a seed-chosen eligible device of `net`,
/// returning the after-side config set. `None` when no device satisfies
/// the scenario's precondition.
pub fn perturb(net: &GeneratedNetwork, scenario: Scenario, seed: u64) -> Option<Perturbation> {
    let candidates: Vec<usize> = net
        .configs
        .iter()
        .enumerate()
        .filter(|(_, (_, text))| eligible(scenario, text))
        .map(|(i, _)| i)
        .collect();
    if candidates.is_empty() {
        return None;
    }
    // Fold the scenario into the stream so the same seed picks
    // independent victims across scenarios.
    let mut rng = Rng::new(seed ^ (scenario as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let victim_idx = candidates[rng.index(candidates.len())];
    let (victim, text) = &net.configs[victim_idx];
    let (edited, description) = apply(scenario, text)?;
    let configs = net
        .configs
        .iter()
        .enumerate()
        .map(|(i, (n, t))| {
            if i == victim_idx {
                (n.clone(), edited.clone())
            } else {
                (n.clone(), t.clone())
            }
        })
        .collect();
    Some(Perturbation {
        scenario,
        victim: victim.clone(),
        description,
        configs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dc::{fat_tree, leaf_spine};

    /// Do the two texts differ line-wise?
    fn lines_differ(a: &str, b: &str) -> bool {
        a.lines().ne(b.lines())
    }

    #[test]
    fn same_seed_same_scenario_is_byte_identical() {
        let net = leaf_spine("T", 2, 4);
        for scenario in Scenario::ALL {
            let Some(p1) = perturb(&net, scenario, 7) else {
                continue;
            };
            let p2 = perturb(&net, scenario, 7).expect("eligible twice");
            assert_eq!(p1.victim, p2.victim, "{}", scenario.name());
            assert_eq!(p1.configs, p2.configs, "{}", scenario.name());
        }
    }

    #[test]
    fn every_pair_differs_in_at_least_one_line() {
        // leaf_spine covers five scenarios; the pod fat-tree has
        // route-maps for the sixth.
        let nets = [leaf_spine("T", 2, 4), fat_tree("F", 2, 2, 2, 2)];
        let mut applied = std::collections::BTreeSet::new();
        for net in &nets {
            for scenario in Scenario::ALL {
                for seed in [1u64, 2, 3] {
                    let Some(p) = perturb(net, scenario, seed) else {
                        continue;
                    };
                    applied.insert(scenario.name());
                    let before = net
                        .configs
                        .iter()
                        .find(|(n, _)| n == &p.victim)
                        .map(|(_, t)| t.as_str())
                        .expect("victim exists");
                    let after = p
                        .configs
                        .iter()
                        .find(|(n, _)| n == &p.victim)
                        .map(|(_, t)| t.as_str())
                        .expect("victim survives");
                    assert!(
                        lines_differ(before, after),
                        "{} seed {seed}: pair does not differ",
                        scenario.name()
                    );
                    // Non-victim configs are untouched.
                    for (n, t) in &p.configs {
                        if n != &p.victim {
                            let orig = net.configs.iter().find(|(m, _)| m == n).unwrap();
                            assert_eq!(&orig.1, t);
                        }
                    }
                }
            }
        }
        // Every scenario fired somewhere across the two networks.
        assert_eq!(applied.len(), Scenario::ALL.len(), "{applied:?}");
    }

    #[test]
    fn perturbed_configs_still_parse() {
        let net = leaf_spine("T", 2, 4);
        for scenario in Scenario::ALL {
            let Some(p) = perturb(&net, scenario, 11) else {
                continue;
            };
            for (name, text) in &p.configs {
                let (device, diags) = batnet_config::parse_device(name, text);
                assert_eq!(device.name, *name);
                assert!(
                    diags.items().is_empty(),
                    "{}: {name}: {:?}",
                    scenario.name(),
                    diags.items()
                );
            }
        }
    }

    #[test]
    fn scenario_names_round_trip() {
        for scenario in Scenario::ALL {
            assert_eq!(Scenario::from_name(scenario.name()), Some(scenario));
        }
        assert_eq!(Scenario::from_name("nope"), None);
    }
}
