//! The 11-network benchmark suite (the synthetic stand-in for the
//! paper's Table 1), NET1, and the 92-node APT comparison network.

use crate::dc::{fat_tree, leaf_spine, paired_dcs};
use crate::enterprise::{enterprise, EnterpriseSpec};
use crate::wan::wan;
use crate::GeneratedNetwork;

/// NET1: the stand-in for the original paper's evaluation network —
/// an 85-node enterprise (OSPF + iBGP + border transit + ACLs), the
/// feature level the original Batfish supported.
pub fn net1() -> GeneratedNetwork {
    let mut n = enterprise(
        "NET1",
        &EnterpriseSpec {
            cores: 4,
            dists: 8,
            accesses: 70,
            borders: 3,
            firewalls: 0,
            flat_access_percent: 0,
            nat: true,
        },
    );
    n.kind = "enterprise (original-paper network)".into();
    n
}

/// The 92-node network used for the §6.2 APT comparison (the largest
/// network the APT authors studied had 92 nodes; theirs were sparse
/// campus/backbone topologies, so the stand-in is an enterprise rather
/// than a dense leaf–spine). NAT is off: Atomic Predicates does not
/// model packet transformations (the very limitation §4.2 discusses).
pub fn apt92() -> GeneratedNetwork {
    let mut n = enterprise(
        "APT92",
        &EnterpriseSpec {
            cores: 4,
            dists: 8,
            accesses: 77,
            borders: 3,
            firewalls: 0,
            flat_access_percent: 0,
            nat: false,
        },
    );
    n.kind = "enterprise (APT comparison)".into();
    n
}

/// One row of the suite.
pub struct SuiteEntry {
    /// Network id (NET1, N2…N11).
    pub id: &'static str,
    /// Generator.
    pub build: fn() -> GeneratedNetwork,
    /// Nominal size (nodes) for reporting.
    pub nominal_nodes: usize,
}

/// The full 11-network suite, smallest to largest. Node counts span the
/// paper's 75–2735 range.
pub fn suite() -> Vec<SuiteEntry> {
    vec![
        SuiteEntry { id: "N2", build: n2, nominal_nodes: 75 },
        SuiteEntry { id: "NET1", build: net1, nominal_nodes: 85 },
        SuiteEntry { id: "N3", build: n3, nominal_nodes: 120 },
        SuiteEntry { id: "N5", build: n5, nominal_nodes: 160 },
        SuiteEntry { id: "N4", build: n4, nominal_nodes: 250 },
        SuiteEntry { id: "N7", build: n7, nominal_nodes: 310 },
        SuiteEntry { id: "N6", build: n6, nominal_nodes: 500 },
        SuiteEntry { id: "N8", build: n8, nominal_nodes: 650 },
        SuiteEntry { id: "N9", build: n9, nominal_nodes: 1200 },
        SuiteEntry { id: "N10", build: n10, nominal_nodes: 2000 },
        SuiteEntry { id: "N11", build: n11, nominal_nodes: 2735 },
    ]
}

/// N2: small DC, 75 nodes.
pub fn n2() -> GeneratedNetwork {
    leaf_spine("N2", 5, 70)
}

/// N3: campus, 120 nodes, mixed ios+flat dialects, with NAT at the edge.
pub fn n3() -> GeneratedNetwork {
    let mut n = enterprise(
        "N3",
        &EnterpriseSpec {
            cores: 4,
            dists: 10,
            accesses: 104,
            borders: 2,
            firewalls: 0,
            flat_access_percent: 40,
            nat: true,
        },
    );
    n.kind = "campus (ios+flat)".into();
    n
}

/// N4: paired DCs, 250 nodes.
pub fn n4() -> GeneratedNetwork {
    paired_dcs("N4", 4, 120)
}

/// N5: WAN backbone, 160 nodes, junos dialect.
pub fn n5() -> GeneratedNetwork {
    wan("N5", 20, 140)
}

/// N6: mid-size DC, 500 nodes (pod fat-tree).
pub fn n6() -> GeneratedNetwork {
    fat_tree("N6", 4, 8, 4, 58)
}

/// N7: enterprise with zone firewalls, 310 nodes, ios+junos.
pub fn n7() -> GeneratedNetwork {
    enterprise(
        "N7",
        &EnterpriseSpec {
            cores: 4,
            dists: 12,
            accesses: 282,
            borders: 4,
            firewalls: 8,
            flat_access_percent: 0,
            nat: true,
        },
    )
}

/// N8: large campus, 650 nodes.
pub fn n8() -> GeneratedNetwork {
    let mut n = enterprise(
        "N8",
        &EnterpriseSpec {
            cores: 6,
            dists: 24,
            accesses: 616,
            borders: 4,
            firewalls: 0,
            flat_access_percent: 25,
            nat: true,
        },
    );
    n.kind = "large campus".into();
    n
}

/// N9: large DC, ~1200 nodes.
pub fn n9() -> GeneratedNetwork {
    fat_tree("N9", 8, 8, 4, 145)
}

/// N10: mega DC, 2000 nodes.
pub fn n10() -> GeneratedNetwork {
    fat_tree("N10", 8, 24, 4, 79)
}

/// N11: the largest network (paper max: 2735 nodes).
pub fn n11() -> GeneratedNetwork {
    fat_tree("N11", 15, 40, 4, 64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_sizes_match_nominal() {
        for entry in suite() {
            // Only build the small ones in unit tests; the harness builds
            // everything.
            if entry.nominal_nodes > 350 {
                continue;
            }
            let net = (entry.build)();
            assert_eq!(
                net.node_count(),
                entry.nominal_nodes,
                "{} node count",
                entry.id
            );
            assert!(net.config_lines() > net.node_count() * 5, "{}", entry.id);
        }
    }

    #[test]
    fn net1_is_85_nodes() {
        let n = net1();
        assert_eq!(n.node_count(), 85);
        let devices = n.parse();
        assert_eq!(devices.len(), 85);
    }

    #[test]
    fn apt92_is_92_nodes() {
        assert_eq!(apt92().node_count(), 92);
    }

    #[test]
    fn big_dc_sizes() {
        // Arithmetic-only checks (no parse) for the big ones.
        assert_eq!(8 + 8 * (4 + 145), n9().node_count());
        assert_eq!(8 + 24 * (4 + 79), n10().node_count());
        assert_eq!(15 + 40 * (4 + 64), n11().node_count());
    }
}
