//! WAN backbone generator (junos dialect): P-router ring with chords
//! running OSPF, edge routers homed to two adjacent P routers, iBGP from
//! every edge to every P router (and a P-router full mesh) — the iBGP
//! mesh shape §5.3 of the paper mentions engineers began to *avoid*
//! because it slows analysis.

use crate::GeneratedNetwork;
use batnet_routing::Environment;
use std::fmt::Write;

/// The backbone AS.
pub const WAN_AS: u32 = 64900;

fn lo(i: usize) -> String {
    format!("192.168.{}.{}", 100 + i / 250, 1 + i % 250)
}

/// Generates the backbone: `p` core (P) routers, `edges` edge routers.
/// Each edge router originates a customer /24.
pub fn wan(name: &str, p: usize, edges: usize) -> GeneratedNetwork {
    assert!(p >= 3);
    let mut link_no = 0usize;
    let mut next_link = || {
        let base = u32::from_be_bytes([172, 20, 0, 0]) + (link_no as u32) * 2;
        link_no += 1;
        let a = std::net::Ipv4Addr::from(base).to_string();
        let b = std::net::Ipv4Addr::from(base + 1).to_string();
        (a, b)
    };

    // Accumulate `set` lines per device.
    let mut lines: Vec<Vec<String>> = vec![Vec::new(); p + edges];
    let mut names: Vec<String> = Vec::new();
    for i in 0..p {
        names.push(format!("p{i}"));
    }
    for i in 0..edges {
        names.push(format!("edge{i}"));
    }
    let mut iface_count = vec![0usize; p + edges];
    let add_link = |lines: &mut Vec<Vec<String>>,
                        iface_count: &mut Vec<usize>,
                        a: usize,
                        b: usize,
                        cost: u32,
                        pair: (String, String)| {
        let (la, lb) = pair;
        let ia = format!("ge-0/0/{}", iface_count[a]);
        let ib = format!("ge-0/0/{}", iface_count[b]);
        iface_count[a] += 1;
        iface_count[b] += 1;
        lines[a].push(format!(
            "set interfaces {ia} unit 0 family inet address {la}/31"
        ));
        lines[a].push(format!(
            "set protocols ospf area 0 interface {ia} metric {cost}"
        ));
        lines[b].push(format!(
            "set interfaces {ib} unit 0 family inet address {lb}/31"
        ));
        lines[b].push(format!(
            "set protocols ospf area 0 interface {ib} metric {cost}"
        ));
    };

    // P ring + chords.
    for i in 0..p {
        let j = (i + 1) % p;
        let pair = next_link();
        add_link(&mut lines, &mut iface_count, i, j, 10, pair);
    }
    if p >= 6 {
        for i in 0..p / 3 {
            let pair = next_link();
            add_link(&mut lines, &mut iface_count, i, i + p / 2, 15, pair);
        }
    }
    // Edges homed to two adjacent P routers.
    for e in 0..edges {
        let a = e % p;
        let b = (e + 1) % p;
        let pair = next_link();
        add_link(&mut lines, &mut iface_count, p + e, a, 30, pair);
        let pair = next_link();
        add_link(&mut lines, &mut iface_count, p + e, b, 30, pair);
    }

    // Loopbacks, router ids, iBGP, customer prefixes.
    for i in 0..p + edges {
        lines[i].push(format!(
            "set interfaces lo0 unit 0 family inet address {}/32",
            lo(i)
        ));
        lines[i].push("set protocols ospf area 0 interface lo0 passive".to_string());
        lines[i].push(format!("set routing-options router-id {}", lo(i)));
        lines[i].push(format!("set routing-options autonomous-system {WAN_AS}"));
        lines[i].push("set protocols bgp group internal type internal".to_string());
    }
    // Full iBGP mesh across every device — the design §5.3's anecdote
    // says engineers started avoiding precisely because it slows
    // analysis; the benchmark keeps it to measure that cost honestly.
    let all = p + edges;
    for i in 0..all {
        for j in 0..all {
            if i != j {
                lines[i].push(format!(
                    "set protocols bgp group internal neighbor {}",
                    lo(j)
                ));
            }
        }
    }
    for e in 0..edges {
        // Customer subnet, originated into BGP.
        lines[p + e].push(format!(
            "set interfaces cust unit 0 family inet address 10.{}.{}.1/24",
            e / 250,
            e % 250
        ));
        lines[p + e].push(format!(
            "set protocols bgp network 10.{}.{}.0/24",
            e / 250,
            e % 250
        ));
    }

    let configs = names
        .iter()
        .enumerate()
        .map(|(i, n)| {
            let mut s = String::new();
            writeln!(s, "set system host-name {n}").unwrap();
            writeln!(s, "set system ntp server 192.168.255.1").unwrap();
            for l in &lines[i] {
                writeln!(s, "{l}").unwrap();
            }
            (n.clone(), s)
        })
        .collect();
    GeneratedNetwork {
        name: name.to_string(),
        kind: "WAN backbone".into(),
        configs,
        env: Environment::none(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use batnet_routing::{simulate, SimOptions};

    #[test]
    fn wan_parses_and_converges() {
        let net = wan("t", 4, 6);
        assert_eq!(net.node_count(), 10);
        let devices = net.parse();
        // All devices are junos-parsed.
        assert!(devices.iter().all(|d| d.bgp.is_some()));
        let dp = simulate(&devices, &net.env, &SimOptions::default());
        assert!(dp.convergence.converged, "{:?}", dp.convergence);
        // Edge 0 must reach edge 3's customer subnet via iBGP over OSPF.
        let e0 = dp.device("edge0").unwrap();
        let (p, routes) = e0.main_rib.lookup("10.0.4.9".parse().unwrap()).expect("customer route");
        assert_eq!(p.to_string(), "10.0.4.0/24");
        assert_eq!(routes[0].protocol, batnet_config::vi::RouteProtocol::Ibgp);
    }

    #[test]
    fn p_routers_see_all_customers() {
        let net = wan("t", 3, 5);
        let devices = net.parse();
        let dp = simulate(&devices, &net.env, &SimOptions::default());
        let p0 = dp.device("p0").unwrap();
        for e in 0..5 {
            let ip: batnet_net::Ip = format!("10.0.{e}.9").parse().unwrap();
            assert!(
                p0.main_rib.lookup(ip).is_some(),
                "p0 missing customer {e}"
            );
        }
    }
}
