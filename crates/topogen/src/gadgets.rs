//! The paper's figure workloads: the non-deterministic-convergence
//! gadgets of Figure 1 and the example network of Figure 2.

use crate::GeneratedNetwork;
use batnet_net::Asn;
use batnet_routing::{Environment, ExternalAnnouncement};

/// Figure 1a: a routing pattern with *no* stable solution (a BGP
/// "bad gadget"). Three single-router ASes in a triangle, each also
/// connected to an origin AS announcing `10.0.0.0/8`; each router's
/// import policy prefers the route heard from its clockwise neighbor
/// (local-pref 200) over the direct path (default 100). Real BGP
/// oscillates forever; the engine must *detect and report*
/// non-convergence (§4.1.2).
pub fn fig1a() -> GeneratedNetwork {
    let mut configs = Vec::new();
    // r0 (AS 100) originates the prefix, links to r1, r2, r3.
    let mut r0 = String::from(
        "hostname r0\ninterface lan\n ip address 10.0.0.1/24\n",
    );
    let mut bgp0 = String::from("router bgp 100\n redistribute connected\n");
    for i in 1..=3u32 {
        r0.push_str(&format!(
            "interface to-r{i}\n ip address 172.31.{i}.0/31\n"
        ));
        bgp0.push_str(&format!(" neighbor 172.31.{i}.1 remote-as {}\n", 100 + i));
    }
    r0.push_str(&bgp0);
    configs.push(("r0".to_string(), r0));
    // r1..r3 in a ring; ri prefers routes via r_{i%3+1}.
    for i in 1..=3u32 {
        let next = i % 3 + 1; // clockwise neighbor
        let prev = (i + 1) % 3 + 1;
        let asn = 100 + i;
        let next_as = 100 + next;
        let prev_as = 100 + prev;
        let mut s = format!("hostname r{i}\n");
        s.push_str(&format!(
            "interface to-r0\n ip address 172.31.{i}.1/31\n"
        ));
        // Ring links: one between each pair; address by (min,max).
        let (a, b) = (i.min(next), i.max(next));
        s.push_str(&format!(
            "interface ring{a}{b}\n ip address 172.30.{a}{b}.{}/31\n",
            if i == a { 0 } else { 1 }
        ));
        let (a2, b2) = (i.min(prev), i.max(prev));
        s.push_str(&format!(
            "interface ring{a2}{b2}\n ip address 172.30.{a2}{b2}.{}/31\n",
            if i == a2 { 0 } else { 1 }
        ));
        s.push_str(&format!("router bgp {asn}\n"));
        s.push_str(&format!(" neighbor 172.31.{i}.0 remote-as 100\n"));
        let next_peer = format!("172.30.{}{}.{}", a, b, if i == a { 1 } else { 0 });
        let prev_peer = format!("172.30.{}{}.{}", a2, b2, if i == a2 { 1 } else { 0 });
        s.push_str(&format!(" neighbor {next_peer} remote-as {next_as}\n"));
        s.push_str(&format!(" neighbor {next_peer} route-map PREFER in\n"));
        s.push_str(&format!(" neighbor {prev_peer} remote-as {prev_as}\n"));
        // Prefer the clockwise neighbor's path — but only when it is the
        // neighbor's own direct path (2 hops: next_as then 100). Longer
        // paths through the ring fall through at default preference.
        s.push_str(&format!(
            "route-map PREFER permit 10\n match as-path regex ^{next_as} 100$\n set local-preference 200\nroute-map PREFER permit 20\n"
        ));
        configs.push((format!("r{i}"), s));
    }
    GeneratedNetwork {
        name: "fig1a".into(),
        kind: "convergence gadget (no stable solution)".into(),
        configs,
        env: Environment::none(),
    }
}

/// Figure 1b: the two-border re-advertisement loop. Both borders receive
/// `10.0.0.0/8` externally, peer over iBGP, and prefer internal routes
/// (import policy raises iBGP local-pref to 200). Lockstep simulation
/// oscillates: both export, both switch to the internal path, both
/// withdraw, repeat. The colored Gauss–Seidel schedule converges.
pub fn fig1b() -> GeneratedNetwork {
    let mut configs = Vec::new();
    let mut env = Environment::none();
    for (i, other) in [(0u32, 1u32), (1, 0)] {
        let mut s = format!("hostname border{i}\n");
        s.push_str(&format!(
            "interface lo0\n ip address 192.168.0.{}/32\n",
            i + 1
        ));
        s.push_str(&format!(
            "interface ibgp\n ip address 172.31.0.{i}/31\n"
        ));
        s.push_str(&format!(
            "interface ext\n ip address 203.0.113.{}/31\n",
            2 * i
        ));
        s.push_str("ip route 192.168.0.0/24 172.31.0.");
        s.push_str(&format!("{other}\n"));
        s.push_str(&format!("router bgp 65000\n bgp router-id 192.168.0.{}\n", i + 1));
        s.push_str(&format!(
            " neighbor 172.31.0.{other} remote-as 65000\n neighbor 172.31.0.{other} route-map IBGP-PREF in\n neighbor 172.31.0.{other} next-hop-self\n"
        ));
        s.push_str(&format!(
            " neighbor 203.0.113.{} remote-as 3356\n",
            2 * i + 1
        ));
        s.push_str("route-map IBGP-PREF permit 10\n set local-preference 200\n");
        configs.push((format!("border{i}"), s));
        env.announcements.push(ExternalAnnouncement::simple(
            format!("border{i}"),
            format!("203.0.113.{}", 2 * i + 1).parse().unwrap(),
            Asn(3356),
            "10.0.0.0/8".parse().unwrap(),
        ));
    }
    GeneratedNetwork {
        name: "fig1b".into(),
        kind: "convergence gadget (lockstep oscillation)".into(),
        configs,
        env,
    }
}

/// Figure 2: the paper's worked example — R1 with prefixes P1–P3 behind
/// R2/R3/local, an ssh-only ACL on R1.i3.
pub fn fig2() -> GeneratedNetwork {
    let configs = vec![
        (
            "r1".to_string(),
            "hostname r1\n\
             interface i0\n ip address 10.0.9.1/24\n\
             interface i1\n ip address 10.0.12.1/31\n\
             interface i2\n ip address 10.0.13.1/31\n\
             interface i3\n ip address 10.0.3.1/24\n ip access-group SSHONLY out\n\
             ip route 10.0.1.0/24 10.0.12.0\n\
             ip route 10.0.2.0/24 10.0.13.0\n\
             ip access-list extended SSHONLY\n 10 permit tcp any any eq 22\n"
                .to_string(),
        ),
        (
            "r2".to_string(),
            "hostname r2\n\
             interface i1\n ip address 10.0.12.0/31\n\
             interface lan\n ip address 10.0.1.1/24\n\
             ip route 10.0.9.0/24 10.0.12.1\nip route 10.0.3.0/24 10.0.12.1\n"
                .to_string(),
        ),
        (
            "r3".to_string(),
            "hostname r3\n\
             interface i2\n ip address 10.0.13.0/31\n\
             interface lan\n ip address 10.0.2.1/24\n\
             ip route 10.0.9.0/24 10.0.13.1\nip route 10.0.3.0/24 10.0.13.1\n"
                .to_string(),
        ),
    ];
    GeneratedNetwork {
        name: "fig2".into(),
        kind: "worked example".into(),
        configs,
        env: Environment::none(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use batnet_routing::{simulate, SchedulerMode, SimOptions};

    #[test]
    fn fig1a_detected_as_non_convergent() {
        let net = fig1a();
        let devices = net.parse();
        let opts = SimOptions {
            max_sweeps: 60,
            ..SimOptions::default()
        };
        let dp = simulate(&devices, &net.env, &opts);
        assert!(
            !dp.convergence.converged,
            "the bad gadget has no stable solution; engine must report it"
        );
        assert!(
            dp.convergence
                .unstable_prefixes
                .contains(&"10.0.0.0/24".parse().unwrap()),
            "{:?}",
            dp.convergence.unstable_prefixes
        );
    }

    #[test]
    fn fig1b_converges_colored_oscillates_lockstep() {
        let net = fig1b();
        let devices = net.parse();
        // Production mode: converges.
        let dp = simulate(&devices, &net.env, &SimOptions::default());
        assert!(dp.convergence.converged, "{:?}", dp.convergence);
        // Both borders must hold the external prefix.
        for b in ["border0", "border1"] {
            let d = dp.device(b).unwrap();
            assert!(
                d.main_rib.lookup("10.1.2.3".parse().unwrap()).is_some(),
                "{b} lost the prefix"
            );
        }
        // Lockstep (Jacobi) mode: oscillates, detected.
        let lockstep = SimOptions {
            scheduler: SchedulerMode::Lockstep,
            max_sweeps: 60,
            ..SimOptions::default()
        };
        let dp2 = simulate(&devices, &net.env, &lockstep);
        assert!(
            !dp2.convergence.converged,
            "lockstep must exhibit the Figure 1b re-advertisement loop"
        );
    }

    #[test]
    fn fig2_parses() {
        let net = fig2();
        let devices = net.parse();
        assert_eq!(devices.len(), 3);
        let dp = simulate(&devices, &net.env, &SimOptions::default());
        assert!(dp.convergence.converged);
    }
}
