//! Data-center generators: 2-tier leaf–spine and 3-tier pod fat-tree,
//! both all-eBGP (the standard modern DC design the paper's DC networks
//! run).
//!
//! Addressing plan (deterministic):
//! * leaf server subnets: `10.<pod>.<leaf>.0/24`;
//! * pod aggregates: `10.<pod>.0.0/16` (advertised by aggregation
//!   switches, which suppress leaf /24s towards the core — the policy
//!   pattern that keeps big fat-trees' RIBs bounded);
//! * point-to-point links: `172.16.0.0/12` carved into /31s;
//! * loopbacks: `192.168.<hi>.<lo>/32`.
//!
//! AS plan: cores share `65000`, each pod's aggregation switches share
//! `65100+pod`, each leaf gets `64512+leaf_index` — eBGP everywhere, the
//! classic RFC 7938 design.

use crate::GeneratedNetwork;
use batnet_routing::Environment;
use std::fmt::Write;

/// Allocates /31 link addresses sequentially from 172.16.0.0/12.
pub struct LinkAlloc {
    next: u32,
}

impl LinkAlloc {
    /// A fresh allocator.
    pub fn new() -> LinkAlloc {
        LinkAlloc {
            next: u32::from_be_bytes([172, 16, 0, 0]),
        }
    }

    /// An allocator starting at the given base (for networks composed of
    /// multiple generated parts that must not collide).
    pub fn starting_at(a: u8, b: u8) -> LinkAlloc {
        LinkAlloc {
            next: u32::from_be_bytes([a, b, 0, 0]),
        }
    }

    /// The two ends of the next /31.
    pub fn next_pair(&mut self) -> (String, String) {
        let a = self.next;
        self.next += 2;
        let lo = std::net::Ipv4Addr::from(a);
        let hi = std::net::Ipv4Addr::from(a + 1);
        (lo.to_string(), hi.to_string())
    }
}

impl Default for LinkAlloc {
    fn default() -> Self {
        LinkAlloc::new()
    }
}

struct Dev {
    name: String,
    asn: u32,
    interfaces: Vec<(String, String)>, // (iface name, "ip/len")
    neighbors: Vec<(String, u32, Option<(&'static str, &'static str)>)>, // (peer ip, peer as, (in,out) maps)
    networks: Vec<String>,
    statics: Vec<String>,
    acls: Vec<String>,
    route_maps: Vec<String>,
    extra: Vec<String>,
}

impl Dev {
    fn new(name: String, asn: u32) -> Dev {
        Dev {
            name,
            asn,
            interfaces: Vec::new(),
            neighbors: Vec::new(),
            networks: Vec::new(),
            statics: Vec::new(),
            acls: Vec::new(),
            route_maps: Vec::new(),
            extra: Vec::new(),
        }
    }

    fn render(&self) -> String {
        let mut s = String::new();
        writeln!(s, "hostname {}", self.name).unwrap();
        writeln!(s, "ntp server 192.168.255.1").unwrap();
        for (iface, addr) in &self.interfaces {
            writeln!(s, "interface {iface}").unwrap();
            writeln!(s, " ip address {addr}").unwrap();
        }
        for line in &self.statics {
            writeln!(s, "{line}").unwrap();
        }
        writeln!(s, "router bgp {}", self.asn).unwrap();
        for (peer, asn, maps) in &self.neighbors {
            writeln!(s, " neighbor {peer} remote-as {asn}").unwrap();
            if let Some((imap, emap)) = maps {
                if !imap.is_empty() {
                    writeln!(s, " neighbor {peer} route-map {imap} in").unwrap();
                }
                if !emap.is_empty() {
                    writeln!(s, " neighbor {peer} route-map {emap} out").unwrap();
                }
            }
        }
        for n in &self.networks {
            writeln!(s, " network {n}").unwrap();
        }
        for block in self.route_maps.iter().chain(&self.acls).chain(&self.extra) {
            s.push_str(block);
        }
        s
    }
}

/// The numbering plan of a leaf–spine instance, so multiple instances can
/// coexist in one snapshot (paired DCs).
pub struct DcPlan {
    /// Device name prefix ("", "a-", …).
    pub prefix: String,
    /// Spine AS.
    pub spine_as: u32,
    /// First leaf AS (leaf *i* gets `leaf_as_base + i`).
    pub leaf_as_base: u32,
    /// First octet pair of server subnets: `10.<subnet_base + l/256>.<l%256>.0/24`.
    pub subnet_base: usize,
    /// Link address space base (`<a>.<b>.0.0`).
    pub link_base: (u8, u8),
}

impl Default for DcPlan {
    fn default() -> Self {
        DcPlan {
            prefix: String::new(),
            spine_as: 65000,
            leaf_as_base: 64512,
            subnet_base: 0,
            link_base: (172, 16),
        }
    }
}

/// A 2-tier leaf–spine DC: every leaf peers with every spine; each leaf
/// advertises its server /24. Host-facing leaf ports carry a simple
/// server ACL so data-plane analyses have filters to reason about.
pub fn leaf_spine(name: &str, spines: usize, leafs: usize) -> GeneratedNetwork {
    leaf_spine_with(name, spines, leafs, &DcPlan::default())
}

/// [`leaf_spine`] with an explicit numbering plan.
pub fn leaf_spine_with(
    name: &str,
    spines: usize,
    leafs: usize,
    plan: &DcPlan,
) -> GeneratedNetwork {
    let mut links = LinkAlloc::starting_at(plan.link_base.0, plan.link_base.1);
    let mut devices: Vec<Dev> = Vec::new();
    let p = &plan.prefix;
    for s in 0..spines {
        devices.push(Dev::new(format!("{p}spine{s}"), plan.spine_as));
    }
    for l in 0..leafs {
        let mut leaf = Dev::new(format!("{p}leaf{l}"), plan.leaf_as_base + l as u32);
        let subnet = format!("10.{}.{}", plan.subnet_base + l / 256, l % 256);
        leaf.interfaces
            .push(("servers".into(), format!("{subnet}.1/24")));
        leaf.networks.push(format!("{subnet}.0/24"));
        // The server-port ACL: allow web+dns+established, deny the rest.
        leaf.acls.push(
            "ip access-list extended SERVERS\n 10 permit tcp any any eq 80\n 20 permit tcp any any eq 443\n 30 permit udp any any eq 53\n 40 permit tcp any any established\n 50 permit icmp any any\n 60 deny ip any any\n".to_string(),
        );
        devices.push(leaf);
    }
    // Wire every leaf to every spine.
    for l in 0..leafs {
        for s in 0..spines {
            let (lo, hi) = links.next_pair();
            let leaf_as = plan.leaf_as_base + l as u32;
            let iface_leaf = format!("swp{s}");
            let iface_spine = format!("swp{l}");
            // leaf side gets lo, spine side hi.
            let leaf = &mut devices[spines + l];
            leaf.interfaces.push((iface_leaf, format!("{lo}/31")));
            leaf.neighbors.push((hi.clone(), plan.spine_as, None));
            let spine = &mut devices[s];
            spine.interfaces.push((iface_spine, format!("{hi}/31")));
            spine.neighbors.push((lo, leaf_as, None));
        }
    }
    // Render, injecting the ACL attachment on leaf server ports.
    let configs = devices
        .iter()
        .map(|d| {
            let mut text = d.render();
            if d.name.contains("leaf") {
                text = text.replacen(
                    "interface servers\n ip address",
                    "interface servers\n ip access-group SERVERS in\n ip address",
                    1,
                );
            }
            (d.name.clone(), text)
        })
        .collect();
    GeneratedNetwork {
        name: name.to_string(),
        kind: "DC (leaf-spine)".into(),
        configs,
        env: Environment::none(),
    }
}

/// A 3-tier pod fat-tree with route aggregation at the pod layer: leafs
/// advertise /24s to their pod aggs; aggs advertise the pod /16 to cores
/// and suppress the specifics (prefix-list + route-map export policy).
pub fn fat_tree(
    name: &str,
    cores: usize,
    pods: usize,
    aggs_per_pod: usize,
    leafs_per_pod: usize,
) -> GeneratedNetwork {
    assert!(pods <= 200 && leafs_per_pod <= 250, "addressing plan limits");
    let mut links = LinkAlloc::new();
    let mut devices: Vec<Dev> = Vec::new();
    // Cores first.
    for c in 0..cores {
        devices.push(Dev::new(format!("core{c}"), 65000));
    }
    // Pods: aggs then leafs, tracked by index math.
    let agg_index = |p: usize, a: usize| cores + p * (aggs_per_pod + leafs_per_pod) + a;
    let leaf_index =
        |p: usize, l: usize| cores + p * (aggs_per_pod + leafs_per_pod) + aggs_per_pod + l;
    for p in 0..pods {
        for a in 0..aggs_per_pod {
            let mut agg = Dev::new(format!("agg{p}-{a}"), 65100 + p as u32);
            // The pod aggregate: a discard static plus a network
            // statement; the export map towards cores suppresses leaf
            // specifics.
            agg.statics.push(format!("ip route 10.{p}.0.0/16 null0 250"));
            agg.networks.push(format!("10.{p}.0.0/16"));
            agg.route_maps.push(format!(
                "ip prefix-list POD-AGG seq 5 permit 10.{p}.0.0/16\nroute-map TO-CORE permit 10\n match ip address prefix-list POD-AGG\nroute-map TO-CORE deny 99\n"
            ));
            devices.push(agg);
        }
        for l in 0..leafs_per_pod {
            let mut leaf = Dev::new(format!("leaf{p}-{l}"), 64512 + (p * 256 + l) as u32);
            leaf.interfaces
                .push(("servers".into(), format!("10.{p}.{l}.1/24")));
            leaf.networks.push(format!("10.{p}.{l}.0/24"));
            devices.push(leaf);
        }
    }
    // Wiring: leafs ↔ pod aggs.
    for p in 0..pods {
        for l in 0..leafs_per_pod {
            for a in 0..aggs_per_pod {
                let (lo, hi) = links.next_pair();
                let leaf_as = 64512 + (p * 256 + l) as u32;
                let agg_as = 65100 + p as u32;
                let li = leaf_index(p, l);
                let ai = agg_index(p, a);
                devices[li].interfaces.push((format!("up{a}"), format!("{lo}/31")));
                devices[li].neighbors.push((hi.clone(), agg_as, None));
                devices[ai]
                    .interfaces
                    .push((format!("down{l}"), format!("{hi}/31")));
                devices[ai].neighbors.push((lo, leaf_as, None));
            }
        }
        // Pod aggs ↔ cores, with the aggregate-only export map.
        for a in 0..aggs_per_pod {
            for c in 0..cores {
                let (lo, hi) = links.next_pair();
                let agg_as = 65100 + p as u32;
                let ai = agg_index(p, a);
                devices[ai].interfaces.push((format!("up{c}"), format!("{lo}/31")));
                devices[ai]
                    .neighbors
                    .push((hi.clone(), 65000, Some(("", "TO-CORE"))));
                devices[c]
                    .interfaces
                    .push((format!("pod{p}a{a}"), format!("{hi}/31")));
                devices[c].neighbors.push((lo, agg_as, None));
            }
        }
    }
    let configs = devices.iter().map(|d| (d.name.clone(), d.render())).collect();
    GeneratedNetwork {
        name: name.to_string(),
        kind: "DC (fat-tree)".into(),
        configs,
        env: Environment::none(),
    }
}

/// Two leaf–spine DCs joined by a pair of border routers — the paper's
/// "paired DCs that provide backup connectivity to each other". The two
/// sites use disjoint AS plans so routes cross cleanly.
pub fn paired_dcs(name: &str, spines: usize, leafs: usize) -> GeneratedNetwork {
    let a = leaf_spine_with(
        "dcA",
        spines,
        leafs,
        &DcPlan {
            prefix: "a-".into(),
            spine_as: 65000,
            leaf_as_base: 64512,
            subnet_base: 0,
            link_base: (172, 16),
        },
    );
    let b = leaf_spine_with(
        "dcB",
        spines,
        leafs,
        &DcPlan {
            prefix: "b-".into(),
            spine_as: 65010,
            leaf_as_base: 60000,
            subnet_base: 100,
            link_base: (172, 24),
        },
    );
    let mut configs: Vec<(String, String)> = Vec::new();
    configs.extend(a.configs);
    configs.extend(b.configs);
    // Border routers: each eBGP-peers with every spine of its DC and with
    // the opposite border.
    let mut border_a = Dev::new("border-a".into(), 65201);
    let mut border_b = Dev::new("border-b".into(), 65202);
    let mut link = LinkAlloc::starting_at(172, 30);
    for s in 0..spines {
        let (lo, hi) = link.next_pair();
        border_a.interfaces.push((format!("dc{s}"), format!("{lo}/31")));
        border_a.neighbors.push((hi.clone(), 65000, None));
        configs[s].1.push_str(&format!(
            "interface border\n ip address {hi}/31\nrouter bgp 65000\n neighbor {lo} remote-as 65201\n"
        ));
        let (lo2, hi2) = link.next_pair();
        border_b.interfaces.push((format!("dc{s}"), format!("{lo2}/31")));
        border_b.neighbors.push((hi2.clone(), 65010, None));
        configs[leafs + spines + s].1.push_str(&format!(
            "interface border\n ip address {hi2}/31\nrouter bgp 65010\n neighbor {lo2} remote-as 65202\n"
        ));
    }
    let (lo, hi) = link.next_pair();
    border_a.interfaces.push(("xconn".into(), format!("{lo}/31")));
    border_a.neighbors.push((hi.clone(), 65202, None));
    border_b.interfaces.push(("xconn".into(), format!("{hi}/31")));
    border_b.neighbors.push((lo, 65201, None));
    configs.push((border_a.name.clone(), border_a.render()));
    configs.push((border_b.name.clone(), border_b.render()));
    GeneratedNetwork {
        name: name.to_string(),
        kind: "paired DCs".into(),
        configs,
        env: Environment::none(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use batnet_config::Topology;
    use batnet_routing::{simulate, SimOptions};

    #[test]
    fn leaf_spine_parses_and_converges() {
        let net = leaf_spine("t", 3, 6);
        assert_eq!(net.node_count(), 9);
        let devices = net.parse();
        let dp = simulate(&devices, &net.env, &SimOptions::default());
        assert!(dp.convergence.converged, "{:?}", dp.convergence);
        // Every leaf learns every other leaf's /24.
        let leaf0 = dp.device("leaf0").unwrap();
        for l in 1..6 {
            let ip = format!("10.0.{l}.9").parse().unwrap();
            let hit = leaf0.main_rib.lookup(ip);
            assert!(hit.is_some(), "leaf0 missing route to leaf{l}");
        }
        // ECMP across spines.
        let (_, routes) = leaf0.main_rib.lookup("10.0.3.9".parse().unwrap()).unwrap();
        assert_eq!(routes.len(), 3, "one path per spine");
    }

    #[test]
    fn fat_tree_aggregates_at_pods() {
        let net = fat_tree("t", 2, 2, 2, 3);
        assert_eq!(net.node_count(), 2 + 2 * (2 + 3));
        let devices = net.parse();
        let dp = simulate(&devices, &net.env, &SimOptions::default());
        assert!(dp.convergence.converged);
        // A core must hold pod aggregates but NOT leaf /24s.
        let core = dp.device("core0").unwrap();
        let agg: Vec<_> = core
            .main_rib
            .iter_best()
            .map(|(p, _)| p.to_string())
            .collect();
        assert!(agg.iter().any(|p| p == "10.0.0.0/16"), "{agg:?}");
        assert!(agg.iter().any(|p| p == "10.1.0.0/16"));
        assert!(
            !agg.iter().any(|p| p.ends_with("/24") && p.starts_with("10.")),
            "leaf specifics must be suppressed at cores: {agg:?}"
        );
        // Cross-pod traffic still routes: leaf in pod 0 reaches pod 1.
        let leaf = dp.device("leaf0-0").unwrap();
        assert!(leaf.main_rib.lookup("10.1.2.9".parse().unwrap()).is_some());
    }

    #[test]
    fn paired_dcs_cross_reachability() {
        let net = paired_dcs("t", 2, 3);
        assert_eq!(net.node_count(), 2 * 5 + 2);
        let devices = net.parse();
        let topo = Topology::infer(&devices);
        assert!(topo.edge_count() > 0);
        let dp = simulate(&devices, &net.env, &SimOptions::default());
        assert!(dp.convergence.converged);
        // A leaf in DC A reaches a subnet in DC B (which lives in
        // 10.100+).
        let leaf = dp.device("a-leaf0").unwrap();
        assert!(
            leaf.main_rib.lookup("10.100.1.9".parse().unwrap()).is_some(),
            "cross-DC route must exist"
        );
    }

    #[test]
    fn generation_is_deterministic() {
        let a = leaf_spine("t", 3, 6);
        let b = leaf_spine("t", 3, 6);
        assert_eq!(a.configs, b.configs);
    }
}
