//! # batnet-net — shared networking vocabulary for the batnet workspace
//!
//! This crate holds the primitive types that every other batnet crate speaks:
//! IPv4 addresses and prefixes, transport headers, concrete flows, header
//! spaces (sets of packets described by per-field ranges), BGP vocabulary
//! (AS numbers, communities, AS paths), and the interning pools used by the
//! route simulation engine to shrink its memory footprint (§4.1.3 of the
//! paper: *"we intern IP addresses, IP prefixes, BGP communities, and more
//! complex routing attributes"*).
//!
//! Everything here is `std`-only, deterministic, and free of I/O.

pub mod backoff;
pub mod bgp;
pub mod governor;
pub mod headers;
pub mod headerspace;
pub mod intern;
pub mod ip;
pub mod rng;

pub use backoff::Backoff;
pub use bgp::{AsPath, Asn, Community};
pub use governor::{Exhaustion, Limit, Outcome, ResourceGovernor};
pub use headers::{Flow, IpProtocol, PortRange, TcpFlags};
pub use headerspace::HeaderSpace;
pub use intern::{InternStats, Interned, Interner};
pub use ip::{Ip, IpRange, Prefix};
pub use rng::Rng;
