//! Interning pools — the §4.1.3 memory optimization.
//!
//! The paper: *"Batfish requires only a small fraction of the total memory
//! capacity of the routers it simulates because it leverages the single
//! [simulation] process to intern common objects. The number of unique
//! values for routing attributes is orders of magnitude lower than the
//! total number of routes."*
//!
//! [`Interner<T>`] deduplicates values behind `Arc`s. [`Interned<T>`]
//! compares and hashes by *pointer*, which turns the deep equality checks
//! the BGP decision process performs (AS paths, community sets, whole
//! attribute bundles) into single pointer comparisons — the paper notes
//! interning "also speed[s] up equality checks".
//!
//! The pool also keeps the statistics ([`InternStats`]) that the A-2
//! ablation experiment reports: total requests vs. unique values, and an
//! estimate of bytes saved.

use std::collections::HashMap;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::Deref;
use std::sync::{Arc, Mutex};

/// A handle to an interned value. Clone is an `Arc` bump; `Eq`/`Hash`/`Ord`
/// consider two handles from the *same pool* equal iff they point at the
/// same allocation.
pub struct Interned<T>(Arc<T>);

impl<T> Interned<T> {
    /// Raw pointer identity, exposed for diagnostics and for deterministic
    /// tie-free hashing structures.
    pub fn as_ptr(&self) -> *const T {
        Arc::as_ptr(&self.0)
    }
}

impl<T> Clone for Interned<T> {
    fn clone(&self) -> Self {
        Interned(Arc::clone(&self.0))
    }
}

impl<T> Deref for Interned<T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T> PartialEq for Interned<T> {
    fn eq(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.0, &other.0)
    }
}

impl<T> Eq for Interned<T> {}

impl<T> Hash for Interned<T> {
    fn hash<H: Hasher>(&self, state: &mut H) {
        (Arc::as_ptr(&self.0) as usize).hash(state);
    }
}

/// Ordering delegates to the underlying value so that interned routes can
/// participate in the deterministic orderings the engine depends on
/// (pointer order would vary run to run).
impl<T: Ord> PartialOrd for Interned<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl<T: Ord> Ord for Interned<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        if Arc::ptr_eq(&self.0, &other.0) {
            std::cmp::Ordering::Equal
        } else {
            self.0.as_ref().cmp(other.0.as_ref())
        }
    }
}

impl<T: fmt::Debug> fmt::Debug for Interned<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.as_ref().fmt(f)
    }
}

impl<T: fmt::Display> fmt::Display for Interned<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.as_ref().fmt(f)
    }
}

/// Statistics from an interning pool, used by the memory ablation (A-2).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct InternStats {
    /// Number of `intern` calls.
    pub requests: u64,
    /// Number of distinct values stored.
    pub unique: u64,
}

impl InternStats {
    /// Sharing factor: how many requests each unique value served. The
    /// paper reports 10×–20× for BGP attribute bundles.
    pub fn sharing_factor(&self) -> f64 {
        if self.unique == 0 {
            0.0
        } else {
            self.requests as f64 / self.unique as f64
        }
    }

    /// Estimated bytes saved given the per-value payload size: every
    /// deduplicated request would otherwise have carried its own copy.
    pub fn bytes_saved(&self, value_size: usize) -> u64 {
        (self.requests - self.unique) * value_size as u64
    }
}

/// A thread-safe deduplicating pool.
///
/// A `Mutex<HashMap>` is deliberate: interning happens on the route-update
/// path where contention is low (each worker mostly touches routes it
/// created), and the simple structure keeps behaviour deterministic and
/// easy to reason about — the smoltcp-style "simplicity over cleverness"
/// trade.
pub struct Interner<T: Eq + Hash> {
    pool: Mutex<PoolInner<T>>,
}

struct PoolInner<T> {
    map: HashMap<Arc<T>, ()>,
    stats: InternStats,
}

impl<T: Eq + Hash> Default for Interner<T> {
    fn default() -> Self {
        Interner::new()
    }
}

impl<T: Eq + Hash> Interner<T> {
    /// Creates an empty pool.
    pub fn new() -> Interner<T> {
        Interner {
            pool: Mutex::new(PoolInner {
                map: HashMap::new(),
                stats: InternStats::default(),
            }),
        }
    }

    /// Returns the canonical handle for `value`, inserting it on first
    /// sight.
    pub fn intern(&self, value: T) -> Interned<T> {
        let mut pool = self.pool.lock().expect("interner poisoned");
        pool.stats.requests += 1;
        if let Some((existing, ())) = pool.map.get_key_value(&value) {
            return Interned(Arc::clone(existing));
        }
        let arc = Arc::new(value);
        pool.map.insert(Arc::clone(&arc), ());
        pool.stats.unique += 1;
        Interned(arc)
    }

    /// Current statistics snapshot.
    pub fn stats(&self) -> InternStats {
        self.pool.lock().expect("interner poisoned").stats
    }

    /// Number of distinct values currently stored.
    pub fn len(&self) -> usize {
        self.pool.lock().expect("interner poisoned").map.len()
    }

    /// True when the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bgp::{AsPath, Asn};

    #[test]
    fn interning_dedups() {
        let pool: Interner<AsPath> = Interner::new();
        let a = pool.intern(AsPath(vec![Asn(1), Asn(2)]));
        let b = pool.intern(AsPath(vec![Asn(1), Asn(2)]));
        let c = pool.intern(AsPath(vec![Asn(3)]));
        assert_eq!(a, b);
        assert_eq!(a.as_ptr(), b.as_ptr());
        assert_ne!(a, c);
        assert_eq!(pool.len(), 2);
        let stats = pool.stats();
        assert_eq!(stats.requests, 3);
        assert_eq!(stats.unique, 2);
        assert!((stats.sharing_factor() - 1.5).abs() < 1e-9);
    }

    #[test]
    fn interned_ord_is_value_ord() {
        let pool: Interner<u32> = Interner::new();
        let one = pool.intern(1);
        let two = pool.intern(2);
        assert!(one < two);
        assert_eq!(one.cmp(&pool.intern(1)), std::cmp::Ordering::Equal);
    }

    #[test]
    fn bytes_saved_accounting() {
        let pool: Interner<[u8; 88]> = Interner::new();
        for _ in 0..100 {
            pool.intern([7u8; 88]);
        }
        let stats = pool.stats();
        assert_eq!(stats.unique, 1);
        // 99 duplicate requests at 88 bytes each (the paper's per-route
        // figure for the moved properties).
        assert_eq!(stats.bytes_saved(88), 99 * 88);
    }

    #[test]
    fn concurrent_interning_is_consistent() {
        let pool: Interner<u64> = Interner::new();
        std::thread::scope(|s| {
            for t in 0..8 {
                let pool = &pool;
                s.spawn(move || {
                    for i in 0..1000u64 {
                        let h = pool.intern(i % 50 + t % 2);
                        assert_eq!(*h, i % 50 + t % 2);
                    }
                });
            }
        });
        assert!(pool.len() <= 51);
        assert_eq!(pool.stats().requests, 8000);
    }

    #[test]
    fn deref_exposes_value() {
        let pool: Interner<String> = Interner::new();
        let s = pool.intern("hello".to_string());
        assert_eq!(s.len(), 5);
        assert_eq!(&*s, "hello");
        assert_eq!(format!("{s}"), "hello");
    }
}
