//! Transport-layer header vocabulary and concrete flows.
//!
//! A [`Flow`] is the concrete-packet counterpart of the symbolic packet sets
//! the BDD engine manipulates: a fully specified header plus a starting
//! location. The traceroute engine (the paper's concrete engine, §4.3.2)
//! consumes flows, and the differential-testing framework converts between
//! flows and BDD models.

use crate::ip::Ip;
use std::fmt;

/// IP protocol numbers used throughout batnet.
///
/// Only the protocols that appear in device configurations get names; any
/// other 8-bit value is representable via [`IpProtocol::Other`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum IpProtocol {
    /// ICMP (1).
    Icmp,
    /// TCP (6).
    Tcp,
    /// UDP (17).
    Udp,
    /// GRE (47).
    Gre,
    /// ESP (50).
    Esp,
    /// OSPF (89).
    Ospf,
    /// Any other protocol number.
    Other(u8),
}

impl IpProtocol {
    /// The wire protocol number.
    pub fn number(self) -> u8 {
        match self {
            IpProtocol::Icmp => 1,
            IpProtocol::Tcp => 6,
            IpProtocol::Udp => 17,
            IpProtocol::Gre => 47,
            IpProtocol::Esp => 50,
            IpProtocol::Ospf => 89,
            IpProtocol::Other(n) => n,
        }
    }

    /// Canonicalizes a wire number into the named variant when one exists.
    pub fn from_number(n: u8) -> IpProtocol {
        match n {
            1 => IpProtocol::Icmp,
            6 => IpProtocol::Tcp,
            17 => IpProtocol::Udp,
            47 => IpProtocol::Gre,
            50 => IpProtocol::Esp,
            89 => IpProtocol::Ospf,
            other => IpProtocol::Other(other),
        }
    }

    /// Does this protocol carry TCP/UDP-style port numbers?
    pub fn has_ports(self) -> bool {
        matches!(self, IpProtocol::Tcp | IpProtocol::Udp)
    }

    /// Parses the keyword used in config dialects (`tcp`, `udp`, `icmp`,
    /// `ip` meaning any, or a raw number).
    pub fn parse_keyword(s: &str) -> Option<Option<IpProtocol>> {
        match s {
            "ip" | "any" => Some(None),
            "icmp" => Some(Some(IpProtocol::Icmp)),
            "tcp" => Some(Some(IpProtocol::Tcp)),
            "udp" => Some(Some(IpProtocol::Udp)),
            "gre" => Some(Some(IpProtocol::Gre)),
            "esp" => Some(Some(IpProtocol::Esp)),
            "ospf" => Some(Some(IpProtocol::Ospf)),
            _ => s.parse::<u8>().ok().map(|n| Some(IpProtocol::from_number(n))),
        }
    }
}

impl fmt::Display for IpProtocol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IpProtocol::Icmp => write!(f, "icmp"),
            IpProtocol::Tcp => write!(f, "tcp"),
            IpProtocol::Udp => write!(f, "udp"),
            IpProtocol::Gre => write!(f, "gre"),
            IpProtocol::Esp => write!(f, "esp"),
            IpProtocol::Ospf => write!(f, "ospf"),
            IpProtocol::Other(n) => write!(f, "proto-{n}"),
        }
    }
}

/// TCP flag bits, in wire order. Stored as a `u8` bitmask.
///
/// The paper's Lesson 4 examples involve firewalls matching on SYN/ACK
/// combinations (established-session heuristics), so flags are first-class
/// in both engines.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct TcpFlags(pub u8);

impl TcpFlags {
    /// FIN flag.
    pub const FIN: TcpFlags = TcpFlags(0x01);
    /// SYN flag.
    pub const SYN: TcpFlags = TcpFlags(0x02);
    /// RST flag.
    pub const RST: TcpFlags = TcpFlags(0x04);
    /// PSH flag.
    pub const PSH: TcpFlags = TcpFlags(0x08);
    /// ACK flag.
    pub const ACK: TcpFlags = TcpFlags(0x10);
    /// URG flag.
    pub const URG: TcpFlags = TcpFlags(0x20);

    /// No flags set.
    pub const EMPTY: TcpFlags = TcpFlags(0);

    /// Set union of the two flag sets.
    pub fn union(self, other: TcpFlags) -> TcpFlags {
        TcpFlags(self.0 | other.0)
    }

    /// True if every flag in `other` is also set in `self`.
    pub fn contains(self, other: TcpFlags) -> bool {
        self.0 & other.0 == other.0
    }

    /// The value of bit `i` (0 = FIN, following wire order).
    pub fn bit(self, i: u8) -> bool {
        debug_assert!(i < 8);
        (self.0 >> i) & 1 == 1
    }

    /// "Established" in the classic ACL sense: ACK or RST set.
    pub fn is_established(self) -> bool {
        self.0 & (Self::ACK.0 | Self::RST.0) != 0
    }
}

impl fmt::Debug for TcpFlags {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "TcpFlags(")?;
        let names = [
            (Self::FIN, "FIN"),
            (Self::SYN, "SYN"),
            (Self::RST, "RST"),
            (Self::PSH, "PSH"),
            (Self::ACK, "ACK"),
            (Self::URG, "URG"),
        ];
        let mut first = true;
        for (flag, name) in names {
            if self.contains(flag) {
                if !first {
                    write!(f, "|")?;
                }
                write!(f, "{name}")?;
                first = false;
            }
        }
        if first {
            write!(f, "-")?;
        }
        write!(f, ")")
    }
}

impl fmt::Display for TcpFlags {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// An inclusive range of 16-bit port numbers.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct PortRange {
    /// Lowest port in the range.
    pub start: u16,
    /// Highest port in the range (inclusive).
    pub end: u16,
}

impl PortRange {
    /// All 65536 ports.
    pub const FULL: PortRange = PortRange { start: 0, end: u16::MAX };

    /// A range containing exactly one port.
    pub fn single(p: u16) -> PortRange {
        PortRange { start: p, end: p }
    }

    /// Creates the range `[start, end]`; panics if reversed (config parsers
    /// validate before constructing).
    pub fn new(start: u16, end: u16) -> PortRange {
        assert!(start <= end, "reversed port range {start}..{end}");
        PortRange { start, end }
    }

    /// Is `p` inside?
    pub fn contains(self, p: u16) -> bool {
        self.start <= p && p <= self.end
    }

    /// Number of ports covered.
    pub fn size(self) -> u32 {
        (self.end as u32) - (self.start as u32) + 1
    }

    /// Intersection, or `None` if disjoint.
    pub fn intersect(self, other: PortRange) -> Option<PortRange> {
        let start = self.start.max(other.start);
        let end = self.end.min(other.end);
        (start <= end).then_some(PortRange { start, end })
    }

    /// Decompose into maximal aligned power-of-two blocks `(value, prefix
    /// length)` — the port analogue of [`crate::IpRange::to_prefixes`],
    /// used by the BDD encoders.
    pub fn to_masked_blocks(self) -> Vec<(u16, u8)> {
        let mut out = Vec::new();
        let mut cur = self.start as u32;
        let end = self.end as u32;
        while cur <= end {
            let align = if cur == 0 { 16 } else { cur.trailing_zeros().min(16) };
            let span = 32 - (end - cur + 1).leading_zeros() - 1;
            let bits = align.min(span);
            out.push((cur as u16, 16 - bits as u8));
            cur += 1u32 << bits;
        }
        out
    }
}

/// A concrete packet header: the unit of work for the traceroute engine.
///
/// Port fields are meaningful only when `protocol.has_ports()`; ICMP fields
/// only for ICMP. The unused fields are kept at zero so `Flow` equality is
/// well-defined regardless.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Flow {
    /// Source IPv4 address.
    pub src_ip: Ip,
    /// Destination IPv4 address.
    pub dst_ip: Ip,
    /// IP protocol.
    pub protocol: IpProtocol,
    /// TCP/UDP source port (0 when not applicable).
    pub src_port: u16,
    /// TCP/UDP destination port (0 when not applicable).
    pub dst_port: u16,
    /// ICMP type (0 when not applicable).
    pub icmp_type: u8,
    /// ICMP code (0 when not applicable).
    pub icmp_code: u8,
    /// TCP flags (empty when not TCP).
    pub tcp_flags: TcpFlags,
}

impl Flow {
    /// A TCP flow with SYN set — the paper's default "interesting" packet
    /// for reachability examples (§4.4.3 prioritizes common protocols).
    pub fn tcp(src_ip: Ip, src_port: u16, dst_ip: Ip, dst_port: u16) -> Flow {
        Flow {
            src_ip,
            dst_ip,
            protocol: IpProtocol::Tcp,
            src_port,
            dst_port,
            icmp_type: 0,
            icmp_code: 0,
            tcp_flags: TcpFlags::SYN,
        }
    }

    /// A UDP flow.
    pub fn udp(src_ip: Ip, src_port: u16, dst_ip: Ip, dst_port: u16) -> Flow {
        Flow {
            src_ip,
            dst_ip,
            protocol: IpProtocol::Udp,
            src_port,
            dst_port,
            icmp_type: 0,
            icmp_code: 0,
            tcp_flags: TcpFlags::EMPTY,
        }
    }

    /// An ICMP echo request ("ping").
    pub fn icmp_echo(src_ip: Ip, dst_ip: Ip) -> Flow {
        Flow {
            src_ip,
            dst_ip,
            protocol: IpProtocol::Icmp,
            src_port: 0,
            dst_port: 0,
            icmp_type: 8,
            icmp_code: 0,
            tcp_flags: TcpFlags::EMPTY,
        }
    }

    /// The flow of the return direction: endpoints and ports swapped, and
    /// for TCP the SYN→SYN/ACK transition applied. Used by bidirectional
    /// reachability analysis (§4.2.3).
    pub fn reverse(&self) -> Flow {
        let tcp_flags = if self.protocol == IpProtocol::Tcp {
            TcpFlags::SYN.union(TcpFlags::ACK)
        } else {
            TcpFlags::EMPTY
        };
        Flow {
            src_ip: self.dst_ip,
            dst_ip: self.src_ip,
            src_port: self.dst_port,
            dst_port: self.src_port,
            protocol: self.protocol,
            icmp_type: if self.protocol == IpProtocol::Icmp { 0 } else { 0 },
            icmp_code: 0,
            tcp_flags,
        }
    }
}

impl fmt::Display for Flow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.protocol {
            IpProtocol::Tcp | IpProtocol::Udp => write!(
                f,
                "{} {}:{} -> {}:{}{}",
                self.protocol,
                self.src_ip,
                self.src_port,
                self.dst_ip,
                self.dst_port,
                if self.protocol == IpProtocol::Tcp {
                    format!(" {}", self.tcp_flags)
                } else {
                    String::new()
                }
            ),
            IpProtocol::Icmp => write!(
                f,
                "icmp {} -> {} type {} code {}",
                self.src_ip, self.dst_ip, self.icmp_type, self.icmp_code
            ),
            p => write!(f, "{} {} -> {}", p, self.src_ip, self.dst_ip),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn protocol_numbers_roundtrip() {
        for n in 0..=255u8 {
            assert_eq!(IpProtocol::from_number(n).number(), n);
        }
    }

    #[test]
    fn protocol_keywords() {
        assert_eq!(IpProtocol::parse_keyword("ip"), Some(None));
        assert_eq!(IpProtocol::parse_keyword("tcp"), Some(Some(IpProtocol::Tcp)));
        assert_eq!(
            IpProtocol::parse_keyword("89"),
            Some(Some(IpProtocol::Ospf))
        );
        assert_eq!(IpProtocol::parse_keyword("bogus"), None);
    }

    #[test]
    fn tcp_flags_ops() {
        let f = TcpFlags::SYN.union(TcpFlags::ACK);
        assert!(f.contains(TcpFlags::SYN));
        assert!(f.contains(TcpFlags::ACK));
        assert!(!f.contains(TcpFlags::FIN));
        assert!(f.is_established());
        assert!(!TcpFlags::SYN.is_established());
        assert!(TcpFlags::RST.is_established());
        assert_eq!(format!("{f}"), "TcpFlags(SYN|ACK)");
        assert_eq!(format!("{}", TcpFlags::EMPTY), "TcpFlags(-)");
    }

    #[test]
    fn tcp_flag_bits() {
        assert!(TcpFlags::FIN.bit(0));
        assert!(TcpFlags::SYN.bit(1));
        assert!(TcpFlags::ACK.bit(4));
        assert!(!TcpFlags::ACK.bit(0));
    }

    #[test]
    fn port_range_blocks_cover_exactly() {
        let r = PortRange::new(1000, 2047);
        let blocks = r.to_masked_blocks();
        let total: u32 = blocks.iter().map(|&(_, len)| 1u32 << (16 - len)).sum();
        assert_eq!(total, r.size());
        // Every block must sit inside the range.
        for &(v, len) in &blocks {
            let size = 1u32 << (16 - len);
            assert!(v as u32 >= r.start as u32);
            assert!(v as u32 + size - 1 <= r.end as u32);
        }
    }

    #[test]
    fn port_range_full() {
        assert_eq!(PortRange::FULL.to_masked_blocks(), vec![(0, 0)]);
        assert_eq!(PortRange::FULL.size(), 65536);
    }

    #[test]
    fn port_range_intersect() {
        let a = PortRange::new(100, 200);
        let b = PortRange::new(150, 300);
        assert_eq!(a.intersect(b), Some(PortRange::new(150, 200)));
        assert_eq!(a.intersect(PortRange::new(201, 300)), None);
    }

    #[test]
    fn flow_reverse_swaps_endpoints() {
        let f = Flow::tcp("10.0.0.1".parse().unwrap(), 40000, "10.0.1.1".parse().unwrap(), 443);
        let r = f.reverse();
        assert_eq!(r.src_ip, f.dst_ip);
        assert_eq!(r.dst_port, f.src_port);
        assert!(r.tcp_flags.contains(TcpFlags::ACK));
    }

    #[test]
    fn flow_display_forms() {
        let f = Flow::udp("1.2.3.4".parse().unwrap(), 53, "5.6.7.8".parse().unwrap(), 5353);
        assert_eq!(f.to_string(), "udp 1.2.3.4:53 -> 5.6.7.8:5353");
        let p = Flow::icmp_echo("1.1.1.1".parse().unwrap(), "2.2.2.2".parse().unwrap());
        assert!(p.to_string().contains("type 8"));
    }
}
