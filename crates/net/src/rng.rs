//! A tiny deterministic PRNG (SplitMix64).
//!
//! The workspace builds with no external crates, so the chaos-injection
//! harness and the randomized tests that used to sit on `proptest`/`rand`
//! share this generator instead. SplitMix64 passes BigCrush for our
//! purposes (picking victims, shuffling lines, generating probe flows) and
//! — the property that actually matters here — is *seeded and
//! reproducible*: every chaos failure report prints the seed that
//! reproduces it.

/// SplitMix64: one `u64` of state, sequence fully determined by the seed.
#[derive(Clone, Debug)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Creates a generator from a seed. Equal seeds give equal sequences.
    pub fn new(seed: u64) -> Rng {
        Rng { state: seed }
    }

    /// Next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Next 32 uniformly random bits.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform value in `[0, bound)`. `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        // Multiply-shift rejection-free mapping; bias is < 2^-32 for the
        // small bounds used here.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform index into a slice of length `len` (`len > 0`).
    pub fn index(&mut self, len: usize) -> usize {
        self.below(len as u64) as usize
    }

    /// Uniform value in the inclusive range `[lo, hi]`.
    pub fn range_u32(&mut self, lo: u32, hi: u32) -> u32 {
        lo + self.below((hi - lo + 1) as u64) as u32
    }

    /// A coin flip with probability `num/den` of `true`.
    pub fn chance(&mut self, num: u64, den: u64) -> bool {
        self.below(den) < num
    }

    /// Random bool.
    pub fn flip(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// Picks one element of a non-empty slice.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.index(items.len())]
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.index(i + 1);
            items.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<u64> = {
            let mut r = Rng::new(42);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = Rng::new(42);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        let c: Vec<u64> = {
            let mut r = Rng::new(43);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_ne!(a, c);
    }

    #[test]
    fn below_stays_in_bounds() {
        let mut r = Rng::new(7);
        for _ in 0..1000 {
            assert!(r.below(10) < 10);
            let v = r.range_u32(5, 9);
            assert!((5..=9).contains(&v));
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = Rng::new(1);
        let mut v: Vec<u32> = (0..20).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<u32>>());
    }
}
