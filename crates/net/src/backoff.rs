//! Deterministic bounded exponential backoff.
//!
//! Retry loops in a long-running service must not synchronize: when a
//! `batnet-serve` instance sheds load with 503s, a thousand clients
//! retrying on the same fixed schedule arrive together again and keep
//! the queue full forever. The cure is exponential backoff with
//! *decorrelated jitter* — but the workspace is offline and
//! deterministic, so the jitter comes from the in-tree seeded
//! [`Rng`](crate::Rng), never from the wall clock or an OS entropy
//! source. Equal seeds give equal schedules, so every load-driver run
//! and chaos failure is reproducible from its seed.
//!
//! The iterator yields *suggested sleep durations*; the caller decides
//! whether (and how) to sleep. It is bounded twice over: each delay is
//! capped at `cap`, and the iterator ends after `max_attempts` delays,
//! so a retry loop written as `for delay in backoff { ... }` terminates
//! by construction.

use crate::rng::Rng;
use std::time::Duration;

/// A bounded, seeded exponential-backoff schedule.
///
/// Delay *n* (0-based) is drawn uniformly from
/// `[base, min(cap, base * 3^n)]` — decorrelated jitter over an
/// exponentially growing envelope. The lower bound never drops below
/// `base` and the upper envelope is monotone non-decreasing until it
/// saturates at `cap`.
#[derive(Clone, Debug)]
pub struct Backoff {
    base_ms: u64,
    cap_ms: u64,
    max_attempts: u32,
    attempt: u32,
    rng: Rng,
}

impl Backoff {
    /// A schedule starting at `base`, capped at `cap`, ending after
    /// `max_attempts` delays, jittered by `seed`. A `base` of zero is
    /// promoted to 1 ms so the envelope can grow.
    pub fn new(base: Duration, cap: Duration, max_attempts: u32, seed: u64) -> Backoff {
        let base_ms = (base.as_millis() as u64).max(1);
        Backoff {
            base_ms,
            cap_ms: (cap.as_millis() as u64).max(base_ms),
            max_attempts,
            attempt: 0,
            rng: Rng::new(seed),
        }
    }

    /// The envelope (largest possible delay, in ms) for 0-based
    /// attempt `n`: `min(cap, base * 3^n)`, saturating.
    pub fn envelope_ms(&self, n: u32) -> u64 {
        let mut env = self.base_ms;
        for _ in 0..n {
            env = env.saturating_mul(3);
            if env >= self.cap_ms {
                return self.cap_ms;
            }
        }
        env.min(self.cap_ms)
    }

    /// Delays handed out so far.
    pub fn attempts(&self) -> u32 {
        self.attempt
    }
}

impl Iterator for Backoff {
    type Item = Duration;

    fn next(&mut self) -> Option<Duration> {
        if self.attempt >= self.max_attempts {
            return None;
        }
        let env = self.envelope_ms(self.attempt);
        self.attempt += 1;
        let ms = self.base_ms + self.rng.below(env - self.base_ms + 1);
        Some(Duration::from_millis(ms))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schedule(seed: u64) -> Vec<u64> {
        Backoff::new(
            Duration::from_millis(10),
            Duration::from_millis(500),
            12,
            seed,
        )
        .map(|d| d.as_millis() as u64)
        .collect()
    }

    #[test]
    fn bounded_attempts_and_cap() {
        let delays = schedule(42);
        assert_eq!(delays.len(), 12, "iterator ends at max_attempts");
        for (i, &d) in delays.iter().enumerate() {
            assert!(d >= 10, "delay {i} below base: {d}");
            assert!(d <= 500, "delay {i} above cap: {d}");
        }
    }

    #[test]
    fn envelope_is_monotone_until_cap() {
        let b = Backoff::new(
            Duration::from_millis(10),
            Duration::from_millis(500),
            20,
            1,
        );
        let mut prev = 0;
        let mut saturated = false;
        for n in 0..20 {
            let env = b.envelope_ms(n);
            assert!(env >= prev, "envelope must never shrink: {env} < {prev}");
            assert!(env <= 500);
            if env == 500 {
                saturated = true;
            }
            prev = env;
        }
        assert!(saturated, "envelope must reach the cap");
        // Exact expected envelope: 10, 30, 90, 270, then capped.
        assert_eq!(b.envelope_ms(0), 10);
        assert_eq!(b.envelope_ms(1), 30);
        assert_eq!(b.envelope_ms(2), 90);
        assert_eq!(b.envelope_ms(3), 270);
        assert_eq!(b.envelope_ms(4), 500);
        assert_eq!(b.envelope_ms(19), 500);
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(schedule(7), schedule(7), "equal seeds, equal schedules");
        assert_ne!(schedule(7), schedule(8), "different seeds decorrelate");
    }

    #[test]
    fn zero_base_is_promoted() {
        let mut b = Backoff::new(Duration::ZERO, Duration::from_millis(100), 3, 5);
        let first = b.next().expect("one delay");
        assert!(first.as_millis() >= 1);
        assert_eq!(b.attempts(), 1);
    }

    #[test]
    fn huge_attempt_counts_saturate_instead_of_overflowing() {
        let b = Backoff::new(
            Duration::from_millis(1),
            Duration::from_secs(3600),
            u32::MAX,
            9,
        );
        assert_eq!(b.envelope_ms(200), 3_600_000, "3^200 saturates at cap");
    }
}
