//! IPv4 addresses, prefixes, and address ranges.
//!
//! The simulation engine touches millions of addresses and prefixes, so both
//! types are `Copy` newtypes over `u32`/`(u32, u8)` with total orderings that
//! are stable across runs (determinism is a design goal — §4.1.2).

use std::fmt;
use std::str::FromStr;

/// An IPv4 address stored as a host-order `u32`.
///
/// ```
/// use batnet_net::Ip;
/// let ip: Ip = "10.0.3.1".parse().unwrap();
/// assert_eq!(ip.octets(), [10, 0, 3, 1]);
/// assert_eq!(ip.to_string(), "10.0.3.1");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Ip(pub u32);

impl Ip {
    /// The unspecified address `0.0.0.0`.
    pub const ZERO: Ip = Ip(0);
    /// The maximum address `255.255.255.255`.
    pub const MAX: Ip = Ip(u32::MAX);

    /// Builds an address from four dotted-quad octets.
    pub const fn new(a: u8, b: u8, c: u8, d: u8) -> Ip {
        Ip(((a as u32) << 24) | ((b as u32) << 16) | ((c as u32) << 8) | d as u32)
    }

    /// Returns the four dotted-quad octets, most significant first.
    pub const fn octets(self) -> [u8; 4] {
        [
            (self.0 >> 24) as u8,
            (self.0 >> 16) as u8,
            (self.0 >> 8) as u8,
            self.0 as u8,
        ]
    }

    /// Returns the value of bit `i`, where bit 0 is the most significant.
    ///
    /// This is the order in which the BDD engine allocates variables for an
    /// address (most significant bit first, §4.2.2).
    pub const fn bit(self, i: u8) -> bool {
        debug_assert!(i < 32);
        (self.0 >> (31 - i)) & 1 == 1
    }

    /// The address numerically after `self`, saturating at `Ip::MAX`.
    pub const fn saturating_succ(self) -> Ip {
        Ip(self.0.saturating_add(1))
    }
}

impl fmt::Display for Ip {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let [a, b, c, d] = self.octets();
        write!(f, "{a}.{b}.{c}.{d}")
    }
}

impl fmt::Debug for Ip {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl From<u32> for Ip {
    fn from(v: u32) -> Ip {
        Ip(v)
    }
}

/// Error returned when parsing an [`Ip`] or [`Prefix`] from text fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AddrParseError(pub String);

impl fmt::Display for AddrParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid address syntax: {}", self.0)
    }
}

impl std::error::Error for AddrParseError {}

impl FromStr for Ip {
    type Err = AddrParseError;

    fn from_str(s: &str) -> Result<Ip, AddrParseError> {
        let mut parts = s.split('.');
        let mut octets = [0u8; 4];
        for slot in octets.iter_mut() {
            let part = parts.next().ok_or_else(|| AddrParseError(s.to_string()))?;
            // Reject empty / oversized / non-digit parts explicitly so that
            // config-parser error messages point at the right token.
            if part.is_empty() || part.len() > 3 || !part.bytes().all(|b| b.is_ascii_digit()) {
                return Err(AddrParseError(s.to_string()));
            }
            *slot = part.parse().map_err(|_| AddrParseError(s.to_string()))?;
        }
        if parts.next().is_some() {
            return Err(AddrParseError(s.to_string()));
        }
        Ok(Ip::new(octets[0], octets[1], octets[2], octets[3]))
    }
}

/// An IPv4 prefix (`network/len`), always stored in canonical form: bits
/// below the prefix length are zero.
///
/// ```
/// use batnet_net::{Ip, Prefix};
/// let p: Prefix = "10.0.3.0/24".parse().unwrap();
/// assert!(p.contains("10.0.3.77".parse().unwrap()));
/// assert!(!p.contains("10.0.4.1".parse().unwrap()));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Prefix {
    network: Ip,
    len: u8,
}

impl Prefix {
    /// The default route `0.0.0.0/0`.
    pub const DEFAULT: Prefix = Prefix {
        network: Ip(0),
        len: 0,
    };

    /// Creates a prefix, canonicalizing the network address by masking out
    /// host bits. Lengths above 32 are clamped to 32.
    pub fn new(ip: Ip, len: u8) -> Prefix {
        let len = len.min(32);
        Prefix {
            network: Ip(ip.0 & mask(len)),
            len,
        }
    }

    /// A host prefix (`/32`) for a single address.
    pub fn host(ip: Ip) -> Prefix {
        Prefix::new(ip, 32)
    }

    /// The network address (host bits zero).
    pub fn network(&self) -> Ip {
        self.network
    }

    /// The prefix length in bits (0..=32).
    pub fn len(&self) -> u8 {
        self.len
    }

    /// True only for the default route `0.0.0.0/0`.
    pub fn is_default(&self) -> bool {
        self.len == 0
    }

    /// The highest address covered by this prefix.
    pub fn last_ip(&self) -> Ip {
        Ip(self.network.0 | !mask(self.len))
    }

    /// Number of addresses covered (as u64 so `/0` does not overflow).
    pub fn size(&self) -> u64 {
        1u64 << (32 - self.len)
    }

    /// Does the prefix cover `ip`?
    pub fn contains(&self, ip: Ip) -> bool {
        ip.0 & mask(self.len) == self.network.0
    }

    /// Does the prefix cover every address of `other`?
    pub fn contains_prefix(&self, other: &Prefix) -> bool {
        self.len <= other.len && self.contains(other.network)
    }

    /// Do the two prefixes share any address?
    pub fn overlaps(&self, other: &Prefix) -> bool {
        self.contains_prefix(other) || other.contains_prefix(self)
    }

    /// The covering prefix one bit shorter, or `None` for `/0`.
    pub fn parent(&self) -> Option<Prefix> {
        if self.len == 0 {
            None
        } else {
            Some(Prefix::new(self.network, self.len - 1))
        }
    }

    /// The two halves of this prefix, or `None` for a `/32`.
    pub fn children(&self) -> Option<(Prefix, Prefix)> {
        if self.len >= 32 {
            return None;
        }
        let left = Prefix::new(self.network, self.len + 1);
        let right = Prefix::new(Ip(self.network.0 | (1 << (31 - self.len))), self.len + 1);
        Some((left, right))
    }

    /// An iterator over all host addresses (network and broadcast included).
    pub fn addrs(&self) -> impl Iterator<Item = Ip> {
        let start = self.network.0 as u64;
        let n = self.size();
        (start..start + n).map(|v| Ip(v as u32))
    }
}

/// Network mask with `len` leading ones.
const fn mask(len: u8) -> u32 {
    if len == 0 {
        0
    } else {
        u32::MAX << (32 - len)
    }
}

impl fmt::Display for Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.network, self.len)
    }
}

impl fmt::Debug for Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl FromStr for Prefix {
    type Err = AddrParseError;

    fn from_str(s: &str) -> Result<Prefix, AddrParseError> {
        let (ip, len) = s.split_once('/').ok_or_else(|| AddrParseError(s.to_string()))?;
        let ip: Ip = ip.parse()?;
        let len: u8 = len.parse().map_err(|_| AddrParseError(s.to_string()))?;
        if len > 32 {
            return Err(AddrParseError(s.to_string()));
        }
        Ok(Prefix::new(ip, len))
    }
}

/// Ordering: by network address, then by length (shorter first). This gives
/// a deterministic iteration order for RIB dumps and reports.
impl Ord for Prefix {
    fn cmp(&self, other: &Prefix) -> std::cmp::Ordering {
        (self.network, self.len).cmp(&(other.network, other.len))
    }
}

impl PartialOrd for Prefix {
    fn partial_cmp(&self, other: &Prefix) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// An inclusive range of IPv4 addresses, used by NAT pools and by header
/// spaces (a range is not always expressible as a single prefix).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct IpRange {
    /// First address in the range.
    pub start: Ip,
    /// Last address in the range (inclusive).
    pub end: Ip,
}

impl IpRange {
    /// A range covering a single address.
    pub fn single(ip: Ip) -> IpRange {
        IpRange { start: ip, end: ip }
    }

    /// The full IPv4 space.
    pub const FULL: IpRange = IpRange {
        start: Ip(0),
        end: Ip(u32::MAX),
    };

    /// The range covered by a prefix.
    pub fn from_prefix(p: Prefix) -> IpRange {
        IpRange {
            start: p.network(),
            end: p.last_ip(),
        }
    }

    /// Is `ip` within the range?
    pub fn contains(&self, ip: Ip) -> bool {
        self.start <= ip && ip <= self.end
    }

    /// Number of addresses in the range.
    pub fn size(&self) -> u64 {
        (self.end.0 as u64) - (self.start.0 as u64) + 1
    }

    /// Intersection of two ranges, or `None` if disjoint.
    pub fn intersect(&self, other: &IpRange) -> Option<IpRange> {
        let start = self.start.max(other.start);
        let end = self.end.min(other.end);
        if start <= end {
            Some(IpRange { start, end })
        } else {
            None
        }
    }

    /// Decomposes the range into the minimal list of covering prefixes.
    ///
    /// This is how range-based config constructs (NAT pools, Juniper-style
    /// `from address-range`) are lowered to the prefix-based BDD encoders.
    pub fn to_prefixes(&self) -> Vec<Prefix> {
        let mut out = Vec::new();
        let mut cur = self.start.0 as u64;
        let end = self.end.0 as u64;
        while cur <= end {
            // Largest power-of-two block that is aligned at `cur` and does
            // not overshoot `end`.
            let align = if cur == 0 { 32 } else { cur.trailing_zeros().min(32) };
            let span = 64 - (end - cur + 1).leading_zeros() - 1; // floor(log2(len))
            let bits = align.min(span);
            out.push(Prefix::new(Ip(cur as u32), 32 - bits as u8));
            cur += 1u64 << bits;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ip_roundtrip_and_octets() {
        let ip: Ip = "192.168.1.200".parse().unwrap();
        assert_eq!(ip.octets(), [192, 168, 1, 200]);
        assert_eq!(ip.to_string(), "192.168.1.200");
        assert_eq!("0.0.0.0".parse::<Ip>().unwrap(), Ip::ZERO);
        assert_eq!("255.255.255.255".parse::<Ip>().unwrap(), Ip::MAX);
    }

    #[test]
    fn ip_parse_rejects_garbage() {
        for bad in ["", "1.2.3", "1.2.3.4.5", "1.2.3.256", "1.2.3.x", "1..3.4", "01234.1.1.1"] {
            assert!(bad.parse::<Ip>().is_err(), "{bad} should not parse");
        }
    }

    #[test]
    fn ip_bits_are_msb_first() {
        let ip = Ip::new(0b1000_0000, 0, 0, 1);
        assert!(ip.bit(0));
        assert!(!ip.bit(1));
        assert!(ip.bit(31));
    }

    #[test]
    fn prefix_canonicalizes() {
        let p = Prefix::new("10.1.2.3".parse().unwrap(), 24);
        assert_eq!(p.to_string(), "10.1.2.0/24");
        assert_eq!(p, "10.1.2.0/24".parse().unwrap());
        assert_eq!(p.last_ip().to_string(), "10.1.2.255");
        assert_eq!(p.size(), 256);
    }

    #[test]
    fn prefix_containment() {
        let p24: Prefix = "10.0.3.0/24".parse().unwrap();
        let p26: Prefix = "10.0.3.64/26".parse().unwrap();
        assert!(p24.contains_prefix(&p26));
        assert!(!p26.contains_prefix(&p24));
        assert!(p24.overlaps(&p26));
        let other: Prefix = "10.0.4.0/24".parse().unwrap();
        assert!(!p24.overlaps(&other));
        assert!(Prefix::DEFAULT.contains_prefix(&p24));
    }

    #[test]
    fn prefix_parent_children() {
        let p: Prefix = "10.0.2.0/23".parse().unwrap();
        let (l, r) = p.children().unwrap();
        assert_eq!(l.to_string(), "10.0.2.0/24");
        assert_eq!(r.to_string(), "10.0.3.0/24");
        assert_eq!(l.parent().unwrap(), p);
        assert_eq!(r.parent().unwrap(), p);
        assert!(Prefix::host(Ip::ZERO).children().is_none());
        assert!(Prefix::DEFAULT.parent().is_none());
    }

    #[test]
    fn default_route_size() {
        assert_eq!(Prefix::DEFAULT.size(), 1u64 << 32);
        assert!(Prefix::DEFAULT.contains(Ip::MAX));
    }

    #[test]
    fn range_to_prefixes_exact_cover() {
        let r = IpRange {
            start: "10.0.0.3".parse().unwrap(),
            end: "10.0.0.17".parse().unwrap(),
        };
        let ps = r.to_prefixes();
        // Cover must be exact and disjoint.
        let total: u64 = ps.iter().map(|p| p.size()).sum();
        assert_eq!(total, r.size());
        for p in &ps {
            assert!(r.contains(p.network()) && r.contains(p.last_ip()));
        }
        for (i, a) in ps.iter().enumerate() {
            for b in &ps[i + 1..] {
                assert!(!a.overlaps(b));
            }
        }
    }

    #[test]
    fn range_full_space() {
        assert_eq!(IpRange::FULL.to_prefixes(), vec![Prefix::DEFAULT]);
        assert_eq!(IpRange::FULL.size(), 1u64 << 32);
    }

    #[test]
    fn range_intersect() {
        let a = IpRange::from_prefix("10.0.0.0/24".parse().unwrap());
        let b = IpRange {
            start: "10.0.0.128".parse().unwrap(),
            end: "10.0.1.5".parse().unwrap(),
        };
        let i = a.intersect(&b).unwrap();
        assert_eq!(i.start.to_string(), "10.0.0.128");
        assert_eq!(i.end.to_string(), "10.0.0.255");
        let c = IpRange::from_prefix("192.168.0.0/16".parse().unwrap());
        assert!(a.intersect(&c).is_none());
    }
}
