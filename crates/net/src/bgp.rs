//! BGP vocabulary shared between the configuration model and the route
//! simulation engine: AS numbers, communities, and AS paths.

use std::fmt;
use std::str::FromStr;

/// A 4-byte autonomous-system number.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct Asn(pub u32);

impl fmt::Display for Asn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl FromStr for Asn {
    type Err = std::num::ParseIntError;
    fn from_str(s: &str) -> Result<Asn, Self::Err> {
        Ok(Asn(s.parse()?))
    }
}

/// A standard BGP community, displayed in the canonical `asn:value` form.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Community(pub u32);

impl Community {
    /// Builds a community from its two 16-bit halves.
    pub fn new(high: u16, low: u16) -> Community {
        Community(((high as u32) << 16) | low as u32)
    }

    /// The high 16 bits (conventionally an AS number).
    pub fn high(self) -> u16 {
        (self.0 >> 16) as u16
    }

    /// The low 16 bits (conventionally a tag).
    pub fn low(self) -> u16 {
        self.0 as u16
    }
}

impl fmt::Display for Community {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.high(), self.low())
    }
}

/// Error when parsing a community literal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommunityParseError(pub String);

impl fmt::Display for CommunityParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid community: {}", self.0)
    }
}

impl std::error::Error for CommunityParseError {}

impl FromStr for Community {
    type Err = CommunityParseError;

    fn from_str(s: &str) -> Result<Community, CommunityParseError> {
        let (h, l) = s.split_once(':').ok_or_else(|| CommunityParseError(s.to_string()))?;
        let h: u16 = h.parse().map_err(|_| CommunityParseError(s.to_string()))?;
        let l: u16 = l.parse().map_err(|_| CommunityParseError(s.to_string()))?;
        Ok(Community::new(h, l))
    }
}

/// A BGP AS path: the sequence of AS numbers a route has traversed, most
/// recent first (as on the wire).
///
/// We model only `AS_SEQUENCE` segments: none of the paper's lessons depend
/// on `AS_SET` semantics, and modern BGP deprecates them. AS paths are
/// heavily shared between routes, so the routing engine interns them (the
/// §4.1.3 memory optimization); interning requires `Eq + Hash`, which the
/// plain `Vec<Asn>` representation provides.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct AsPath(pub Vec<Asn>);

impl AsPath {
    /// The empty path (routes originated locally / iBGP-internal).
    pub fn empty() -> AsPath {
        AsPath(Vec::new())
    }

    /// Path length used by the BGP decision process. Each ASN counts once.
    pub fn length(&self) -> usize {
        self.0.len()
    }

    /// Returns a new path with `asn` prepended `n` times (route-map
    /// `set as-path prepend`, and the normal eBGP export prepend).
    pub fn prepend(&self, asn: Asn, n: usize) -> AsPath {
        let mut v = Vec::with_capacity(self.0.len() + n);
        v.extend(std::iter::repeat(asn).take(n));
        v.extend_from_slice(&self.0);
        AsPath(v)
    }

    /// Loop detection: does the path already contain `asn`?
    pub fn contains(&self, asn: Asn) -> bool {
        self.0.contains(&asn)
    }

    /// Matches the path against a tiny regex dialect used by route maps:
    /// `^` start anchor, `$` end anchor, `_` separator, digit runs for
    /// ASNs, `.*` wildcard. This is the small practical subset the paper's
    /// Lesson 1 calls out as painful in Datalog ("route maps can use
    /// regular expressions") and trivial in imperative code.
    pub fn matches_regex(&self, pattern: &str) -> bool {
        // Render the path the way routers do: "65001 65002 65003".
        let rendered: String = self
            .0
            .iter()
            .map(|a| a.0.to_string())
            .collect::<Vec<_>>()
            .join(" ");
        simple_regex_match(pattern, &rendered)
    }
}

impl fmt::Display for AsPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.is_empty() {
            return write!(f, "(empty)");
        }
        let s: Vec<String> = self.0.iter().map(|a| a.0.to_string()).collect();
        write!(f, "{}", s.join(" "))
    }
}

/// A minimal regex matcher supporting `^ $ . * _ [0-9] literal` — enough for
/// the AS-path patterns that appear in practice (`^$`, `_65000_`, `^65001`,
/// `.*` etc.). `_` matches a boundary: start, end, or a space.
///
/// Implemented by backtracking over the pattern; patterns are tiny so the
/// worst case is irrelevant.
pub fn simple_regex_match(pattern: &str, text: &str) -> bool {
    let pat: Vec<char> = pattern.chars().collect();
    let txt: Vec<char> = text.chars().collect();
    // `^` anchors at start; otherwise try each starting offset.
    if pat.first() == Some(&'^') {
        match_here(&pat[1..], &txt, 0, text)
    } else {
        (0..=txt.len()).any(|i| match_here(&pat, &txt, i, text))
    }
}

fn match_here(pat: &[char], txt: &[char], i: usize, full: &str) -> bool {
    if pat.is_empty() {
        return true;
    }
    if pat[0] == '$' {
        return pat.len() == 1 && i == txt.len();
    }
    // `X*`: zero or more of X.
    if pat.len() >= 2 && pat[1] == '*' {
        let rest = &pat[2..];
        let mut j = i;
        loop {
            if match_here(rest, txt, j, full) {
                return true;
            }
            if j < txt.len() && char_matches(pat[0], txt, j) {
                j += 1;
            } else {
                return false;
            }
        }
    }
    if pat[0] == '_' {
        // Boundary: start of text, end of text, or a literal space.
        if i == 0 || i == txt.len() {
            return match_here(&pat[1..], txt, i, full);
        }
        if txt[i] == ' ' {
            return match_here(&pat[1..], txt, i + 1, full);
        }
        return false;
    }
    if i < txt.len() && char_matches(pat[0], txt, i) {
        return match_here(&pat[1..], txt, i + 1, full);
    }
    false
}

fn char_matches(p: char, txt: &[char], i: usize) -> bool {
    p == '.' || txt[i] == p
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn community_halves_roundtrip() {
        let c = Community::new(65001, 300);
        assert_eq!(c.high(), 65001);
        assert_eq!(c.low(), 300);
        assert_eq!(c.to_string(), "65001:300");
        assert_eq!("65001:300".parse::<Community>().unwrap(), c);
        assert!("65001".parse::<Community>().is_err());
        assert!("70000:1".parse::<Community>().is_err());
    }

    #[test]
    fn as_path_prepend() {
        let p = AsPath::empty().prepend(Asn(65001), 1).prepend(Asn(65002), 2);
        assert_eq!(p.0, vec![Asn(65002), Asn(65002), Asn(65001)]);
        assert_eq!(p.length(), 3);
        assert!(p.contains(Asn(65001)));
        assert!(!p.contains(Asn(65999)));
    }

    #[test]
    fn as_path_display() {
        assert_eq!(AsPath::empty().to_string(), "(empty)");
        assert_eq!(AsPath(vec![Asn(1), Asn(2)]).to_string(), "1 2");
    }

    #[test]
    fn regex_empty_path_anchor() {
        assert!(AsPath::empty().matches_regex("^$"));
        assert!(!AsPath(vec![Asn(65001)]).matches_regex("^$"));
    }

    #[test]
    fn regex_underscore_boundaries() {
        let p = AsPath(vec![Asn(65001), Asn(65002), Asn(65003)]);
        assert!(p.matches_regex("_65002_"));
        assert!(p.matches_regex("^65001_"));
        assert!(p.matches_regex("_65003$"));
        assert!(!p.matches_regex("_65004_"));
        // `_6500_` must not match inside the ASN 65001.
        assert!(!p.matches_regex("_6500_"));
    }

    #[test]
    fn regex_wildcards() {
        let p = AsPath(vec![Asn(65001), Asn(174)]);
        assert!(p.matches_regex(".*"));
        assert!(p.matches_regex("^65001 .*"));
        assert!(p.matches_regex("^6500. 174$"));
        assert!(!p.matches_regex("^174"));
    }

    #[test]
    fn regex_star_backtracking() {
        assert!(simple_regex_match("a*b", "aaab"));
        assert!(simple_regex_match("a*b", "b"));
        assert!(!simple_regex_match("^a*b$", "aaac"));
        assert!(simple_regex_match(".*c$", "abc"));
    }
}
