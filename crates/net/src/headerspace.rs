//! Header spaces: sets of packets described by independent per-field
//! constraints.
//!
//! A [`HeaderSpace`] is the *conjunctive* fragment of packet-set algebra —
//! each field carries a union of ranges and the space is the product of the
//! fields. It is exactly what one line of an ACL or one NAT match clause can
//! express, and it is the exchange format between configuration structures
//! and the two analysis engines:
//!
//! * the traceroute engine evaluates `HeaderSpace::matches(flow)` concretely;
//! * the BDD engine compiles a `HeaderSpace` to a BDD (conjunction of
//!   per-field disjunctions of range blocks).
//!
//! General packet sets (arbitrary unions, negations) live in the BDD world;
//! keeping this type simple keeps the two engines honestly independent,
//! which is what makes differential testing (§4.3.2) meaningful.

use crate::headers::{Flow, IpProtocol, PortRange, TcpFlags};
use crate::ip::{IpRange, Prefix};
use std::fmt;

/// A set of packets expressed as a product of per-field unions of ranges.
///
/// An empty constraint list for a field means "unconstrained" (the full
/// field domain). `HeaderSpace::default()` therefore denotes *all packets*.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Default)]
pub struct HeaderSpace {
    /// Allowed source prefixes/ranges (empty = any).
    pub src_ips: Vec<IpRange>,
    /// Allowed destination prefixes/ranges (empty = any).
    pub dst_ips: Vec<IpRange>,
    /// Allowed IP protocols (empty = any).
    pub protocols: Vec<IpProtocol>,
    /// Allowed source port ranges (empty = any). Only consulted for
    /// protocols that carry ports.
    pub src_ports: Vec<PortRange>,
    /// Allowed destination port ranges (empty = any).
    pub dst_ports: Vec<PortRange>,
    /// Allowed ICMP types (empty = any). Only consulted for ICMP.
    pub icmp_types: Vec<u8>,
    /// Allowed ICMP codes (empty = any).
    pub icmp_codes: Vec<u8>,
    /// TCP flags that must be set (all of them). `None` = unconstrained.
    pub tcp_flags_set: Option<TcpFlags>,
    /// TCP flags that must be clear (all of them). `None` = unconstrained.
    pub tcp_flags_unset: Option<TcpFlags>,
    /// Classic `established` keyword: ACK or RST must be set.
    pub established: bool,
}

impl HeaderSpace {
    /// The universe: every packet matches.
    pub fn any() -> HeaderSpace {
        HeaderSpace::default()
    }

    /// Constrains the destination to one prefix (builder style).
    pub fn dst_prefix(mut self, p: Prefix) -> HeaderSpace {
        self.dst_ips.push(IpRange::from_prefix(p));
        self
    }

    /// Constrains the source to one prefix (builder style).
    pub fn src_prefix(mut self, p: Prefix) -> HeaderSpace {
        self.src_ips.push(IpRange::from_prefix(p));
        self
    }

    /// Constrains the protocol (builder style).
    pub fn protocol(mut self, p: IpProtocol) -> HeaderSpace {
        self.protocols.push(p);
        self
    }

    /// Constrains the destination port to one value (builder style).
    pub fn dst_port(mut self, p: u16) -> HeaderSpace {
        self.dst_ports.push(PortRange::single(p));
        self
    }

    /// Constrains the source port to a range (builder style).
    pub fn src_port_range(mut self, r: PortRange) -> HeaderSpace {
        self.src_ports.push(r);
        self
    }

    /// Does the concrete flow satisfy every field constraint?
    pub fn matches(&self, flow: &Flow) -> bool {
        let in_ranges = |ranges: &[IpRange], ip| ranges.is_empty() || ranges.iter().any(|r| r.contains(ip));
        if !in_ranges(&self.src_ips, flow.src_ip) || !in_ranges(&self.dst_ips, flow.dst_ip) {
            return false;
        }
        if !self.protocols.is_empty() && !self.protocols.contains(&flow.protocol) {
            return false;
        }
        // Port constraints are only meaningful for protocols with ports; a
        // port-constrained clause never matches a portless protocol. This
        // mirrors real ACL semantics where `eq 80` implies tcp/udp.
        let port_constrained = !self.src_ports.is_empty() || !self.dst_ports.is_empty();
        if port_constrained && !flow.protocol.has_ports() {
            return false;
        }
        if flow.protocol.has_ports() {
            let in_ports = |ranges: &[PortRange], p| ranges.is_empty() || ranges.iter().any(|r| r.contains(p));
            if !in_ports(&self.src_ports, flow.src_port) || !in_ports(&self.dst_ports, flow.dst_port) {
                return false;
            }
        }
        let icmp_constrained = !self.icmp_types.is_empty() || !self.icmp_codes.is_empty();
        if icmp_constrained && flow.protocol != IpProtocol::Icmp {
            return false;
        }
        if flow.protocol == IpProtocol::Icmp {
            if !self.icmp_types.is_empty() && !self.icmp_types.contains(&flow.icmp_type) {
                return false;
            }
            if !self.icmp_codes.is_empty() && !self.icmp_codes.contains(&flow.icmp_code) {
                return false;
            }
        }
        let tcp_constrained =
            self.tcp_flags_set.is_some() || self.tcp_flags_unset.is_some() || self.established;
        if tcp_constrained && flow.protocol != IpProtocol::Tcp {
            return false;
        }
        if flow.protocol == IpProtocol::Tcp {
            if let Some(set) = self.tcp_flags_set {
                if !flow.tcp_flags.contains(set) {
                    return false;
                }
            }
            if let Some(unset) = self.tcp_flags_unset {
                if flow.tcp_flags.0 & unset.0 != 0 {
                    return false;
                }
            }
            if self.established && !flow.tcp_flags.is_established() {
                return false;
            }
        }
        true
    }

    /// True when no field carries a constraint (the space is the universe).
    pub fn is_unconstrained(&self) -> bool {
        *self == HeaderSpace::default()
    }

    /// Picks *some* flow inside the space, preferring "likely" values
    /// (§4.4.3: common protocols and applications are prioritized). Returns
    /// `None` when a field's constraint list is non-empty but one of its
    /// entries is impossible to combine (e.g. ports required with an
    /// ICMP-only protocol set).
    pub fn example_flow(&self) -> Option<Flow> {
        let protocol = if self.protocols.is_empty() {
            if self.tcp_flags_set.is_some() || self.established {
                IpProtocol::Tcp
            } else if !self.icmp_types.is_empty() || !self.icmp_codes.is_empty() {
                IpProtocol::Icmp
            } else {
                IpProtocol::Tcp
            }
        } else {
            // Prefer TCP, then UDP, then ICMP, then whatever is first.
            *[IpProtocol::Tcp, IpProtocol::Udp, IpProtocol::Icmp]
                .iter()
                .find(|p| self.protocols.contains(p))
                .unwrap_or(&self.protocols[0])
        };
        let port_constrained = !self.src_ports.is_empty() || !self.dst_ports.is_empty();
        if port_constrained && !protocol.has_ports() {
            return None;
        }
        let src_ip = self.src_ips.first().map(|r| r.start).unwrap_or(crate::ip::Ip::new(10, 0, 0, 1));
        let dst_ip = self.dst_ips.first().map(|r| r.start).unwrap_or(crate::ip::Ip::new(10, 0, 0, 2));
        let dst_port = self
            .dst_ports
            .first()
            .map(|r| r.start)
            .unwrap_or(if protocol == IpProtocol::Tcp { 80 } else { 53 });
        let src_port = self.src_ports.first().map(|r| r.start).unwrap_or(49152);
        let mut flags = self.tcp_flags_set.unwrap_or(TcpFlags::SYN);
        if self.established {
            flags = flags.union(TcpFlags::ACK);
        }
        if let Some(unset) = self.tcp_flags_unset {
            flags = TcpFlags(flags.0 & !unset.0);
        }
        let flow = Flow {
            src_ip,
            dst_ip,
            protocol,
            src_port: if protocol.has_ports() { src_port } else { 0 },
            dst_port: if protocol.has_ports() { dst_port } else { 0 },
            icmp_type: if protocol == IpProtocol::Icmp {
                self.icmp_types.first().copied().unwrap_or(8)
            } else {
                0
            },
            icmp_code: if protocol == IpProtocol::Icmp {
                self.icmp_codes.first().copied().unwrap_or(0)
            } else {
                0
            },
            tcp_flags: if protocol == IpProtocol::Tcp { flags } else { TcpFlags::EMPTY },
        };
        self.matches(&flow).then_some(flow)
    }
}

impl fmt::Display for HeaderSpace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_unconstrained() {
            return write!(f, "any");
        }
        let mut parts: Vec<String> = Vec::new();
        if !self.protocols.is_empty() {
            parts.push(format!(
                "proto={}",
                self.protocols.iter().map(|p| p.to_string()).collect::<Vec<_>>().join(",")
            ));
        }
        let fmt_ips = |ranges: &[IpRange]| {
            ranges
                .iter()
                .map(|r| {
                    if r.start == r.end {
                        r.start.to_string()
                    } else {
                        format!("{}-{}", r.start, r.end)
                    }
                })
                .collect::<Vec<_>>()
                .join(",")
        };
        if !self.src_ips.is_empty() {
            parts.push(format!("src={}", fmt_ips(&self.src_ips)));
        }
        if !self.dst_ips.is_empty() {
            parts.push(format!("dst={}", fmt_ips(&self.dst_ips)));
        }
        let fmt_ports = |ranges: &[PortRange]| {
            ranges
                .iter()
                .map(|r| {
                    if r.start == r.end {
                        r.start.to_string()
                    } else {
                        format!("{}-{}", r.start, r.end)
                    }
                })
                .collect::<Vec<_>>()
                .join(",")
        };
        if !self.src_ports.is_empty() {
            parts.push(format!("sport={}", fmt_ports(&self.src_ports)));
        }
        if !self.dst_ports.is_empty() {
            parts.push(format!("dport={}", fmt_ports(&self.dst_ports)));
        }
        if let Some(s) = self.tcp_flags_set {
            parts.push(format!("flags+{s}"));
        }
        if let Some(u) = self.tcp_flags_unset {
            parts.push(format!("flags-{u}"));
        }
        if self.established {
            parts.push("established".into());
        }
        if !self.icmp_types.is_empty() {
            parts.push(format!(
                "icmp-type={}",
                self.icmp_types.iter().map(|t| t.to_string()).collect::<Vec<_>>().join(",")
            ));
        }
        if !self.icmp_codes.is_empty() {
            parts.push(format!(
                "icmp-code={}",
                self.icmp_codes.iter().map(|t| t.to_string()).collect::<Vec<_>>().join(",")
            ));
        }
        write!(f, "{}", parts.join(" "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ip::Ip;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn any_matches_everything() {
        let hs = HeaderSpace::any();
        assert!(hs.matches(&Flow::tcp(Ip::new(1, 2, 3, 4), 1, Ip::new(4, 3, 2, 1), 2)));
        assert!(hs.matches(&Flow::icmp_echo(Ip::ZERO, Ip::MAX)));
        assert!(hs.is_unconstrained());
        assert_eq!(hs.to_string(), "any");
    }

    #[test]
    fn dst_prefix_constrains() {
        let hs = HeaderSpace::any().dst_prefix(p("10.0.3.0/24"));
        assert!(hs.matches(&Flow::tcp(Ip::new(1, 1, 1, 1), 5, Ip::new(10, 0, 3, 9), 22)));
        assert!(!hs.matches(&Flow::tcp(Ip::new(1, 1, 1, 1), 5, Ip::new(10, 0, 4, 9), 22)));
    }

    #[test]
    fn ports_imply_tcp_udp() {
        let hs = HeaderSpace::any().dst_port(80);
        assert!(hs.matches(&Flow::tcp(Ip::ZERO, 1, Ip::MAX, 80)));
        assert!(!hs.matches(&Flow::tcp(Ip::ZERO, 1, Ip::MAX, 81)));
        // ICMP cannot match a port-constrained space.
        assert!(!hs.matches(&Flow::icmp_echo(Ip::ZERO, Ip::MAX)));
    }

    #[test]
    fn established_semantics() {
        let hs = HeaderSpace {
            established: true,
            ..HeaderSpace::default()
        };
        let syn = Flow::tcp(Ip::ZERO, 1, Ip::MAX, 80);
        assert!(!hs.matches(&syn));
        let mut ack = syn;
        ack.tcp_flags = TcpFlags::ACK;
        assert!(hs.matches(&ack));
        // Non-TCP never matches a flag-constrained space.
        assert!(!hs.matches(&Flow::udp(Ip::ZERO, 1, Ip::MAX, 80)));
    }

    #[test]
    fn flag_unset_constraint() {
        let hs = HeaderSpace {
            tcp_flags_unset: Some(TcpFlags::ACK),
            ..HeaderSpace::default()
        };
        assert!(hs.matches(&Flow::tcp(Ip::ZERO, 1, Ip::MAX, 80))); // SYN only
        let mut f = Flow::tcp(Ip::ZERO, 1, Ip::MAX, 80);
        f.tcp_flags = TcpFlags::SYN.union(TcpFlags::ACK);
        assert!(!hs.matches(&f));
    }

    #[test]
    fn icmp_type_constraint() {
        let hs = HeaderSpace {
            icmp_types: vec![8],
            ..HeaderSpace::default()
        };
        assert!(hs.matches(&Flow::icmp_echo(Ip::ZERO, Ip::MAX)));
        assert!(!hs.matches(&Flow::tcp(Ip::ZERO, 1, Ip::MAX, 80)));
    }

    #[test]
    fn example_flow_lands_inside() {
        let hs = HeaderSpace::any()
            .dst_prefix(p("10.9.9.0/24"))
            .protocol(IpProtocol::Udp)
            .dst_port(53);
        let f = hs.example_flow().unwrap();
        assert!(hs.matches(&f));
        assert_eq!(f.protocol, IpProtocol::Udp);
        assert_eq!(f.dst_port, 53);
    }

    #[test]
    fn example_flow_prefers_tcp() {
        let hs = HeaderSpace {
            protocols: vec![IpProtocol::Icmp, IpProtocol::Tcp],
            ..HeaderSpace::default()
        };
        assert_eq!(hs.example_flow().unwrap().protocol, IpProtocol::Tcp);
    }

    #[test]
    fn example_flow_impossible_combination() {
        let hs = HeaderSpace {
            protocols: vec![IpProtocol::Icmp],
            dst_ports: vec![PortRange::single(80)],
            ..HeaderSpace::default()
        };
        assert!(hs.example_flow().is_none());
    }

    #[test]
    fn display_is_compact() {
        let hs = HeaderSpace::any().protocol(IpProtocol::Tcp).dst_prefix(p("10.0.0.0/8")).dst_port(443);
        let s = hs.to_string();
        assert!(s.contains("proto=tcp"));
        assert!(s.contains("dport=443"));
    }
}
