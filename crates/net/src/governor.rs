//! Resource governance: deadlines, iteration budgets, and node ceilings.
//!
//! A production analyzer must degrade gracefully not just on malformed
//! *input* (Lesson 3) but on pathological *computations*: BGP gadgets that
//! never converge, BDD blowups, fixed points that outlive their usefulness.
//! The [`ResourceGovernor`] is the single mechanism every stage consults:
//! the routing engine checks it between sweeps, the BDD manager checks it
//! as the arena grows, and reachability checks it between edge
//! relaxations. When any limit trips, the stage stops where it is and the
//! pipeline reports an [`Outcome::Partial`] — what was completed, what was
//! abandoned, and exactly which limit was hit — instead of hanging,
//! OOMing, or aborting.
//!
//! The governor is shared (cheap `Clone`, internally an [`Arc`]) so one
//! budget can span the whole pipeline: iterations consumed by routing count
//! against the same budget the dataplane stage inherits.

use batnet_obs::clock;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Which limit a stage ran into.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Limit {
    /// The wall-clock deadline passed.
    Deadline {
        /// The configured budget.
        budget_ms: u64,
    },
    /// The iteration budget (sweeps, relaxations, pulls) ran out.
    Iterations {
        /// The configured budget.
        budget: u64,
    },
    /// The BDD node arena crossed its ceiling.
    BddNodes {
        /// The configured ceiling.
        ceiling: usize,
        /// Arena size when the ceiling tripped.
        reached: usize,
    },
}

impl std::fmt::Display for Limit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Limit::Deadline { budget_ms } => write!(f, "deadline ({budget_ms} ms)"),
            Limit::Iterations { budget } => write!(f, "iteration budget ({budget})"),
            Limit::BddNodes { ceiling, reached } => {
                write!(f, "BDD node ceiling ({reached} nodes ≥ {ceiling})")
            }
        }
    }
}

/// A budget exhaustion: which limit tripped and in which pipeline stage.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Exhaustion {
    /// The stage that observed the exhaustion (e.g. `"bgp-fixed-point"`,
    /// `"reach-forward"`, `"bdd"`).
    pub stage: String,
    /// The limit that tripped.
    pub limit: Limit,
}

impl std::fmt::Display for Exhaustion {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} exhausted in stage {}", self.limit, self.stage)
    }
}

impl std::error::Error for Exhaustion {}

struct Inner {
    /// Absolute deadline, if any.
    deadline: Option<Instant>,
    /// The deadline's original budget (for reporting).
    deadline_budget_ms: u64,
    /// Iteration budget, if any.
    iteration_budget: Option<u64>,
    /// Iterations consumed so far (shared across stages and threads).
    iterations_used: AtomicU64,
    /// BDD node-count ceiling, if any.
    node_ceiling: Option<usize>,
}

/// Shared resource budget for one analysis. See the module docs.
#[derive(Clone)]
pub struct ResourceGovernor {
    inner: Arc<Inner>,
}

impl std::fmt::Debug for ResourceGovernor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ResourceGovernor")
            .field("deadline", &self.inner.deadline)
            .field("iteration_budget", &self.inner.iteration_budget)
            .field(
                "iterations_used",
                &self.inner.iterations_used.load(Ordering::Relaxed),
            )
            .field("node_ceiling", &self.inner.node_ceiling)
            .finish()
    }
}

impl Default for ResourceGovernor {
    fn default() -> Self {
        ResourceGovernor::unlimited()
    }
}

impl ResourceGovernor {
    fn build(
        deadline: Option<Instant>,
        deadline_budget_ms: u64,
        iteration_budget: Option<u64>,
        node_ceiling: Option<usize>,
    ) -> ResourceGovernor {
        ResourceGovernor {
            inner: Arc::new(Inner {
                deadline,
                deadline_budget_ms,
                iteration_budget,
                iterations_used: AtomicU64::new(0),
                node_ceiling,
            }),
        }
    }

    /// No limits: every check passes. The default for callers that do not
    /// opt in to governance.
    pub fn unlimited() -> ResourceGovernor {
        ResourceGovernor::build(None, 0, None, None)
    }

    /// A governor with only a wall-clock deadline, measured from now.
    pub fn with_deadline(budget: Duration) -> ResourceGovernor {
        ResourceGovernor::build(
            Some(clock::now() + budget),
            budget.as_millis() as u64,
            None,
            None,
        )
    }

    /// A governor with only an iteration budget. Iterations are the
    /// stage's natural unit of repeated work: BGP pulls per node per
    /// sweep, reachability edge relaxations.
    pub fn with_iteration_budget(budget: u64) -> ResourceGovernor {
        ResourceGovernor::build(None, 0, Some(budget), None)
    }

    /// A governor with only a BDD node-count ceiling.
    pub fn with_node_ceiling(ceiling: usize) -> ResourceGovernor {
        ResourceGovernor::build(None, 0, None, Some(ceiling))
    }

    /// Builder: adds a wall-clock deadline (from now).
    pub fn and_deadline(self, budget: Duration) -> ResourceGovernor {
        ResourceGovernor::build(
            Some(clock::now() + budget),
            budget.as_millis() as u64,
            self.inner.iteration_budget,
            self.inner.node_ceiling,
        )
    }

    /// Builder: adds an iteration budget.
    pub fn and_iteration_budget(self, budget: u64) -> ResourceGovernor {
        ResourceGovernor::build(
            self.inner.deadline,
            self.inner.deadline_budget_ms,
            Some(budget),
            self.inner.node_ceiling,
        )
    }

    /// Builder: adds a BDD node ceiling.
    pub fn and_node_ceiling(self, ceiling: usize) -> ResourceGovernor {
        ResourceGovernor::build(
            self.inner.deadline,
            self.inner.deadline_budget_ms,
            self.inner.iteration_budget,
            Some(ceiling),
        )
    }

    /// Does this governor impose any limit at all? Stages may skip
    /// periodic checks entirely when not.
    pub fn is_limited(&self) -> bool {
        self.inner.deadline.is_some()
            || self.inner.iteration_budget.is_some()
            || self.inner.node_ceiling.is_some()
    }

    /// Checks the deadline and the iteration budget (call between units of
    /// work). `Err` carries the stage name and the limit that tripped.
    pub fn check(&self, stage: &str) -> Result<(), Exhaustion> {
        if let Some(deadline) = self.inner.deadline {
            if clock::now() >= deadline {
                return Err(Exhaustion {
                    stage: stage.to_string(),
                    limit: Limit::Deadline {
                        budget_ms: self.inner.deadline_budget_ms,
                    },
                });
            }
        }
        if let Some(budget) = self.inner.iteration_budget {
            if self.inner.iterations_used.load(Ordering::Relaxed) >= budget {
                return Err(Exhaustion {
                    stage: stage.to_string(),
                    limit: Limit::Iterations { budget },
                });
            }
        }
        Ok(())
    }

    /// Consumes `n` iterations, then checks. Safe to call from multiple
    /// threads; consumption is shared.
    pub fn tick(&self, stage: &str, n: u64) -> Result<(), Exhaustion> {
        if self.inner.iteration_budget.is_some() {
            self.inner.iterations_used.fetch_add(n, Ordering::Relaxed);
        }
        self.check(stage)
    }

    /// Checks a BDD arena size against the node ceiling.
    pub fn check_nodes(&self, stage: &str, nodes: usize) -> Result<(), Exhaustion> {
        if let Some(ceiling) = self.inner.node_ceiling {
            if nodes >= ceiling {
                return Err(Exhaustion {
                    stage: stage.to_string(),
                    limit: Limit::BddNodes {
                        ceiling,
                        reached: nodes,
                    },
                });
            }
        }
        Ok(())
    }

    /// Iterations consumed so far.
    pub fn iterations_used(&self) -> u64 {
        self.inner.iterations_used.load(Ordering::Relaxed)
    }
}

/// The result of a governed stage: everything, or an honest partial.
#[derive(Clone, Debug)]
pub enum Outcome<T> {
    /// The stage ran to completion.
    Complete(T),
    /// The stage stopped at its budget.
    Partial {
        /// What *was* computed before the budget tripped. Always usable:
        /// a partial fixed point under-approximates the converged one.
        completed: T,
        /// Machine-readable identifiers of the work abandoned (churning
        /// prefixes, unvisited graph nodes — stage-specific).
        abandoned: Vec<String>,
        /// Which limit tripped, where.
        why: Exhaustion,
    },
}

impl<T> Outcome<T> {
    /// The computed value, complete or not.
    pub fn value(&self) -> &T {
        match self {
            Outcome::Complete(v) => v,
            Outcome::Partial { completed, .. } => completed,
        }
    }

    /// Consumes the outcome, returning the value either way.
    pub fn into_value(self) -> T {
        match self {
            Outcome::Complete(v) => v,
            Outcome::Partial { completed, .. } => completed,
        }
    }

    /// Did the stage stop early?
    pub fn is_partial(&self) -> bool {
        matches!(self, Outcome::Partial { .. })
    }

    /// The exhaustion, when partial.
    pub fn why(&self) -> Option<&Exhaustion> {
        match self {
            Outcome::Complete(_) => None,
            Outcome::Partial { why, .. } => Some(why),
        }
    }

    /// Maps the carried value, preserving partiality metadata.
    pub fn map<U>(self, f: impl FnOnce(T) -> U) -> Outcome<U> {
        match self {
            Outcome::Complete(v) => Outcome::Complete(f(v)),
            Outcome::Partial {
                completed,
                abandoned,
                why,
            } => Outcome::Partial {
                completed: f(completed),
                abandoned,
                why,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_always_passes() {
        let g = ResourceGovernor::unlimited();
        assert!(!g.is_limited());
        assert!(g.check("x").is_ok());
        assert!(g.tick("x", 1_000_000).is_ok());
        assert!(g.check_nodes("x", usize::MAX).is_ok());
    }

    #[test]
    fn iteration_budget_trips() {
        let g = ResourceGovernor::with_iteration_budget(10);
        assert!(g.tick("stage", 5).is_ok());
        let err = g.tick("stage", 5).unwrap_err();
        assert_eq!(err.stage, "stage");
        assert_eq!(err.limit, Limit::Iterations { budget: 10 });
        assert_eq!(g.iterations_used(), 10);
    }

    #[test]
    fn zero_deadline_trips_immediately() {
        let g = ResourceGovernor::with_deadline(Duration::ZERO);
        let err = g.check("s").unwrap_err();
        assert!(matches!(err.limit, Limit::Deadline { .. }));
    }

    #[test]
    fn node_ceiling_trips() {
        let g = ResourceGovernor::with_node_ceiling(100);
        assert!(g.check_nodes("bdd", 99).is_ok());
        let err = g.check_nodes("bdd", 100).unwrap_err();
        assert_eq!(
            err.limit,
            Limit::BddNodes {
                ceiling: 100,
                reached: 100
            }
        );
    }

    #[test]
    fn shared_budget_across_clones() {
        let g = ResourceGovernor::with_iteration_budget(10);
        let g2 = g.clone();
        assert!(g.tick("a", 6).is_ok());
        assert!(g2.tick("b", 6).is_err(), "clones share the budget");
    }

    #[test]
    fn outcome_accessors() {
        let c: Outcome<u32> = Outcome::Complete(7);
        assert!(!c.is_partial());
        assert_eq!(*c.value(), 7);
        let p = Outcome::Partial {
            completed: 3u32,
            abandoned: vec!["10.0.0.0/8".into()],
            why: Exhaustion {
                stage: "s".into(),
                limit: Limit::Iterations { budget: 1 },
            },
        };
        assert!(p.is_partial());
        assert_eq!(*p.value(), 3);
        let mapped = p.map(|v| v * 2);
        assert_eq!(mapped.into_value(), 6);
    }

    #[test]
    fn display_forms() {
        let e = Exhaustion {
            stage: "bgp-fixed-point".into(),
            limit: Limit::Deadline { budget_ms: 250 },
        };
        assert_eq!(
            e.to_string(),
            "deadline (250 ms) exhausted in stage bgp-fixed-point"
        );
    }
}
