//! The facade's typed error hierarchy.
//!
//! Every reachable failure in the parse → simulate → verify pipeline is a
//! value of [`enum@Error`]: callers decide whether to abort, degrade, or
//! quarantine. The library itself never panics on malformed input
//! (enforced by `clippy::unwrap_used` / `clippy::panic` on this crate).

use batnet_net::governor::Exhaustion;
use batnet_routing::RoutingError;
use std::fmt;
use std::path::PathBuf;

/// What went wrong, by pipeline stage.
#[derive(Debug)]
pub enum Error {
    /// Reading snapshot input failed at the filesystem level (the
    /// directory itself; unreadable individual files are quarantined, not
    /// fatal).
    Io {
        /// The path being read.
        path: PathBuf,
        /// The underlying I/O error.
        source: std::io::Error,
    },
    /// Every device in the snapshot was quarantined (or none were given):
    /// there is nothing left to analyze.
    EmptySnapshot,
    /// The routing stage reported a typed failure.
    Routing(RoutingError),
    /// A resource limit stopped the analysis before any usable partial
    /// result existed.
    Exhausted(Exhaustion),
    /// An internal invariant broke and was contained; the message names
    /// the stage. These indicate bugs, not bad input.
    Internal(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Io { path, source } => {
                write!(f, "reading {}: {source}", path.display())
            }
            Error::EmptySnapshot => {
                write!(f, "no analyzable devices (all inputs quarantined)")
            }
            Error::Routing(e) => write!(f, "routing: {e}"),
            Error::Exhausted(e) => write!(f, "{e}"),
            Error::Internal(msg) => write!(f, "internal: {msg}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Io { source, .. } => Some(source),
            Error::Routing(e) => Some(e),
            Error::Exhausted(e) => Some(e),
            _ => None,
        }
    }
}

impl From<RoutingError> for Error {
    fn from(e: RoutingError) -> Error {
        Error::Routing(e)
    }
}

impl From<Exhaustion> for Error {
    fn from(e: Exhaustion) -> Error {
        Error::Exhausted(e)
    }
}
