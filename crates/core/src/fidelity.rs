//! Analysis fidelity (§4.3): validation against ground truth and
//! differential engine testing.
//!
//! The paper's two frameworks:
//!
//! * **Validation against ground truth** (§4.3.1) — small lab networks
//!   with recorded expected behaviour (our stand-in for GNS3 runtime
//!   state): [`Expectation`]s assert concrete dispositions, and
//!   [`validate`] replays them against the model. Labs live under
//!   `tests/labs.rs` and run on every CI pass, mirroring the paper's
//!   daily regression runs.
//! * **Differential engine testing** (§4.3.2) — the symbolic and
//!   concrete engines check each other in both directions;
//!   [`differential_test`] packages the full protocol and is wired into
//!   integration tests for every generated network.

use crate::snapshot::Analysis;
use batnet_bdd::NodeId;
use batnet_dataplane::{NodeKind, ReachAnalysis};
use batnet_net::Flow;
use batnet_routing::FibAction;
use batnet_traceroute::{Disposition, StartLocation, Tracer};

/// One ground-truth expectation from a lab: "this flow, entering here,
/// ends like this".
#[derive(Clone, Debug)]
pub struct Expectation {
    /// Ingress device.
    pub device: String,
    /// Ingress interface.
    pub iface: String,
    /// The concrete flow.
    pub flow: Flow,
    /// The observed (ground truth) disposition.
    pub disposition: Disposition,
}

/// The outcome of a fidelity run.
#[derive(Debug, Default)]
pub struct FidelityReport {
    /// Checks performed.
    pub checks: usize,
    /// Human-readable mismatches (empty = full agreement).
    pub mismatches: Vec<String>,
}

impl FidelityReport {
    /// Did everything agree?
    pub fn ok(&self) -> bool {
        self.mismatches.is_empty()
    }
}

/// Replays ground-truth expectations against the model (§4.3.1 step 3:
/// "validate that, given the collected configurations, the model aligns
/// with the collected runtime state").
pub fn validate(analysis: &Analysis, expectations: &[Expectation]) -> FidelityReport {
    let tracer = analysis.tracer();
    let mut report = FidelityReport::default();
    for e in expectations {
        report.checks += 1;
        let trace = tracer.trace(
            &StartLocation::ingress(e.device.clone(), e.iface.clone()),
            &e.flow,
        );
        if !trace.paths.iter().any(|p| p.disposition == e.disposition) {
            report.mismatches.push(format!(
                "{}[{}] {}: expected {:?}, model says {:?}",
                e.device,
                e.iface,
                e.flow,
                e.disposition,
                trace.dispositions()
            ));
        }
    }
    publish_fidelity(&report);
    report
}

/// The §4.3.2 differential test, both directions, for every interface
/// source in the network:
///
/// 1. *reachability → traceroute*: for each terminal location the
///    symbolic engine reports reachable, pick a representative packet
///    and confirm the concrete engine delivers it there;
/// 2. *traceroute → reachability*: walk each device's FIB, build a
///    packet per entry, trace it concretely, and confirm the symbolic
///    reach set at the terminal node contains it.
///
/// `max_starts` bounds the work on large networks (the integration suite
/// uses small fixtures exhaustively; the harness samples).
pub fn differential_test(analysis: &mut Analysis, max_starts: usize) -> FidelityReport {
    let mut report = FidelityReport::default();
    let sources = analysis
        .graph
        .nodes_where(|k| matches!(k, NodeKind::IfaceSrc(_, _)));
    let starts: Vec<(String, String, usize)> = sources
        .iter()
        .take(max_starts)
        .filter_map(|&n| {
            let NodeKind::IfaceSrc(d, i) = &analysis.graph.nodes[n] else {
                return None;
            };
            Some((d.clone(), i.clone(), n))
        })
        .collect();

    for (dev, iface, src_node) in &starts {
        // Direction 1: symbolic → concrete.
        let reach = {
            let a = ReachAnalysis::new(&analysis.graph);
            a.forward(&mut analysis.bdd, &[(*src_node, NodeId::TRUE)])
        };
        let node_count = analysis.graph.nodes.len();
        for ni in 0..node_count {
            let set = reach.at(ni);
            if set == NodeId::FALSE {
                continue;
            }
            let expect = match &analysis.graph.nodes[ni] {
                NodeKind::Accept(d) => Disposition::Accepted { device: d.clone() },
                NodeKind::DeliveredToSubnet(d, i) => Disposition::DeliveredToSubnet {
                    device: d.clone(),
                    iface: i.clone(),
                },
                NodeKind::ExitsNetwork(d, i) => Disposition::ExitsNetwork {
                    device: d.clone(),
                    iface: i.clone(),
                },
                _ => continue,
            };
            report.checks += 1;
            // `set` is non-FALSE so a cube exists; a miss would be a BDD
            // invariant break — report it instead of crashing.
            let Some(cube) = analysis.bdd.pick_cube(set) else {
                report
                    .mismatches
                    .push(format!("sym→conc: no witness cube for node {ni}"));
                continue;
            };
            let flow = analysis.vars.cube_to_flow(&cube);
            let tracer = Tracer::new(&analysis.devices, &analysis.dp, &analysis.topo);
            let trace = tracer.trace(&StartLocation::ingress(dev.clone(), iface.clone()), &flow);
            if !trace.paths.iter().any(|p| p.disposition == expect) {
                report.mismatches.push(format!(
                    "sym→conc: {flow} from {dev}[{iface}] expected {expect:?}, concrete says {:?}",
                    trace.dispositions()
                ));
            }
        }

        // Direction 2: concrete → symbolic, per FIB entry of the ingress
        // device.
        let Some(ddp) = analysis.dp.device(dev) else { continue };
        let probes: Vec<Flow> = ddp
            .fib
            .entries()
            .iter()
            .filter(|e| matches!(e.action, FibAction::Forward(_)))
            .map(|e| {
                Flow::tcp(
                    batnet_net::Ip::new(10, 255, 1, 1),
                    40000,
                    e.prefix.network(),
                    443,
                )
            })
            .collect();
        for flow in probes {
            report.checks += 1;
            let tracer = Tracer::new(&analysis.devices, &analysis.dp, &analysis.topo);
            let trace = tracer.trace(&StartLocation::ingress(dev.clone(), iface.clone()), &flow);
            let fset = analysis.vars.flow(&mut analysis.bdd, &flow);
            let reach2 = {
                let a = ReachAnalysis::new(&analysis.graph);
                a.forward(&mut analysis.bdd, &[(*src_node, fset)])
            };
            for p in &trace.paths {
                let node = match &p.disposition {
                    Disposition::Accepted { device } => {
                        analysis.graph.node(&NodeKind::Accept(device.clone()))
                    }
                    Disposition::DeliveredToSubnet { device, iface } => analysis
                        .graph
                        .node(&NodeKind::DeliveredToSubnet(device.clone(), iface.clone())),
                    Disposition::ExitsNetwork { device, iface } => analysis
                        .graph
                        .node(&NodeKind::ExitsNetwork(device.clone(), iface.clone())),
                    Disposition::NoRoute { device } => analysis.graph.node(&NodeKind::Drop(
                        device.clone(),
                        batnet_dataplane::DropKind::NoRoute,
                    )),
                    Disposition::NullRouted { device } => analysis.graph.node(&NodeKind::Drop(
                        device.clone(),
                        batnet_dataplane::DropKind::NullRouted,
                    )),
                    // ACL/zone drops carry the interface inside the kind;
                    // match any drop of that class on the device.
                    Disposition::DeniedIn { device, .. } => analysis
                        .graph
                        .nodes_where(|k| {
                            matches!(k, NodeKind::Drop(d, batnet_dataplane::DropKind::AclIn(_)) if d == device)
                        })
                        .first()
                        .copied(),
                    Disposition::DeniedOut { device, .. } => analysis
                        .graph
                        .nodes_where(|k| {
                            matches!(k, NodeKind::Drop(d, batnet_dataplane::DropKind::AclOut(_)) if d == device)
                        })
                        .first()
                        .copied(),
                    Disposition::DeniedZone { device, .. } => analysis
                        .graph
                        .node(&NodeKind::Drop(device.clone(), batnet_dataplane::DropKind::Zone)),
                    Disposition::NeighborUnreachable { device, iface } => {
                        analysis.graph.node(&NodeKind::Drop(
                            device.clone(),
                            batnet_dataplane::DropKind::NeighborUnreachable(iface.clone()),
                        ))
                    }
                    Disposition::Loop => None, // loops have no sink node
                };
                let Some(node) = node else { continue };
                if reach2.at(node) == NodeId::FALSE {
                    report.mismatches.push(format!(
                        "conc→sym: {flow} from {dev}[{iface}] concretely {:?} but symbolic set empty",
                        p.disposition
                    ));
                }
            }
        }
    }
    publish_fidelity(&report);
    report
}

/// Feeds a fidelity outcome into the observability registry.
fn publish_fidelity(report: &FidelityReport) {
    batnet_obs::counter_add("fidelity.checks", report.checks as u64);
    batnet_obs::counter_add("fidelity.mismatches", report.mismatches.len() as u64);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Snapshot;
    use batnet_net::Ip;

    fn web_snapshot() -> Snapshot {
        Snapshot::from_configs(vec![
            (
                "r1".into(),
                "hostname r1\ninterface hosts\n ip address 10.1.0.1/24\n ip access-group EDGE in\ninterface core\n ip address 172.16.0.1/31\nip route 10.2.0.0/24 172.16.0.0\nip access-list extended EDGE\n 10 permit tcp any any eq 80\n 20 permit icmp any any\n 30 deny ip any any\n".into(),
            ),
            (
                "r2".into(),
                "hostname r2\ninterface core\n ip address 172.16.0.0/31\ninterface servers\n ip address 10.2.0.1/24\nip route 10.1.0.0/24 172.16.0.1\n".into(),
            ),
        ])
    }

    #[test]
    fn expectations_validate() {
        let analysis = web_snapshot().analyze();
        let expectations = vec![
            Expectation {
                device: "r1".into(),
                iface: "hosts".into(),
                flow: Flow::tcp(Ip::new(10, 1, 0, 5), 9999, Ip::new(10, 2, 0, 9), 80),
                disposition: Disposition::DeliveredToSubnet {
                    device: "r2".into(),
                    iface: "servers".into(),
                },
            },
            Expectation {
                device: "r1".into(),
                iface: "hosts".into(),
                flow: Flow::tcp(Ip::new(10, 1, 0, 5), 9999, Ip::new(10, 2, 0, 9), 22),
                disposition: Disposition::DeniedIn {
                    device: "r1".into(),
                    acl: "EDGE".into(),
                },
            },
        ];
        let report = validate(&analysis, &expectations);
        assert!(report.ok(), "{:?}", report.mismatches);
        assert_eq!(report.checks, 2);
        // A wrong expectation is caught.
        let bad = vec![Expectation {
            device: "r1".into(),
            iface: "hosts".into(),
            flow: Flow::tcp(Ip::new(10, 1, 0, 5), 9999, Ip::new(10, 2, 0, 9), 22),
            disposition: Disposition::DeliveredToSubnet {
                device: "r2".into(),
                iface: "servers".into(),
            },
        }];
        assert!(!validate(&analysis, &bad).ok());
    }

    #[test]
    fn differential_agrees_on_fixture() {
        let mut analysis = web_snapshot().analyze();
        let report = differential_test(&mut analysis, usize::MAX);
        assert!(report.ok(), "mismatches: {:#?}", report.mismatches);
        assert!(report.checks > 10, "should exercise many checks: {}", report.checks);
    }
}
