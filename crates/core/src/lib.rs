//! # batnet — proactive network configuration analysis
//!
//! A from-scratch Rust reproduction of the evolved Batfish architecture
//! described in *"Lessons from the evolution of the Batfish configuration
//! analysis tool"* (SIGCOMM 2023). The pipeline:
//!
//! 1. **Parse** ([`batnet_config`]) — vendor config text → the
//!    vendor-independent model, with diagnostics instead of failures.
//! 2. **Simulate** ([`batnet_routing`]) — imperative, deterministic
//!    control-plane fixed point (colored Gauss–Seidel sweeps, logical
//!    clocks, pull-based RIB deltas, attribute interning) → RIBs + FIBs.
//! 3. **Verify** ([`batnet_dataplane`]) — BDD-based dataflow analysis
//!    over the forwarding graph: reachability, multipath consistency,
//!    loops, NAT, zones, sessions, waypoints.
//! 4. **Explain** ([`batnet_traceroute`], [`batnet_queries`]) — concrete
//!    annotated traces, scoped defaults, positive/negative examples.
//!
//! Plus the Lesson-5 configuration analyses ([`batnet_lint`]), the
//! original-architecture baselines for the paper's comparisons
//! ([`batnet_datalog`], [`batnet_baselines`]), and the §4.3 fidelity
//! framework ([`fidelity`]).
//!
//! ```
//! use batnet::Snapshot;
//!
//! let snapshot = Snapshot::from_configs(vec![
//!     ("r1".to_string(),
//!      "hostname r1\ninterface e0\n ip address 10.0.0.1/24\n".to_string()),
//! ]);
//! let analysis = snapshot.analyze();
//! assert!(analysis.dp.convergence.converged);
//! ```

pub mod error;
pub mod fidelity;
pub mod quarantine;
pub mod snapshot;

pub use error::Error;
pub use fidelity::{differential_test, validate as validate_lab, Expectation, FidelityReport};
pub use quarantine::{Quarantine, QuarantineReason, QuarantineStage};
pub use snapshot::{Analysis, Snapshot};

// The differential-analysis vocabulary (PR 5): `Snapshot::diff` returns
// these.
pub use batnet_diff::{DiffOptions, SnapshotDiff};

// Fault-tolerance vocabulary shared with the sub-crates.
pub use batnet_net::governor::{Exhaustion, Limit, Outcome, ResourceGovernor};

// Re-export the sub-crates under one roof.
pub use batnet_baselines as baselines;
pub use batnet_bdd as bdd;
pub use batnet_config as config;
pub use batnet_datalog as datalog;
pub use batnet_dataplane as dataplane;
pub use batnet_diff as diff;
pub use batnet_lint as lint;
pub use batnet_net as net;
pub use batnet_obs as obs;
pub use batnet_queries as queries;
pub use batnet_routing as routing;
pub use batnet_traceroute as traceroute;
