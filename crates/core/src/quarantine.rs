//! Device quarantine: isolate what's broken, analyze the rest.
//!
//! The paper's Lesson 3 ("do not let what you cannot do interfere with
//! what you can") applied to whole devices: a config file that cannot be
//! read, a parse that blows up, or a device that poisons the route
//! simulation is pulled out of the snapshot with a machine-readable
//! reason, and the analysis proceeds on the healthy subset. Results for
//! healthy devices are identical to analyzing the healthy subset alone —
//! quarantined devices are removed *before* topology inference and
//! simulation, so they cannot influence surviving state.

use std::fmt;

/// The pipeline stage at which a device was quarantined.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum QuarantineStage {
    /// Reading the input file.
    Load,
    /// Parsing the config text.
    Parse,
    /// The route simulation.
    Route,
}

impl fmt::Display for QuarantineStage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            QuarantineStage::Load => "load",
            QuarantineStage::Parse => "parse",
            QuarantineStage::Route => "route",
        };
        write!(f, "{s}")
    }
}

/// Why a device was quarantined. Each variant has a stable
/// machine-readable [`code`](QuarantineReason::code) for tooling.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum QuarantineReason {
    /// The file could not be read.
    UnreadableFile {
        /// The I/O error text.
        detail: String,
    },
    /// The file was not valid UTF-8.
    NotUtf8,
    /// Another file in the same snapshot directory produced the same
    /// device name (e.g. `r1.ios` next to `r1.flat`); the first file in
    /// sorted order wins and the rest are isolated.
    DuplicateName {
        /// The file whose config was kept for this device name.
        kept: String,
    },
    /// The parser panicked on this input; the panic was contained.
    ParsePanic {
        /// The panic payload, when it was a string.
        detail: String,
    },
    /// The text parsed but produced no usable model: no interfaces and
    /// less than half the meaningful lines recognized.
    Unintelligible {
        /// Parse coverage in permille (0–1000).
        coverage_permille: u32,
    },
    /// The device's computation panicked during route simulation; the
    /// panic was contained and the healthy subset was re-simulated.
    RoutePanic,
}

impl QuarantineReason {
    /// Stable machine-readable code for this reason.
    pub fn code(&self) -> &'static str {
        match self {
            QuarantineReason::UnreadableFile { .. } => "unreadable-file",
            QuarantineReason::NotUtf8 => "not-utf8",
            QuarantineReason::DuplicateName { .. } => "duplicate-name",
            QuarantineReason::ParsePanic { .. } => "parse-panic",
            QuarantineReason::Unintelligible { .. } => "unintelligible",
            QuarantineReason::RoutePanic => "route-panic",
        }
    }
}

impl fmt::Display for QuarantineReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QuarantineReason::UnreadableFile { detail } => {
                write!(f, "unreadable-file: {detail}")
            }
            QuarantineReason::NotUtf8 => write!(f, "not-utf8"),
            QuarantineReason::DuplicateName { kept } => {
                write!(f, "duplicate-name: kept {kept}")
            }
            QuarantineReason::ParsePanic { detail } => {
                write!(f, "parse-panic: {detail}")
            }
            QuarantineReason::Unintelligible { coverage_permille } => {
                write!(
                    f,
                    "unintelligible: coverage {}.{}%",
                    coverage_permille / 10,
                    coverage_permille % 10
                )
            }
            QuarantineReason::RoutePanic => write!(f, "route-panic"),
        }
    }
}

/// One quarantined device.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Quarantine {
    /// The device (or file stem) that was isolated.
    pub device: String,
    /// Where in the pipeline it failed.
    pub stage: QuarantineStage,
    /// Why.
    pub reason: QuarantineReason,
}

impl Quarantine {
    /// The run-report form of this entry (see [`batnet_obs::report`]).
    pub fn report_entry(&self) -> batnet_obs::report::QuarantineEntry {
        batnet_obs::report::QuarantineEntry {
            device: self.device.clone(),
            stage: self.stage.to_string(),
            code: self.reason.code().to_string(),
            detail: self.reason.to_string(),
        }
    }
}

impl fmt::Display for Quarantine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "quarantined {} at {}: {}",
            self.device, self.stage, self.reason
        )
    }
}

/// Extracts a human-readable string from a contained panic payload.
pub(crate) fn panic_detail(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}
