//! Snapshots and analyses: the top-level workflow objects.
//!
//! Fault tolerance lives here: inputs that cannot be read, parsed, or
//! simulated are quarantined per device (see [`crate::quarantine`]) and
//! the pipeline continues on the healthy subset. Results for healthy
//! devices are identical to analyzing the healthy subset alone.

use crate::error::Error;
use crate::quarantine::{panic_detail, Quarantine, QuarantineReason, QuarantineStage};
use batnet_config::{parse_device, Diagnostic, Severity, Topology};
use batnet_dataplane::{ForwardingGraph, PacketVars};
use batnet_net::governor::{Exhaustion, Outcome, ResourceGovernor};
use batnet_net::Flow;
use batnet_obs::report::{PartialOutcome, SnapshotSummary};
use batnet_obs::RunReport;
use batnet_queries::QueryContext;
use batnet_routing::{simulate, simulate_governed, DataPlane, Environment, SimOptions};
use batnet_traceroute::{StartLocation, Trace, Tracer};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// A parse below this coverage with zero interfaces means the text is not
/// a config we understand (garbage, binary junk): quarantine it.
const MIN_COVERAGE: f64 = 0.5;

/// Bounded route-stage retries: each round removes the devices that
/// poisoned the simulation and re-runs on the survivors.
const MAX_ROUTE_RETRIES: usize = 4;

/// A parsed configuration snapshot: the unit both proactive and
/// continuous validation workflows operate on (§5.1, §5.2).
pub struct Snapshot {
    /// Parsed devices (the healthy subset: quarantined inputs are not
    /// here).
    pub devices: Vec<batnet_config::vi::Device>,
    /// Parse diagnostics per device (including skipped inputs).
    pub diagnostics: Vec<(String, Vec<Diagnostic>)>,
    /// Inputs isolated at load or parse, with machine-readable reasons.
    pub quarantined: Vec<Quarantine>,
    /// The environment (external announcements, failed links).
    pub env: Environment,
}

impl Snapshot {
    /// Parses a set of `(name, config text)` pairs with dialect
    /// auto-detection. Inputs whose parse panics (contained) or produces
    /// no usable model are quarantined rather than aborting the
    /// snapshot.
    pub fn from_configs(configs: Vec<(String, String)>) -> Snapshot {
        let span = batnet_obs::Span::enter("snapshot.parse");
        let mut devices = Vec::with_capacity(configs.len());
        let mut diagnostics = Vec::new();
        let mut quarantined = Vec::new();
        // Per-device parse fans out over the execution pool (panic
        // containment per task lives in the pool); the merge below is
        // sequential and input-ordered, so the snapshot — devices,
        // diagnostics, quarantine list — is byte-identical at every
        // thread count. A 1-thread pool runs this inline.
        let pool = batnet_exec::current();
        let parsed = pool.try_map(
            &configs,
            batnet_exec::MapOptions {
                span: Some(("exec.parse", span.context())),
            },
            |(name, text)| {
                let (device, diags) = parse_device(name, text);
                let meaningful = text
                    .lines()
                    .filter(|l| {
                        let t = l.trim();
                        !t.is_empty() && !t.starts_with('!') && !t.starts_with('#')
                    })
                    .count();
                let coverage = diags.coverage(meaningful);
                (device, diags, meaningful, coverage)
            },
        );
        for ((name, _text), outcome) in configs.into_iter().zip(parsed) {
            match outcome {
                Err(panic) => {
                    diagnostics.push((
                        name.clone(),
                        vec![Diagnostic::new(
                            Severity::ParseError,
                            0,
                            "parser panicked; device quarantined",
                        )],
                    ));
                    quarantined.push(Quarantine {
                        device: name,
                        stage: QuarantineStage::Parse,
                        reason: QuarantineReason::ParsePanic {
                            detail: panic.detail,
                        },
                    });
                }
                Ok((device, diags, meaningful, coverage)) => {
                    let unintelligible = device.interfaces.is_empty()
                        && meaningful > 0
                        && coverage < MIN_COVERAGE;
                    let mut items = diags.into_items();
                    if unintelligible {
                        items.push(Diagnostic::new(
                            Severity::ParseError,
                            0,
                            format!(
                                "config not understood (coverage {:.0}%); device quarantined",
                                coverage * 100.0
                            ),
                        ));
                        diagnostics.push((device.name.clone(), items));
                        quarantined.push(Quarantine {
                            device: device.name,
                            stage: QuarantineStage::Parse,
                            reason: QuarantineReason::Unintelligible {
                                coverage_permille: (coverage.max(0.0) * 1000.0) as u32,
                            },
                        });
                    } else {
                        diagnostics.push((device.name.clone(), items));
                        devices.push(device);
                    }
                }
            }
        }
        for q in &quarantined {
            batnet_obs::event("quarantine", &q.device, q.reason.code());
        }
        Snapshot {
            devices,
            diagnostics,
            quarantined,
            env: Environment::none(),
        }
    }

    /// Loads every file in a directory as one device config (the way real
    /// snapshots arrive: a directory of per-device files).
    ///
    /// Robustness contract: only a failure to list the directory itself
    /// is fatal. Subdirectories and symlinks are skipped with a
    /// diagnostic; unreadable or non-UTF-8 files are quarantined with a
    /// machine-readable reason and the rest of the snapshot loads.
    pub fn from_dir(dir: &std::path::Path) -> Result<Snapshot, Error> {
        let io_err = |source: std::io::Error| Error::Io {
            path: dir.to_path_buf(),
            source,
        };
        let mut entries: Vec<_> = std::fs::read_dir(dir)
            .map_err(io_err)?
            .collect::<Result<_, _>>()
            .map_err(io_err)?;
        entries.sort_by_key(|e| e.file_name());

        let mut configs: Vec<(String, String)> = Vec::new();
        let mut skipped: Vec<(String, Vec<Diagnostic>)> = Vec::new();
        let mut quarantined: Vec<Quarantine> = Vec::new();
        // Device name (file stem) -> the file that claimed it. `r1.ios`
        // next to `r1.flat` must not silently produce two devices named
        // `r1`: the first file in sorted order wins, the rest are
        // quarantined with a machine-readable reason.
        let mut claimed: std::collections::BTreeMap<String, String> =
            std::collections::BTreeMap::new();
        for entry in entries {
            let path = entry.path();
            let name = path
                .file_stem()
                .and_then(|s| s.to_str())
                .unwrap_or("device")
                .to_string();
            let file_name = path
                .file_name()
                .and_then(|s| s.to_str())
                .unwrap_or("device")
                .to_string();
            // symlink_metadata: treat symlinks as skippable, not as what
            // they point to (a dangling or cyclic link must not abort the
            // load).
            let is_file = path
                .symlink_metadata()
                .map(|m| m.file_type().is_file())
                .unwrap_or(false);
            if !is_file {
                skipped.push((
                    name,
                    vec![Diagnostic::new(
                        Severity::Info,
                        0,
                        format!("skipped {}: not a regular file", path.display()),
                    )],
                ));
                continue;
            }
            match std::fs::read(&path) {
                Err(e) => {
                    skipped.push((
                        name.clone(),
                        vec![Diagnostic::new(
                            Severity::ParseError,
                            0,
                            format!("skipped {}: {e}", path.display()),
                        )],
                    ));
                    quarantined.push(Quarantine {
                        device: name,
                        stage: QuarantineStage::Load,
                        reason: QuarantineReason::UnreadableFile {
                            detail: e.to_string(),
                        },
                    });
                }
                Ok(bytes) => match String::from_utf8(bytes) {
                    Ok(text) => {
                        if let Some(kept) = claimed.get(&name) {
                            skipped.push((
                                name.clone(),
                                vec![Diagnostic::new(
                                    Severity::ParseError,
                                    0,
                                    format!(
                                        "skipped {}: device name {name:?} already \
                                         claimed by {kept}",
                                        path.display()
                                    ),
                                )],
                            ));
                            quarantined.push(Quarantine {
                                device: name,
                                stage: QuarantineStage::Load,
                                reason: QuarantineReason::DuplicateName {
                                    kept: kept.clone(),
                                },
                            });
                        } else {
                            claimed.insert(name.clone(), file_name);
                            configs.push((name, text));
                        }
                    }
                    Err(_) => {
                        skipped.push((
                            name.clone(),
                            vec![Diagnostic::new(
                                Severity::ParseError,
                                0,
                                format!("skipped {}: not valid UTF-8", path.display()),
                            )],
                        ));
                        quarantined.push(Quarantine {
                            device: name,
                            stage: QuarantineStage::Load,
                            reason: QuarantineReason::NotUtf8,
                        });
                    }
                },
            }
        }
        for q in &quarantined {
            batnet_obs::event("quarantine", &q.device, q.reason.code());
        }
        let mut snapshot = Snapshot::from_configs(configs);
        snapshot.diagnostics.extend(skipped);
        // Load-stage quarantines come first: they happened first.
        quarantined.append(&mut snapshot.quarantined);
        snapshot.quarantined = quarantined;
        Ok(snapshot)
    }

    /// Attaches an environment (builder style).
    pub fn with_env(mut self, env: Environment) -> Snapshot {
        self.env = env;
        self
    }

    /// Total diagnostics across devices.
    pub fn diagnostic_count(&self) -> usize {
        self.diagnostics.iter().map(|(_, d)| d.len()).sum()
    }

    /// Runs the full pipeline with default options and one waypoint
    /// variable available.
    pub fn analyze(&self) -> Analysis {
        self.analyze_with(&SimOptions::default(), 1)
    }

    /// Runs the full pipeline with explicit options.
    pub fn analyze_with(&self, opts: &SimOptions, waypoints: u32) -> Analysis {
        let root = batnet_obs::Span::enter("pipeline");
        let topo_span = batnet_obs::Span::enter("topology.infer");
        let topo = Topology::infer(&self.devices);
        topo_span.close();
        let dp = simulate(&self.devices, &self.env, opts);
        let (mut bdd, vars) = PacketVars::new(waypoints);
        let graph = ForwardingGraph::build(&mut bdd, &vars, &self.devices, &dp, &topo);
        publish_bdd_gauges(&mut bdd);
        root.close();
        let report = finish_report(
            self.devices.len(),
            self.diagnostic_count(),
            &self.quarantined,
            None,
        );
        Analysis {
            devices: self.devices.clone(),
            topo,
            dp,
            bdd,
            vars,
            graph,
            quarantined: self.quarantined.clone(),
            report,
        }
    }

    /// Runs the full pipeline with route-stage quarantine and a resource
    /// governor: the fault-tolerant entry point.
    ///
    /// * A device whose computation panics during simulation is
    ///   quarantined (bounded retries on the shrinking healthy subset).
    /// * A governor limit tripping yields [`Outcome::Partial`] — the
    ///   analysis built from the state computed so far, with the
    ///   abandoned work listed.
    /// * [`Error::EmptySnapshot`] when no devices survive.
    pub fn analyze_resilient(
        &self,
        opts: &SimOptions,
        waypoints: u32,
        gov: &ResourceGovernor,
    ) -> Result<Outcome<Analysis>, Error> {
        let mut devices = self.devices.clone();
        let mut quarantined = self.quarantined.clone();
        if devices.is_empty() {
            return Err(Error::EmptySnapshot);
        }
        let root = batnet_obs::Span::enter("pipeline");

        let mut outcome: Option<Outcome<DataPlane>> = None;
        for _round in 0..MAX_ROUTE_RETRIES {
            let out = simulate_governed(&devices, &self.env, opts, gov);
            let poisoned = out.value().convergence.poisoned_devices.clone();
            if poisoned.is_empty() {
                outcome = Some(out);
                break;
            }
            for name in poisoned {
                devices.retain(|d| d.name != name);
                batnet_obs::event("quarantine", &name, QuarantineReason::RoutePanic.code());
                quarantined.push(Quarantine {
                    device: name,
                    stage: QuarantineStage::Route,
                    reason: QuarantineReason::RoutePanic,
                });
            }
            if devices.is_empty() {
                return Err(Error::EmptySnapshot);
            }
            // Last permitted result even if still poisoned: never loop
            // forever.
            outcome = Some(out);
        }
        let outcome = outcome.ok_or_else(|| {
            Error::Internal("route simulation produced no outcome".to_string())
        })?;
        // If the final round still reported poisoned devices (retry
        // budget exhausted), drop them from the published device list so
        // downstream stages only see devices with trustworthy state.
        let still_poisoned = outcome.value().convergence.poisoned_devices.clone();
        if !still_poisoned.is_empty() {
            devices.retain(|d| !still_poisoned.contains(&d.name));
            if devices.is_empty() {
                return Err(Error::EmptySnapshot);
            }
        }

        let (dp, partial) = match outcome {
            Outcome::Complete(dp) => (dp, None),
            Outcome::Partial {
                completed,
                abandoned,
                why,
            } => (completed, Some((abandoned, why))),
        };
        if let Some((_, why)) = &partial {
            batnet_obs::event("governor-trip", &why.stage, &why.limit.to_string());
        }

        let topo_span = batnet_obs::Span::enter("topology.infer");
        let topo = Topology::infer(&devices);
        topo_span.close();
        let (mut bdd, vars) = PacketVars::new(waypoints);
        let graph = catch_unwind(AssertUnwindSafe(|| {
            ForwardingGraph::build(&mut bdd, &vars, &devices, &dp, &topo)
        }))
        .map_err(|payload| {
            Error::Internal(format!(
                "forwarding graph construction panicked: {}",
                panic_detail(payload)
            ))
        })?;
        publish_bdd_gauges(&mut bdd);
        root.close();
        let report = finish_report(
            devices.len(),
            self.diagnostic_count(),
            &quarantined,
            partial.as_ref().map(|(a, w)| (a.as_slice(), w)),
        );

        let analysis = Analysis {
            devices,
            topo,
            dp,
            bdd,
            vars,
            graph,
            quarantined,
            report,
        };
        Ok(match partial {
            None => Outcome::Complete(analysis),
            Some((abandoned, why)) => Outcome::Partial {
                completed: analysis,
                abandoned,
                why,
            },
        })
    }

    /// Runs the Lesson-5 configuration checks (no simulation needed).
    pub fn lint(&self) -> Vec<batnet_lint::Finding> {
        batnet_lint::run_all(&self.devices)
    }

    /// Compares this snapshot (the *before* side) with `other` (the
    /// *after* side) across all three pipeline layers — structural,
    /// control plane, and symbolic data plane — with default options.
    /// The pre-deployment change-validation entry point (§5.1).
    pub fn diff(&self, other: &Snapshot) -> batnet_diff::SnapshotDiff {
        self.diff_with(other, &batnet_diff::DiffOptions::default())
    }

    /// [`Snapshot::diff`] with explicit options.
    pub fn diff_with(
        &self,
        other: &Snapshot,
        opts: &batnet_diff::DiffOptions,
    ) -> batnet_diff::SnapshotDiff {
        batnet_diff::diff(&self.diff_side(), &other.diff_side(), opts)
    }

    /// [`Snapshot::diff_with`] under a [`ResourceGovernor`]: a tripped
    /// budget returns the layers compared so far with the rest named in
    /// the partial accounting.
    pub fn diff_with_governed(
        &self,
        other: &Snapshot,
        opts: &batnet_diff::DiffOptions,
        gov: &ResourceGovernor,
    ) -> Outcome<batnet_diff::SnapshotDiff> {
        batnet_diff::diff_governed(&self.diff_side(), &other.diff_side(), opts, gov)
    }

    /// This snapshot as one side of a differential comparison: the
    /// healthy devices plus the quarantine accounting, in the diff
    /// crate's facade-independent vocabulary.
    pub fn diff_side(&self) -> batnet_diff::DiffSide<'_> {
        batnet_diff::DiffSide {
            devices: &self.devices,
            env: &self.env,
            quarantined: self
                .quarantined
                .iter()
                .map(|q| batnet_diff::QuarantinedDevice {
                    device: q.device.clone(),
                    stage: q.stage.to_string(),
                    code: q.reason.code().to_string(),
                })
                .collect(),
        }
    }
}

/// Publishes the BDD manager's end-of-build statistics as gauges, then
/// resets the apply-cache window so later queries (reach, traceroute)
/// accumulate their own hit rates.
fn publish_bdd_gauges(bdd: &mut batnet_bdd::Bdd) {
    batnet_obs::gauge_set("bdd.nodes", bdd.node_count() as f64);
    batnet_obs::gauge_set("bdd.unique-table", bdd.unique_table_len() as f64);
    batnet_obs::gauge_set("bdd.cache.hit-rate", bdd.cache_hit_rate());
    let window = bdd.take_stats();
    batnet_obs::counter_add("bdd.cache.hits", window.cache_hits);
    batnet_obs::counter_add("bdd.cache.misses", window.cache_misses);
}

/// Captures the observability state into a [`RunReport`] and fills the
/// pipeline-side accounting sections.
fn finish_report(
    devices: usize,
    diagnostics: usize,
    quarantined: &[Quarantine],
    partial: Option<(&[String], &Exhaustion)>,
) -> RunReport {
    let mut report = batnet_obs::capture();
    report.quarantined = quarantined.iter().map(Quarantine::report_entry).collect();
    report.partial = partial.map(|(abandoned, why)| PartialOutcome {
        stage: why.stage.clone(),
        limit: why.limit.to_string(),
        abandoned: abandoned.to_vec(),
    });
    report.snapshot = Some(SnapshotSummary {
        devices,
        quarantined: quarantined.len(),
        diagnostics,
    });
    report
}

/// A fully analyzed snapshot: simulated data plane plus the symbolic
/// forwarding graph, ready for queries, traces, and differential tests.
pub struct Analysis {
    /// The VI devices (cloned from the snapshot; link failures from the
    /// environment are applied inside `dp`).
    pub devices: Vec<batnet_config::vi::Device>,
    /// Inferred L3 topology.
    pub topo: Topology,
    /// Simulated RIBs and FIBs.
    pub dp: DataPlane,
    /// The BDD manager backing `graph`.
    pub bdd: batnet_bdd::Bdd,
    /// Packet variable layout.
    pub vars: PacketVars,
    /// The dataflow graph.
    pub graph: ForwardingGraph,
    /// Everything isolated on the way here (load, parse, and route
    /// stages), with machine-readable reasons.
    pub quarantined: Vec<Quarantine>,
    /// The machine-readable run report: span tree, metric snapshot,
    /// events, and quarantine/partial accounting for this analysis.
    pub report: RunReport,
}

impl Analysis {
    /// A concrete tracer over this analysis.
    pub fn tracer(&self) -> Tracer<'_> {
        Tracer::new(&self.devices, &self.dp, &self.topo)
    }

    /// Traces one flow (convenience).
    pub fn trace(&self, device: &str, iface: &str, flow: &Flow) -> Trace {
        self.tracer()
            .trace(&StartLocation::ingress(device, iface), flow)
    }

    /// A query context borrowing this analysis (the `bdd` borrow is
    /// exclusive, so queries run one at a time).
    pub fn query_context(&mut self) -> QueryContext<'_> {
        QueryContext {
            devices: &self.devices,
            dp: &self.dp,
            topo: &self.topo,
            bdd: &mut self.bdd,
            vars: &self.vars,
            graph: &self.graph,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use batnet_net::Ip;

    fn two_router_configs() -> Vec<(String, String)> {
        vec![
            (
                "r1".into(),
                "hostname r1\ninterface hosts\n ip address 10.1.0.1/24\ninterface core\n ip address 172.16.0.1/31\nip route 10.2.0.0/24 172.16.0.0\n".into(),
            ),
            (
                "r2".into(),
                "hostname r2\ninterface core\n ip address 172.16.0.0/31\ninterface servers\n ip address 10.2.0.1/24\nip route 10.1.0.0/24 172.16.0.1\n".into(),
            ),
        ]
    }

    #[test]
    fn snapshot_pipeline_end_to_end() {
        let snapshot = Snapshot::from_configs(two_router_configs());
        assert_eq!(snapshot.diagnostic_count(), 0);
        let analysis = snapshot.analyze();
        assert!(analysis.dp.convergence.converged);
        let flow = Flow::tcp(Ip::new(10, 1, 0, 5), 40000, Ip::new(10, 2, 0, 9), 80);
        let trace = analysis.trace("r1", "hosts", &flow);
        assert!(trace.any_succeeds(), "{trace}");
    }

    #[test]
    fn snapshot_from_dir_roundtrip() {
        let dir = std::env::temp_dir().join(format!("batnet-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        for (name, text) in two_router_configs() {
            std::fs::write(dir.join(format!("{name}.cfg")), text).unwrap();
        }
        let snapshot = Snapshot::from_dir(&dir).unwrap();
        assert_eq!(snapshot.devices.len(), 2);
        assert_eq!(snapshot.devices[0].name, "r1");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn from_dir_skips_subdirs_and_non_utf8() {
        let dir = std::env::temp_dir().join(format!("batnet-skip-{}", std::process::id()));
        std::fs::create_dir_all(dir.join("sub")).unwrap();
        for (name, text) in two_router_configs() {
            std::fs::write(dir.join(format!("{name}.cfg")), text).unwrap();
        }
        std::fs::write(dir.join("junk.cfg"), [0xFFu8, 0xFE, 0x00, 0x9F]).unwrap();
        let snapshot = Snapshot::from_dir(&dir).unwrap();
        // The two real configs load; the subdir and the binary file are
        // skipped with diagnostics, the binary one quarantined.
        assert_eq!(snapshot.devices.len(), 2);
        assert_eq!(snapshot.quarantined.len(), 1);
        assert_eq!(snapshot.quarantined[0].device, "junk");
        assert_eq!(snapshot.quarantined[0].reason.code(), "not-utf8");
        assert!(snapshot
            .diagnostics
            .iter()
            .any(|(n, d)| n == "sub" && d.iter().any(|x| x.message.contains("not a regular file"))));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn from_dir_duplicate_stems_quarantined() {
        let dir = std::env::temp_dir().join(format!("batnet-dup-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        // `r1.flat` sorts before `r1.ios`; both stem to device `r1`.
        std::fs::write(
            dir.join("r1.flat"),
            "hostname r1\ninterface e0\n ip address 10.5.0.1/24\n",
        )
        .unwrap();
        std::fs::write(
            dir.join("r1.ios"),
            "hostname r1\ninterface e0\n ip address 10.6.0.1/24\n",
        )
        .unwrap();
        std::fs::write(
            dir.join("r2.cfg"),
            "hostname r2\ninterface e0\n ip address 10.7.0.1/24\n",
        )
        .unwrap();
        let snapshot = Snapshot::from_dir(&dir).unwrap();
        assert_eq!(snapshot.devices.len(), 2, "one r1 and one r2");
        let r1 = snapshot.devices.iter().find(|d| d.name == "r1").unwrap();
        // The first file in sorted order (r1.flat) won.
        assert_eq!(
            r1.interfaces["e0"].address.unwrap().0,
            Ip::new(10, 5, 0, 1)
        );
        assert_eq!(snapshot.quarantined.len(), 1);
        let q = &snapshot.quarantined[0];
        assert_eq!(q.device, "r1");
        assert_eq!(q.reason.code(), "duplicate-name");
        assert!(matches!(q.stage, QuarantineStage::Load));
        assert!(
            matches!(&q.reason, QuarantineReason::DuplicateName { kept } if kept == "r1.flat")
        );
        // The losing file left a diagnostic trail.
        assert!(snapshot.diagnostics.iter().any(|(n, d)| n == "r1"
            && d.iter().any(|x| x.message.contains("already claimed"))));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn garbage_config_quarantined_healthy_survive() {
        let mut configs = two_router_configs();
        configs.push((
            "broken".into(),
            "\u{1}\u{2} %%% totally not a config\nzzzz qqqq\n@@@@\n".into(),
        ));
        let snapshot = Snapshot::from_configs(configs);
        assert_eq!(snapshot.devices.len(), 2, "healthy devices survive");
        assert_eq!(snapshot.quarantined.len(), 1);
        assert_eq!(snapshot.quarantined[0].device, "broken");
        assert_eq!(snapshot.quarantined[0].reason.code(), "unintelligible");
        // The healthy subset still analyzes end to end.
        let analysis = snapshot.analyze();
        assert!(analysis.dp.convergence.converged);
        assert_eq!(analysis.quarantined.len(), 1);
    }

    #[test]
    fn analyze_resilient_complete_on_healthy_input() {
        let snapshot = Snapshot::from_configs(two_router_configs());
        let out = snapshot
            .analyze_resilient(&SimOptions::default(), 1, &ResourceGovernor::unlimited())
            .expect("analysis runs");
        assert!(!out.is_partial());
        assert!(out.value().dp.convergence.converged);
    }

    #[test]
    fn analyze_resilient_empty_snapshot_is_typed_error() {
        let snapshot = Snapshot::from_configs(vec![]);
        let err = snapshot
            .analyze_resilient(&SimOptions::default(), 1, &ResourceGovernor::unlimited())
            .err()
            .expect("no devices to analyze");
        assert!(matches!(err, Error::EmptySnapshot));
    }

    #[test]
    fn lint_from_snapshot() {
        let snapshot = Snapshot::from_configs(vec![(
            "r1".into(),
            "hostname r1\ninterface e0\n ip address 10.0.0.1/24\n ip access-group NOPE in\n".into(),
        )]);
        let findings = snapshot.lint();
        assert!(findings.iter().any(|f| f.check == "undefined-reference"));
    }

    #[test]
    fn query_through_facade() {
        let snapshot = Snapshot::from_configs(two_router_configs());
        let mut analysis = snapshot.analyze();
        let mut ctx = analysis.query_context();
        let service =
            batnet_queries::ServiceSpec::tcp("10.2.0.0/24".parse().unwrap(), 443);
        let report = batnet_queries::service_reachable(&mut ctx, &service);
        assert!(report.holds());
    }
}
