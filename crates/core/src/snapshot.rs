//! Snapshots and analyses: the top-level workflow objects.

use batnet_config::{parse_device, Diagnostic, Topology};
use batnet_dataplane::{ForwardingGraph, PacketVars};
use batnet_net::Flow;
use batnet_queries::QueryContext;
use batnet_routing::{simulate, DataPlane, Environment, SimOptions};
use batnet_traceroute::{StartLocation, Trace, Tracer};

/// A parsed configuration snapshot: the unit both proactive and
/// continuous validation workflows operate on (§5.1, §5.2).
pub struct Snapshot {
    /// Parsed devices.
    pub devices: Vec<batnet_config::vi::Device>,
    /// Parse diagnostics per device.
    pub diagnostics: Vec<(String, Vec<Diagnostic>)>,
    /// The environment (external announcements, failed links).
    pub env: Environment,
}

impl Snapshot {
    /// Parses a set of `(name, config text)` pairs with dialect
    /// auto-detection.
    pub fn from_configs(configs: Vec<(String, String)>) -> Snapshot {
        let mut devices = Vec::with_capacity(configs.len());
        let mut diagnostics = Vec::new();
        for (name, text) in configs {
            let (device, diags) = parse_device(&name, &text);
            diagnostics.push((device.name.clone(), diags.into_items()));
            devices.push(device);
        }
        Snapshot {
            devices,
            diagnostics,
            env: Environment::none(),
        }
    }

    /// Loads every file in a directory as one device config (the way real
    /// snapshots arrive: a directory of per-device files).
    pub fn from_dir(dir: &std::path::Path) -> std::io::Result<Snapshot> {
        let mut configs: Vec<(String, String)> = Vec::new();
        let mut entries: Vec<_> = std::fs::read_dir(dir)?.collect::<Result<_, _>>()?;
        entries.sort_by_key(|e| e.file_name());
        for entry in entries {
            if entry.file_type()?.is_file() {
                let name = entry
                    .path()
                    .file_stem()
                    .and_then(|s| s.to_str())
                    .unwrap_or("device")
                    .to_string();
                configs.push((name, std::fs::read_to_string(entry.path())?));
            }
        }
        Ok(Snapshot::from_configs(configs))
    }

    /// Attaches an environment (builder style).
    pub fn with_env(mut self, env: Environment) -> Snapshot {
        self.env = env;
        self
    }

    /// Total diagnostics across devices.
    pub fn diagnostic_count(&self) -> usize {
        self.diagnostics.iter().map(|(_, d)| d.len()).sum()
    }

    /// Runs the full pipeline with default options and one waypoint
    /// variable available.
    pub fn analyze(&self) -> Analysis {
        self.analyze_with(&SimOptions::default(), 1)
    }

    /// Runs the full pipeline with explicit options.
    pub fn analyze_with(&self, opts: &SimOptions, waypoints: u32) -> Analysis {
        let topo = Topology::infer(&self.devices);
        let dp = simulate(&self.devices, &self.env, opts);
        let (mut bdd, vars) = PacketVars::new(waypoints);
        let graph = ForwardingGraph::build(&mut bdd, &vars, &self.devices, &dp, &topo);
        Analysis {
            devices: self.devices.clone(),
            topo,
            dp,
            bdd,
            vars,
            graph,
        }
    }

    /// Runs the Lesson-5 configuration checks (no simulation needed).
    pub fn lint(&self) -> Vec<batnet_lint::Finding> {
        batnet_lint::run_all(&self.devices)
    }
}

/// A fully analyzed snapshot: simulated data plane plus the symbolic
/// forwarding graph, ready for queries, traces, and differential tests.
pub struct Analysis {
    /// The VI devices (cloned from the snapshot; link failures from the
    /// environment are applied inside `dp`).
    pub devices: Vec<batnet_config::vi::Device>,
    /// Inferred L3 topology.
    pub topo: Topology,
    /// Simulated RIBs and FIBs.
    pub dp: DataPlane,
    /// The BDD manager backing `graph`.
    pub bdd: batnet_bdd::Bdd,
    /// Packet variable layout.
    pub vars: PacketVars,
    /// The dataflow graph.
    pub graph: ForwardingGraph,
}

impl Analysis {
    /// A concrete tracer over this analysis.
    pub fn tracer(&self) -> Tracer<'_> {
        Tracer::new(&self.devices, &self.dp, &self.topo)
    }

    /// Traces one flow (convenience).
    pub fn trace(&self, device: &str, iface: &str, flow: &Flow) -> Trace {
        self.tracer()
            .trace(&StartLocation::ingress(device, iface), flow)
    }

    /// A query context borrowing this analysis (the `bdd` borrow is
    /// exclusive, so queries run one at a time).
    pub fn query_context(&mut self) -> QueryContext<'_> {
        QueryContext {
            devices: &self.devices,
            dp: &self.dp,
            topo: &self.topo,
            bdd: &mut self.bdd,
            vars: &self.vars,
            graph: &self.graph,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use batnet_net::Ip;

    fn two_router_configs() -> Vec<(String, String)> {
        vec![
            (
                "r1".into(),
                "hostname r1\ninterface hosts\n ip address 10.1.0.1/24\ninterface core\n ip address 172.16.0.1/31\nip route 10.2.0.0/24 172.16.0.0\n".into(),
            ),
            (
                "r2".into(),
                "hostname r2\ninterface core\n ip address 172.16.0.0/31\ninterface servers\n ip address 10.2.0.1/24\nip route 10.1.0.0/24 172.16.0.1\n".into(),
            ),
        ]
    }

    #[test]
    fn snapshot_pipeline_end_to_end() {
        let snapshot = Snapshot::from_configs(two_router_configs());
        assert_eq!(snapshot.diagnostic_count(), 0);
        let analysis = snapshot.analyze();
        assert!(analysis.dp.convergence.converged);
        let flow = Flow::tcp(Ip::new(10, 1, 0, 5), 40000, Ip::new(10, 2, 0, 9), 80);
        let trace = analysis.trace("r1", "hosts", &flow);
        assert!(trace.any_succeeds(), "{trace}");
    }

    #[test]
    fn snapshot_from_dir_roundtrip() {
        let dir = std::env::temp_dir().join(format!("batnet-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        for (name, text) in two_router_configs() {
            std::fs::write(dir.join(format!("{name}.cfg")), text).unwrap();
        }
        let snapshot = Snapshot::from_dir(&dir).unwrap();
        assert_eq!(snapshot.devices.len(), 2);
        assert_eq!(snapshot.devices[0].name, "r1");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn lint_from_snapshot() {
        let snapshot = Snapshot::from_configs(vec![(
            "r1".into(),
            "hostname r1\ninterface e0\n ip address 10.0.0.1/24\n ip access-group NOPE in\n".into(),
        )]);
        let findings = snapshot.lint();
        assert!(findings.iter().any(|f| f.check == "undefined-reference"));
    }

    #[test]
    fn query_through_facade() {
        let snapshot = Snapshot::from_configs(two_router_configs());
        let mut analysis = snapshot.analyze();
        let mut ctx = analysis.query_context();
        let service =
            batnet_queries::ServiceSpec::tcp("10.2.0.0/24".parse().unwrap(), 443);
        let report = batnet_queries::service_reachable(&mut ctx, &service);
        assert!(report.holds());
    }
}
