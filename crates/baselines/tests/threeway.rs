//! Three-way representation equivalence: for random header spaces and
//! random flows, the concrete matcher (`HeaderSpace::matches`), the BDD
//! compilation (`PacketVars::headerspace`), and the cube compilation
//! (`CubeSet::from_headerspace`) must agree on membership.
//!
//! This is the representation-level core of the §4.3.2 differential
//! methodology: three independently written evaluators of the same
//! configuration fragment, fuzzed against each other.

use batnet_baselines::CubeSet;
use batnet_bdd::NodeId;
use batnet_dataplane::PacketVars;
use batnet_net::{Flow, HeaderSpace, Ip, IpProtocol, IpRange, PortRange, Prefix, TcpFlags};
use proptest::prelude::*;

fn arb_prefix() -> impl Strategy<Value = Prefix> {
    (any::<u32>(), 0u8..=32).prop_map(|(ip, len)| Prefix::new(Ip(ip), len))
}

fn arb_port_range() -> impl Strategy<Value = PortRange> {
    (any::<u16>(), any::<u16>()).prop_map(|(a, b)| PortRange::new(a.min(b), a.max(b)))
}

fn arb_headerspace() -> impl Strategy<Value = HeaderSpace> {
    (
        prop::collection::vec(arb_prefix(), 0..3),
        prop::collection::vec(arb_prefix(), 0..3),
        prop::collection::vec(
            prop::sample::select(vec![IpProtocol::Tcp, IpProtocol::Udp, IpProtocol::Icmp]),
            0..2,
        ),
        prop::collection::vec(arb_port_range(), 0..2),
        prop::collection::vec(arb_port_range(), 0..2),
        prop::option::of(0u8..64),
        any::<bool>(),
    )
        .prop_map(
            |(src_p, dst_p, protocols, sports, dports, flags_set, established)| HeaderSpace {
                src_ips: src_p.into_iter().map(IpRange::from_prefix).collect(),
                dst_ips: dst_p.into_iter().map(IpRange::from_prefix).collect(),
                protocols,
                src_ports: sports,
                dst_ports: dports,
                icmp_types: vec![],
                icmp_codes: vec![],
                tcp_flags_set: flags_set.map(TcpFlags),
                tcp_flags_unset: None,
                established,
            },
        )
}

fn arb_flow() -> impl Strategy<Value = Flow> {
    (
        any::<u32>(),
        any::<u32>(),
        any::<u16>(),
        any::<u16>(),
        prop::sample::select(vec![1u8, 6, 17]),
        0u8..64,
    )
        .prop_map(|(src, dst, sport, dport, proto, flags)| {
            let protocol = IpProtocol::from_number(proto);
            Flow {
                src_ip: Ip(src),
                dst_ip: Ip(dst),
                src_port: if protocol.has_ports() { sport } else { 0 },
                dst_port: if protocol.has_ports() { dport } else { 0 },
                protocol,
                icmp_type: if proto == 1 { 8 } else { 0 },
                icmp_code: 0,
                tcp_flags: if proto == 6 { TcpFlags(flags) } else { TcpFlags::EMPTY },
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn three_representations_agree(hs in arb_headerspace(), flows in prop::collection::vec(arb_flow(), 8)) {
        let (mut bdd, vars) = PacketVars::new(0);
        let sym = vars.headerspace(&mut bdd, &hs);
        let cubes = CubeSet::from_headerspace(&hs);
        for flow in &flows {
            let concrete = hs.matches(flow);
            let fb = vars.flow(&mut bdd, flow);
            let bdd_says = bdd.and(sym, fb) != NodeId::FALSE;
            prop_assert_eq!(bdd_says, concrete, "BDD vs concrete on {} for [{}]", flow, &hs);
            prop_assert_eq!(cubes.matches(flow), concrete, "cubes vs concrete on {} for [{}]", flow, &hs);
        }
        // Also probe with a flow built *from* the space, which hits the
        // satisfiable interior rather than random space.
        if let Some(inside) = hs.example_flow() {
            let fb = vars.flow(&mut bdd, &inside);
            prop_assert_ne!(bdd.and(sym, fb), NodeId::FALSE);
            prop_assert!(cubes.matches(&inside));
        }
    }

    /// Cube-set algebra agrees with BDD algebra through the compilers.
    #[test]
    fn cube_and_bdd_set_algebra_agree(a in arb_headerspace(), b in arb_headerspace(), flows in prop::collection::vec(arb_flow(), 6)) {
        let (mut bdd, vars) = PacketVars::new(0);
        let sa = vars.headerspace(&mut bdd, &a);
        let sb = vars.headerspace(&mut bdd, &b);
        let ca = CubeSet::from_headerspace(&a);
        let cb = CubeSet::from_headerspace(&b);
        let (s_and, s_or, s_diff) = (bdd.and(sa, sb), bdd.or(sa, sb), bdd.diff(sa, sb));
        let (c_and, c_or, c_diff) = (ca.intersect(&cb), ca.union(&cb), ca.subtract(&cb));
        for flow in &flows {
            let fb = vars.flow(&mut bdd, flow);
            prop_assert_eq!(bdd.and(s_and, fb) != NodeId::FALSE, c_and.matches(flow));
            prop_assert_eq!(bdd.and(s_or, fb) != NodeId::FALSE, c_or.matches(flow));
            prop_assert_eq!(bdd.and(s_diff, fb) != NodeId::FALSE, c_diff.matches(flow));
        }
    }
}
