//! Three-way representation equivalence: for random header spaces and
//! random flows, the concrete matcher (`HeaderSpace::matches`), the BDD
//! compilation (`PacketVars::headerspace`), and the cube compilation
//! (`CubeSet::from_headerspace`) must agree on membership.
//!
//! This is the representation-level core of the §4.3.2 differential
//! methodology: three independently written evaluators of the same
//! configuration fragment, fuzzed against each other. Header spaces and
//! flows come from the workspace's seeded PRNG (deterministic across
//! runs; failures name the case index).

use batnet_baselines::CubeSet;
use batnet_bdd::NodeId;
use batnet_dataplane::PacketVars;
use batnet_net::{Flow, HeaderSpace, Ip, IpProtocol, IpRange, PortRange, Prefix, Rng, TcpFlags};

const CASES: u64 = 192;

fn case_rng(test: u64, case: u64) -> Rng {
    Rng::new(0x3EE_3A7 ^ (test << 32) ^ case)
}

fn gen_prefix(rng: &mut Rng) -> Prefix {
    Prefix::new(Ip(rng.next_u32()), rng.below(33) as u8)
}

fn gen_port_range(rng: &mut Rng) -> PortRange {
    let a = rng.below(1 << 16) as u16;
    let b = rng.below(1 << 16) as u16;
    PortRange::new(a.min(b), a.max(b))
}

fn gen_headerspace(rng: &mut Rng) -> HeaderSpace {
    const PROTOS: [IpProtocol; 3] = [IpProtocol::Tcp, IpProtocol::Udp, IpProtocol::Icmp];
    let src_ips: Vec<IpRange> = (0..rng.below(3))
        .map(|_| IpRange::from_prefix(gen_prefix(rng)))
        .collect();
    let dst_ips: Vec<IpRange> = (0..rng.below(3))
        .map(|_| IpRange::from_prefix(gen_prefix(rng)))
        .collect();
    let protocols: Vec<IpProtocol> = (0..rng.below(2))
        .map(|_| PROTOS[rng.index(PROTOS.len())])
        .collect();
    let src_ports: Vec<PortRange> = (0..rng.below(2)).map(|_| gen_port_range(rng)).collect();
    let dst_ports: Vec<PortRange> = (0..rng.below(2)).map(|_| gen_port_range(rng)).collect();
    let tcp_flags_set = if rng.flip() {
        Some(TcpFlags(rng.below(64) as u8))
    } else {
        None
    };
    HeaderSpace {
        src_ips,
        dst_ips,
        protocols,
        src_ports,
        dst_ports,
        icmp_types: vec![],
        icmp_codes: vec![],
        tcp_flags_set,
        tcp_flags_unset: None,
        established: rng.flip(),
    }
}

fn gen_flow(rng: &mut Rng) -> Flow {
    const PROTOS: [u8; 3] = [1, 6, 17];
    let proto = PROTOS[rng.index(PROTOS.len())];
    let protocol = IpProtocol::from_number(proto);
    Flow {
        src_ip: Ip(rng.next_u32()),
        dst_ip: Ip(rng.next_u32()),
        src_port: if protocol.has_ports() {
            rng.below(1 << 16) as u16
        } else {
            0
        },
        dst_port: if protocol.has_ports() {
            rng.below(1 << 16) as u16
        } else {
            0
        },
        protocol,
        icmp_type: if proto == 1 { 8 } else { 0 },
        icmp_code: 0,
        tcp_flags: if proto == 6 {
            TcpFlags(rng.below(64) as u8)
        } else {
            TcpFlags::EMPTY
        },
    }
}

#[test]
fn three_representations_agree() {
    for case in 0..CASES {
        let mut rng = case_rng(1, case);
        let hs = gen_headerspace(&mut rng);
        let flows: Vec<Flow> = (0..8).map(|_| gen_flow(&mut rng)).collect();
        let (mut bdd, vars) = PacketVars::new(0);
        let sym = vars.headerspace(&mut bdd, &hs);
        let cubes = CubeSet::from_headerspace(&hs);
        for flow in &flows {
            let concrete = hs.matches(flow);
            let fb = vars.flow(&mut bdd, flow);
            let bdd_says = bdd.and(sym, fb) != NodeId::FALSE;
            assert_eq!(
                bdd_says, concrete,
                "case {case}: BDD vs concrete on {flow} for [{hs}]"
            );
            assert_eq!(
                cubes.matches(flow),
                concrete,
                "case {case}: cubes vs concrete on {flow} for [{hs}]"
            );
        }
        // Also probe with a flow built *from* the space, which hits the
        // satisfiable interior rather than random space.
        if let Some(inside) = hs.example_flow() {
            let fb = vars.flow(&mut bdd, &inside);
            assert_ne!(bdd.and(sym, fb), NodeId::FALSE, "case {case}");
            assert!(cubes.matches(&inside), "case {case}");
        }
    }
}

/// Cube-set algebra agrees with BDD algebra through the compilers.
#[test]
fn cube_and_bdd_set_algebra_agree() {
    for case in 0..CASES {
        let mut rng = case_rng(2, case);
        let a = gen_headerspace(&mut rng);
        let b = gen_headerspace(&mut rng);
        let flows: Vec<Flow> = (0..6).map(|_| gen_flow(&mut rng)).collect();
        let (mut bdd, vars) = PacketVars::new(0);
        let sa = vars.headerspace(&mut bdd, &a);
        let sb = vars.headerspace(&mut bdd, &b);
        let ca = CubeSet::from_headerspace(&a);
        let cb = CubeSet::from_headerspace(&b);
        let (s_and, s_or, s_diff) = (bdd.and(sa, sb), bdd.or(sa, sb), bdd.diff(sa, sb));
        let (c_and, c_or, c_diff) = (ca.intersect(&cb), ca.union(&cb), ca.subtract(&cb));
        for flow in &flows {
            let fb = vars.flow(&mut bdd, flow);
            assert_eq!(
                bdd.and(s_and, fb) != NodeId::FALSE,
                c_and.matches(flow),
                "case {case}: and on {flow}"
            );
            assert_eq!(
                bdd.and(s_or, fb) != NodeId::FALSE,
                c_or.matches(flow),
                "case {case}: or on {flow}"
            );
            assert_eq!(
                bdd.and(s_diff, fb) != NodeId::FALSE,
                c_diff.matches(flow),
                "case {case}: diff on {flow}"
            );
        }
    }
}
