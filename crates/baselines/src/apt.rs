//! Atomic Predicates (APT): the §6.2 comparison engine.
//!
//! Yang & Lam's insight: compute the coarsest partition of the header
//! space that distinguishes every edge predicate in the network; then
//! every predicate is a *set of atom ids* and reachability propagates
//! integer sets. Queries are fast — but the partition must be computed up
//! front over every predicate in the network, which is the cost the
//! paper's Figure/§6.2 comparison highlights (Batfish builds its graph
//! and answers destination queries almost two orders of magnitude
//! faster on the 92-node network).
//!
//! This implementation reuses `batnet-dataplane`'s graph as the edge
//! source; transform edges (NAT/zones) are out of scope, as they were for
//! the original Atomic Predicates tool (*"adding packet transformations
//! to the original Atomic Predicates tool required development of an
//! entirely new theory"*).

use batnet_bdd::{Bdd, NodeId};
use batnet_dataplane::{EdgeLabel, ForwardingGraph, NodeKind};
use std::collections::{BTreeMap, BTreeSet};

/// A set of atom ids, as a bitset.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct AtomSet {
    words: Vec<u64>,
}

impl AtomSet {
    fn with_capacity(n: usize) -> AtomSet {
        AtomSet {
            words: vec![0; n.div_ceil(64)],
        }
    }

    fn insert(&mut self, i: usize) {
        self.words[i / 64] |= 1 << (i % 64);
    }

    /// Is atom `i` present?
    pub fn contains(&self, i: usize) -> bool {
        self.words
            .get(i / 64)
            .is_some_and(|w| w & (1 << (i % 64)) != 0)
    }

    /// Union in place; true when anything changed.
    pub fn union_in(&mut self, other: &AtomSet) -> bool {
        let mut changed = false;
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            let new = *a | b;
            changed |= new != *a;
            *a = new;
        }
        changed
    }

    /// Intersection.
    pub fn intersect(&self, other: &AtomSet) -> AtomSet {
        AtomSet {
            words: self
                .words
                .iter()
                .zip(&other.words)
                .map(|(a, b)| a & b)
                .collect(),
        }
    }

    /// Any atoms present?
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Number of atoms present.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }
}

/// The Atomic Predicates engine over one forwarding graph.
pub struct AptEngine {
    /// The atoms, as BDDs (pairwise disjoint, covering TRUE).
    pub atoms: Vec<NodeId>,
    /// Per edge: its predicate as an atom set.
    pub edge_atoms: Vec<AtomSet>,
    graph_nodes: usize,
}

/// The graph contains a packet-transformation edge, which the Atomic
/// Predicates theory does not cover (as documented above).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct UnsupportedTransform;

impl std::fmt::Display for UnsupportedTransform {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "APT does not support packet transformations")
    }
}

impl std::error::Error for UnsupportedTransform {}

impl AptEngine {
    /// Computes the atomic predicates of every BDD-labeled edge and
    /// re-encodes the edges. Errors on transform edges (out of scope, as
    /// documented).
    pub fn build(bdd: &mut Bdd, graph: &ForwardingGraph) -> Result<AptEngine, UnsupportedTransform> {
        // Partition refinement: start with {TRUE}, split by each distinct
        // predicate.
        let mut predicates: BTreeSet<NodeId> = BTreeSet::new();
        for e in &graph.edges {
            match e.label {
                EdgeLabel::Bdd(p) => {
                    predicates.insert(p);
                }
                EdgeLabel::Transform(_, _) => return Err(UnsupportedTransform),
            }
        }
        let mut atoms: Vec<NodeId> = vec![NodeId::TRUE];
        for (i, &p) in predicates.iter().enumerate() {
            if p == NodeId::TRUE || p == NodeId::FALSE {
                continue;
            }
            let np = bdd.not(p);
            let mut next = Vec::with_capacity(atoms.len() * 2);
            for &a in &atoms {
                let with = bdd.and(a, p);
                if with != NodeId::FALSE {
                    next.push(with);
                }
                let without = bdd.and(a, np);
                if without != NodeId::FALSE {
                    next.push(without);
                }
            }
            atoms = next;
            // The refinement touches every atom against every predicate;
            // the operation caches would otherwise grow with the product.
            if i % 64 == 63 {
                bdd.clear_caches();
            }
        }
        // Re-encode every edge as an atom set. An atom is in a predicate
        // iff atom ∧ predicate ≠ ∅ (atoms are never split by any
        // predicate, so intersection means containment).
        let mut cache: BTreeMap<NodeId, AtomSet> = BTreeMap::new();
        let mut edge_atoms = Vec::with_capacity(graph.edges.len());
        for e in &graph.edges {
            let EdgeLabel::Bdd(p) = e.label else {
                return Err(UnsupportedTransform);
            };
            let set = cache
                .entry(p)
                .or_insert_with(|| {
                    let mut s = AtomSet::with_capacity(atoms.len());
                    for (i, &a) in atoms.iter().enumerate() {
                        if bdd.and(a, p) != NodeId::FALSE {
                            s.insert(i);
                        }
                    }
                    s
                })
                .clone();
            edge_atoms.push(set);
        }
        Ok(AptEngine {
            atoms,
            edge_atoms,
            graph_nodes: graph.nodes.len(),
        })
    }

    /// The atom-set encoding of an arbitrary packet set.
    pub fn encode(&self, bdd: &mut Bdd, set: NodeId) -> AtomSet {
        let mut s = AtomSet::with_capacity(self.atoms.len());
        for (i, &a) in self.atoms.iter().enumerate() {
            if bdd.and(a, set) != NodeId::FALSE {
                s.insert(i);
            }
        }
        s
    }

    /// Decodes an atom set back to a BDD.
    pub fn decode(&self, bdd: &mut Bdd, set: &AtomSet) -> NodeId {
        let mut acc = NodeId::FALSE;
        for (i, &a) in self.atoms.iter().enumerate() {
            if set.contains(i) {
                acc = bdd.or(acc, a);
            }
        }
        acc
    }

    /// Forward reachability with integer-set labels.
    pub fn forward(
        &self,
        graph: &ForwardingGraph,
        sources: &[(usize, AtomSet)],
    ) -> Vec<AtomSet> {
        let mut reach: Vec<AtomSet> = (0..self.graph_nodes)
            .map(|_| AtomSet::with_capacity(self.atoms.len()))
            .collect();
        let mut worklist: BTreeSet<usize> = BTreeSet::new();
        for (n, s) in sources {
            reach[*n].union_in(s);
            worklist.insert(*n);
        }
        while let Some(n) = worklist.pop_first() {
            let current = reach[n].clone();
            for &eid in &graph.out_edges[n] {
                let e = &graph.edges[eid];
                let pushed = current.intersect(&self.edge_atoms[eid]);
                if pushed.is_empty() {
                    continue;
                }
                if reach[e.to].union_in(&pushed) {
                    worklist.insert(e.to);
                }
            }
        }
        reach
    }

    /// Destination reachability: the atom sets arriving at every success
    /// sink when all sources inject everything.
    pub fn dest_reachability(&self, graph: &ForwardingGraph) -> Vec<(usize, AtomSet)> {
        let full = {
            let mut s = AtomSet::with_capacity(self.atoms.len());
            for i in 0..self.atoms.len() {
                s.insert(i);
            }
            s
        };
        let sources: Vec<(usize, AtomSet)> = graph
            .nodes_where(|k| matches!(k, NodeKind::IfaceSrc(_, _)))
            .into_iter()
            .map(|n| (n, full.clone()))
            .collect();
        let reach = self.forward(graph, &sources);
        graph
            .nodes_where(NodeKind::is_success_sink)
            .into_iter()
            .map(|n| (n, reach[n].clone()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use batnet_config::{parse_device, Topology};
    use batnet_dataplane::{PacketVars, ReachAnalysis};
    use batnet_routing::{simulate, Environment, SimOptions};

    fn fixture() -> (
        Bdd,
        PacketVars,
        ForwardingGraph,
    ) {
        let devices: Vec<_> = [
            (
                "r1",
                "hostname r1\ninterface hosts\n ip address 10.1.0.1/24\n ip access-group EDGE in\ninterface core\n ip address 10.0.0.1/31\nip route 10.2.0.0/24 10.0.0.0\nip access-list extended EDGE\n 10 permit tcp any any eq 80\n 20 deny ip any any\n",
            ),
            (
                "r2",
                "hostname r2\ninterface core\n ip address 10.0.0.0/31\ninterface servers\n ip address 10.2.0.1/24\nip route 10.1.0.0/24 10.0.0.1\n",
            ),
        ]
        .iter()
        .map(|(n, t)| parse_device(n, t).0)
        .collect();
        let topo = Topology::infer(&devices);
        let dp = simulate(&devices, &Environment::none(), &SimOptions::default());
        let (mut bdd, vars) = PacketVars::new(0);
        let graph = ForwardingGraph::build(&mut bdd, &vars, &devices, &dp, &topo);
        (bdd, vars, graph)
    }

    #[test]
    fn atoms_partition_the_space() {
        let (mut bdd, _, graph) = fixture();
        let apt = AptEngine::build(&mut bdd, &graph).expect("no transform edges");
        assert!(apt.atoms.len() > 1);
        // Pairwise disjoint.
        for i in 0..apt.atoms.len() {
            for j in i + 1..apt.atoms.len() {
                assert_eq!(bdd.and(apt.atoms[i], apt.atoms[j]), NodeId::FALSE);
            }
        }
        // Cover TRUE.
        let mut all = NodeId::FALSE;
        for &a in &apt.atoms {
            all = bdd.or(all, a);
        }
        assert_eq!(all, NodeId::TRUE);
    }

    #[test]
    fn encode_decode_roundtrip_on_predicates() {
        let (mut bdd, _, graph) = fixture();
        let apt = AptEngine::build(&mut bdd, &graph).expect("no transform edges");
        // Every edge predicate must decode exactly (atoms distinguish all
        // predicates — the APT completeness property).
        for (eid, e) in graph.edges.iter().enumerate() {
            let EdgeLabel::Bdd(p) = e.label else { unreachable!() };
            let decoded = apt.decode(&mut bdd, &apt.edge_atoms[eid]);
            assert_eq!(decoded, p, "edge {eid}");
        }
    }

    #[test]
    fn apt_reachability_matches_bdd_engine() {
        let (mut bdd, _, graph) = fixture();
        let apt = AptEngine::build(&mut bdd, &graph).expect("no transform edges");
        // Same query both ways: everything from every source.
        let analysis = ReachAnalysis::new(&graph);
        let bdd_reach = analysis.forward_from_all_sources(&mut bdd, NodeId::TRUE);
        let apt_sinks = apt.dest_reachability(&graph);
        for (node, atomset) in apt_sinks {
            let decoded = apt.decode(&mut bdd, &atomset);
            // The BDD engine constrains bookkeeping bits at sources; APT
            // sees the raw header space. Compare after dropping those
            // bits from the BDD result — the graphs' packet behaviour
            // must agree exactly on header bits.
            let bdd_set = bdd_reach.at(node);
            // Quantify nothing: source edges add init-bits constraints to
            // both engines identically (the labels are shared), so direct
            // equality holds.
            assert_eq!(decoded, bdd_set, "sink {:?}", graph.nodes[node]);
        }
    }
}
