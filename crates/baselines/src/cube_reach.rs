//! A header-space forwarding analysis over cube sets — the NoD-era
//! verification backend stand-in for Figure 3.
//!
//! Feature scope is the *original* Batfish's: FIB forwarding and
//! interface ACLs. (No NAT, zones, or sessions — adding packet
//! transformations to custom header-space structures is exactly the
//! extension pain the paper cites from the Atomic Predicates line of
//! work.) The device walk mirrors `batnet-dataplane`'s graph semantics so
//! the two engines' answers are comparable on NAT-free networks.

use crate::cubes::CubeSet;
use batnet_config::vi::{AclAction, Device};
use batnet_config::{InterfaceRef, Topology};
use batnet_net::Ip;
use batnet_routing::{DataPlane, FibAction};
use std::collections::BTreeMap;

/// Where a propagated set ended up.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum CubeDisposition {
    /// Accepted at a device address.
    Accepted(String),
    /// Delivered onto a connected subnet.
    DeliveredToSubnet(String, String),
    /// Left the network.
    ExitsNetwork(String, String),
    /// Dropped (any reason).
    Dropped(String),
}

/// One edge of the cube-set dataflow graph.
struct CubeEdge {
    to: usize,
    set: CubeSet,
}

/// Node kinds are flattened: per device we keep an ingress node per
/// interface and terminal buckets.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Debug)]
enum Node {
    In(String, String),
    Terminal(CubeDisposition),
}

/// The cube-set engine.
pub struct CubeNetwork {
    nodes: Vec<Node>,
    edges: Vec<Vec<CubeEdge>>,
    index: BTreeMap<Node, usize>,
}

impl CubeNetwork {
    fn node(&mut self, n: Node) -> usize {
        if let Some(&i) = self.index.get(&n) {
            return i;
        }
        let i = self.nodes.len();
        self.nodes.push(n.clone());
        self.edges.push(Vec::new());
        self.index.insert(n, i);
        i
    }

    /// Builds the engine's network model.
    pub fn build(devices: &[Device], dp: &DataPlane, topo: &Topology) -> CubeNetwork {
        let mut net = CubeNetwork {
            nodes: Vec::new(),
            edges: Vec::new(),
            index: BTreeMap::new(),
        };
        for (di, device) in devices.iter().enumerate() {
            let ddp = &dp.devices[di];
            // Owned addresses.
            let mut owned = CubeSet::empty();
            for iface in device.active_interfaces() {
                if let Some(ip) = iface.ip() {
                    owned = owned.union(&CubeSet::dst_prefix(batnet_net::Prefix::host(ip)));
                }
            }
            // FIB buckets with LPM semantics.
            let mut order: Vec<usize> = (0..ddp.fib.entries().len()).collect();
            order.sort_by_key(|&i| std::cmp::Reverse(ddp.fib.entries()[i].prefix.len()));
            let mut claimed = CubeSet::empty();
            // (egress iface, gateway) → set
            let mut buckets: Vec<(String, Option<Ip>, CubeSet)> = Vec::new();
            let mut dropped = CubeSet::empty();
            for &ei in &order {
                let entry = &ddp.fib.entries()[ei];
                let p = CubeSet::dst_prefix(entry.prefix);
                let mine = p.subtract(&claimed);
                claimed = claimed.union(&p);
                if mine.is_empty() {
                    continue;
                }
                match &entry.action {
                    FibAction::Forward(hops) => {
                        for h in hops {
                            buckets.push((h.iface.clone(), h.gateway, mine.clone()));
                        }
                    }
                    _ => dropped = dropped.union(&mine),
                }
            }
            let no_route = CubeSet::any().subtract(&claimed);
            dropped = dropped.union(&no_route);

            for iface in device.active_interfaces() {
                let ingress = net.node(Node::In(device.name.clone(), iface.name.clone()));
                // Ingress ACL splits into drop + pass.
                let (pass, denied) = acl_split(device, iface.acl_in.as_deref());
                if !denied.is_empty() {
                    let t = net.node(Node::Terminal(CubeDisposition::Dropped(
                        device.name.clone(),
                    )));
                    net.edges[ingress].push(CubeEdge { to: t, set: denied });
                }
                // Accepted locally.
                let local = pass.intersect(&owned);
                if !local.is_empty() {
                    let t = net.node(Node::Terminal(CubeDisposition::Accepted(
                        device.name.clone(),
                    )));
                    net.edges[ingress].push(CubeEdge { to: t, set: local });
                }
                let transit = pass.subtract(&owned);
                // Per FIB bucket: egress ACL, then hand-off.
                for (oiface, gateway, set) in &buckets {
                    let mut out_set = transit.intersect(set);
                    if out_set.is_empty() {
                        continue;
                    }
                    let (opass, _odeny) = acl_split(
                        device,
                        device
                            .interfaces
                            .get(oiface)
                            .and_then(|i| i.acl_out.as_deref()),
                    );
                    let denied_out = out_set.subtract(&opass);
                    if !denied_out.is_empty() {
                        let t = net.node(Node::Terminal(CubeDisposition::Dropped(
                            device.name.clone(),
                        )));
                        net.edges[ingress].push(CubeEdge { to: t, set: denied_out });
                    }
                    out_set = out_set.intersect(&opass);
                    if out_set.is_empty() {
                        continue;
                    }
                    // Hand-off resolution mirrors the BDD graph.
                    let me = InterfaceRef::new(&device.name, oiface);
                    let neighbors = topo.neighbors_of(&me);
                    let mut receiver: Option<InterfaceRef> = None;
                    if let Some(gw) = gateway {
                        for nb in neighbors {
                            let owner = devices
                                .iter()
                                .find(|d| d.name == nb.device)
                                .and_then(|d| d.interfaces.get(&nb.interface))
                                .and_then(|i| i.ip());
                            if owner == Some(*gw) {
                                receiver = Some(nb.clone());
                                break;
                            }
                        }
                        let target = match receiver {
                            Some(nb) => net.node(Node::In(nb.device, nb.interface)),
                            None => net.node(Node::Terminal(if neighbors.is_empty() {
                                CubeDisposition::ExitsNetwork(device.name.clone(), oiface.clone())
                            } else {
                                CubeDisposition::Dropped(device.name.clone())
                            })),
                        };
                        net.edges[ingress].push(CubeEdge { to: target, set: out_set });
                    } else {
                        // Connected delivery: split per neighbor address,
                        // remainder to subnet hosts.
                        let mut remainder = out_set;
                        for nb in neighbors {
                            let Some(nb_ip) = devices
                                .iter()
                                .find(|d| d.name == nb.device)
                                .and_then(|d| d.interfaces.get(&nb.interface))
                                .and_then(|i| i.ip())
                            else {
                                continue;
                            };
                            let host = CubeSet::dst_prefix(batnet_net::Prefix::host(nb_ip));
                            let to_nb = remainder.intersect(&host);
                            if !to_nb.is_empty() {
                                let t = net.node(Node::In(nb.device.clone(), nb.interface.clone()));
                                net.edges[ingress].push(CubeEdge { to: t, set: to_nb });
                                remainder = remainder.subtract(&host);
                            }
                        }
                        if !remainder.is_empty() {
                            let subnet = device
                                .interfaces
                                .get(oiface)
                                .and_then(|i| i.connected_prefix());
                            let (on, off) = match subnet {
                                Some(p) => {
                                    let s = CubeSet::dst_prefix(p);
                                    (remainder.intersect(&s), remainder.subtract(&s))
                                }
                                None => (CubeSet::empty(), remainder),
                            };
                            if !on.is_empty() {
                                let t = net.node(Node::Terminal(
                                    CubeDisposition::DeliveredToSubnet(
                                        device.name.clone(),
                                        oiface.clone(),
                                    ),
                                ));
                                net.edges[ingress].push(CubeEdge { to: t, set: on });
                            }
                            if !off.is_empty() {
                                let t = net.node(Node::Terminal(CubeDisposition::ExitsNetwork(
                                    device.name.clone(),
                                    oiface.clone(),
                                )));
                                net.edges[ingress].push(CubeEdge { to: t, set: off });
                            }
                        }
                    }
                }
                // Transit traffic with no matching forward bucket drops.
                let no_fwd = transit.intersect(&dropped);
                if !no_fwd.is_empty() {
                    let t = net.node(Node::Terminal(CubeDisposition::Dropped(
                        device.name.clone(),
                    )));
                    net.edges[ingress].push(CubeEdge { to: t, set: no_fwd });
                }
            }
        }
        net
    }

    /// Forward propagation from `(device, iface)` with `set`. Returns the
    /// reach set per terminal disposition plus the peak cube count (the
    /// blow-up metric).
    pub fn reach(
        &self,
        device: &str,
        iface: &str,
        set: CubeSet,
    ) -> (BTreeMap<CubeDisposition, CubeSet>, usize) {
        let Some(&start) = self
            .index
            .get(&Node::In(device.to_string(), iface.to_string()))
        else {
            return (BTreeMap::new(), 0);
        };
        let mut reach: Vec<CubeSet> = vec![CubeSet::empty(); self.nodes.len()];
        reach[start] = set;
        let mut worklist = std::collections::BTreeSet::from([start]);
        let mut peak = 0usize;
        while let Some(n) = worklist.pop_first() {
            let current = reach[n].clone();
            peak = peak.max(current.cube_count());
            for edge in &self.edges[n] {
                let pushed = current.intersect(&edge.set);
                if pushed.is_empty() {
                    continue;
                }
                let new = reach[edge.to].union(&pushed);
                if new != reach[edge.to] {
                    // Progress check: strictly more coverage. Cube sets
                    // are not canonical, so compare via subtraction.
                    let gained = !pushed.subtract(&reach[edge.to]).is_empty();
                    reach[edge.to] = new;
                    if gained && !matches!(self.nodes[edge.to], Node::Terminal(_)) {
                        worklist.insert(edge.to);
                    }
                }
            }
        }
        let mut out: BTreeMap<CubeDisposition, CubeSet> = BTreeMap::new();
        for (i, node) in self.nodes.iter().enumerate() {
            if let Node::Terminal(d) = node {
                if !reach[i].is_empty() {
                    out.entry(d.clone())
                        .and_modify(|s| *s = s.union(&reach[i]))
                        .or_insert_with(|| reach[i].clone());
                }
            }
        }
        (out, peak)
    }

    /// Multipath consistency from one ingress: packets both delivered and
    /// dropped.
    pub fn multipath_inconsistency(&self, device: &str, iface: &str) -> CubeSet {
        let (dispositions, _) = self.reach(device, iface, CubeSet::any());
        let mut ok = CubeSet::empty();
        let mut bad = CubeSet::empty();
        for (d, s) in &dispositions {
            match d {
                CubeDisposition::Dropped(_) => bad = bad.union(s),
                _ => ok = ok.union(s),
            }
        }
        ok.intersect(&bad)
    }

    /// All ingress locations known to the engine.
    pub fn ingresses(&self) -> Vec<(String, String)> {
        self.nodes
            .iter()
            .filter_map(|n| match n {
                Node::In(d, i) => Some((d.clone(), i.clone())),
                _ => None,
            })
            .collect()
    }
}

fn acl_split(device: &Device, acl_name: Option<&str>) -> (CubeSet, CubeSet) {
    let Some(acl) = acl_name.and_then(|n| device.acls.get(n)) else {
        return (CubeSet::any(), CubeSet::empty());
    };
    let mut remaining = CubeSet::any();
    let mut permit = CubeSet::empty();
    for line in &acl.lines {
        let space = CubeSet::from_headerspace(&line.space);
        let hit = remaining.intersect(&space);
        if line.action == AclAction::Permit {
            permit = permit.union(&hit);
        }
        remaining = remaining.subtract(&space);
    }
    let deny = CubeSet::any().subtract(&permit);
    (permit, deny)
}

#[cfg(test)]
mod tests {
    use super::*;
    use batnet_config::parse_device;
    use batnet_net::Flow;
    use batnet_routing::{simulate, Environment, SimOptions};

    fn world(configs: &[(&str, &str)]) -> (Vec<Device>, DataPlane, Topology) {
        let devices: Vec<Device> = configs.iter().map(|(n, t)| parse_device(n, t).0).collect();
        let topo = Topology::infer(&devices);
        let dp = simulate(&devices, &Environment::none(), &SimOptions::default());
        (devices, dp, topo)
    }

    #[test]
    fn cube_engine_agrees_with_concrete_semantics() {
        let (devices, dp, topo) = world(&[
            (
                "r1",
                "hostname r1\ninterface hosts\n ip address 10.1.0.1/24\n ip access-group EDGE in\ninterface core\n ip address 10.0.0.1/31\nip route 10.2.0.0/24 10.0.0.0\nip access-list extended EDGE\n 10 permit tcp any any eq 80\n 20 deny ip any any\n",
            ),
            (
                "r2",
                "hostname r2\ninterface core\n ip address 10.0.0.0/31\ninterface servers\n ip address 10.2.0.1/24\nip route 10.1.0.0/24 10.0.0.1\n",
            ),
        ]);
        let net = CubeNetwork::build(&devices, &dp, &topo);
        let (dispositions, peak) = net.reach("r1", "hosts", CubeSet::any());
        assert!(peak > 0);
        let delivered = dispositions
            .get(&CubeDisposition::DeliveredToSubnet("r2".into(), "servers".into()))
            .expect("web traffic delivered");
        let web = Flow::tcp(
            "10.1.0.5".parse().unwrap(),
            999,
            "10.2.0.9".parse().unwrap(),
            80,
        );
        let ssh = Flow::tcp(
            "10.1.0.5".parse().unwrap(),
            999,
            "10.2.0.9".parse().unwrap(),
            22,
        );
        assert!(delivered.matches(&web));
        assert!(!delivered.matches(&ssh));
        let dropped = dispositions
            .get(&CubeDisposition::Dropped("r1".into()))
            .expect("non-web dropped");
        assert!(dropped.matches(&ssh));
    }

    #[test]
    fn consistent_network_has_no_inconsistency() {
        let (devices, dp, topo) = world(&[(
            "r1",
            "hostname r1\ninterface lan\n ip address 10.0.0.1/24\nip route 0.0.0.0/0 null0\n",
        )]);
        let net = CubeNetwork::build(&devices, &dp, &topo);
        let bad = net.multipath_inconsistency("r1", "lan");
        assert!(bad.is_empty());
    }
}
