//! # batnet-baselines — the comparison engines the paper measures against
//!
//! Two verification backends reproduce the paper's performance
//! comparisons:
//!
//! * [`cubes`] — a difference-of-cubes header-space engine in the style of
//!   HSA, standing in for the original NoD/Z3 backend in the Figure 3
//!   verification comparison. It models the original feature set (FIBs
//!   and ACLs; no NAT, zones, or sessions — historically accurate for the
//!   original Batfish, and documented in DESIGN.md).
//! * [`apt`] — Atomic Predicates (Yang & Lam): partition the header space
//!   into the coarsest atoms distinguishing all edge predicates, then
//!   propagate *integer sets* of atom ids. The §6.2 comparison point: the
//!   92-node network where the paper's BDD engine builds and queries
//!   almost two orders of magnitude faster.

pub mod apt;
pub mod cube_reach;
pub mod cubes;

pub use apt::AptEngine;
pub use cube_reach::{CubeDisposition, CubeNetwork};
pub use cubes::{Cube, CubeSet};
