//! Difference-of-cubes packet sets (the HSA representation).
//!
//! A [`Cube`] is a ternary match over the 128-bit header: a mask selects
//! the constrained bits, a value gives them. A [`CubeSet`] is a union of
//! cubes. Intersection distributes pairwise; complement/difference
//! expands a cube into up to one cube per constrained bit. The expansion
//! is the representation's fundamental weakness — exactly the cost the
//! paper's Lesson 2 says BDD canonicity avoids — and the Figure 3
//! benchmark measures it.
//!
//! Header layout (MSB→LSB within the u128, mirroring the BDD field
//! order): dstIP(32) srcIP(32) dstPort(16) srcPort(16) icmpCode(8)
//! icmpType(8) proto(8) tcpFlags(8).

use batnet_net::{Flow, HeaderSpace, IpRange, PortRange};

/// Bit offset (from the MSB) of each field.
const DST_IP: u32 = 0;
const SRC_IP: u32 = 32;
const DST_PORT: u32 = 64;
const SRC_PORT: u32 = 80;
const ICMP_CODE: u32 = 96;
const ICMP_TYPE: u32 = 104;
const PROTO: u32 = 112;
const FLAGS: u32 = 120;

/// A ternary cube: `mask` bits are constrained to `value` bits.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Cube {
    /// Constrained-bit mask (1 = constrained).
    pub mask: u128,
    /// Values of constrained bits (0 elsewhere).
    pub value: u128,
}

impl Cube {
    /// The unconstrained cube (all packets).
    pub const ANY: Cube = Cube { mask: 0, value: 0 };

    /// Constrains `bits` bits of a field starting `offset` bits from the
    /// MSB to the top `bits` of `value`'s low `width` bits.
    fn with_field(self, offset: u32, width: u32, value: u64, fixed: u32) -> Cube {
        let mut c = self;
        for i in 0..fixed {
            let bit = (value >> (width - 1 - i)) & 1;
            let pos = 127 - (offset + i);
            c.mask |= 1 << pos;
            if bit == 1 {
                c.value |= 1 << pos;
            } else {
                c.value &= !(1 << pos);
            }
        }
        c
    }

    /// Do the two cubes share any packet?
    pub fn intersects(&self, other: &Cube) -> bool {
        let common = self.mask & other.mask;
        (self.value ^ other.value) & common == 0
    }

    /// Intersection, or `None` when disjoint.
    pub fn intersect(&self, other: &Cube) -> Option<Cube> {
        if !self.intersects(other) {
            return None;
        }
        Some(Cube {
            mask: self.mask | other.mask,
            value: (self.value & self.mask) | (other.value & other.mask),
        })
    }

    /// Is `self` entirely within `other`?
    pub fn subset_of(&self, other: &Cube) -> bool {
        other.mask & !self.mask == 0
            && (self.value ^ other.value) & other.mask == 0
    }

    /// `self ∖ other` as a set of disjoint cubes (one per bit of `other`
    /// not already fixed oppositely).
    pub fn subtract(&self, other: &Cube) -> Vec<Cube> {
        if !self.intersects(other) {
            return vec![*self];
        }
        let mut out = Vec::new();
        let mut prefix = *self;
        // For every bit constrained by `other` but free or agreeing in
        // `self`, split off the cube that disagrees on that bit.
        for pos in (0..128u32).rev() {
            let bit = 1u128 << pos;
            if other.mask & bit == 0 {
                continue;
            }
            if prefix.mask & bit != 0 {
                // Already fixed: if it agrees, continue narrowing; if it
                // disagrees we'd have been disjoint.
                continue;
            }
            let mut flipped = prefix;
            flipped.mask |= bit;
            if other.value & bit == 0 {
                flipped.value |= bit;
            }
            out.push(flipped);
            prefix.mask |= bit;
            prefix.value = (prefix.value & !bit) | (other.value & bit);
        }
        out
    }

    /// Does the cube match a concrete flow?
    pub fn matches(&self, f: &Flow) -> bool {
        let packed = pack_flow(f);
        (packed ^ self.value) & self.mask == 0
    }
}

/// Packs a flow into the 128-bit header layout.
pub fn pack_flow(f: &Flow) -> u128 {
    let mut v: u128 = 0;
    v |= (f.dst_ip.0 as u128) << (128 - DST_IP - 32);
    v |= (f.src_ip.0 as u128) << (128 - SRC_IP - 32);
    v |= (f.dst_port as u128) << (128 - DST_PORT - 16);
    v |= (f.src_port as u128) << (128 - SRC_PORT - 16);
    v |= (f.icmp_code as u128) << (128 - ICMP_CODE - 8);
    v |= (f.icmp_type as u128) << (128 - ICMP_TYPE - 8);
    v |= (f.protocol.number() as u128) << (128 - PROTO - 8);
    v |= (f.tcp_flags.0 as u128) << (128 - FLAGS - 8);
    v
}

/// A union of cubes.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct CubeSet {
    /// The cubes (not necessarily disjoint).
    pub cubes: Vec<Cube>,
}

impl CubeSet {
    /// The empty set.
    pub fn empty() -> CubeSet {
        CubeSet { cubes: Vec::new() }
    }

    /// The universe.
    pub fn any() -> CubeSet {
        CubeSet {
            cubes: vec![Cube::ANY],
        }
    }

    /// Is the set empty?
    pub fn is_empty(&self) -> bool {
        self.cubes.is_empty()
    }

    /// Number of cubes held (the blow-up metric).
    pub fn cube_count(&self) -> usize {
        self.cubes.len()
    }

    /// Union (concatenation with subsumption pruning).
    pub fn union(&self, other: &CubeSet) -> CubeSet {
        let mut cubes = self.cubes.clone();
        for c in &other.cubes {
            if !cubes.iter().any(|have| c.subset_of(have)) {
                cubes.retain(|have| !have.subset_of(c));
                cubes.push(*c);
            }
        }
        CubeSet { cubes }
    }

    /// Intersection (pairwise).
    pub fn intersect(&self, other: &CubeSet) -> CubeSet {
        let mut cubes = Vec::new();
        for a in &self.cubes {
            for b in &other.cubes {
                if let Some(c) = a.intersect(b) {
                    if !cubes.iter().any(|have| c.subset_of(have)) {
                        cubes.push(c);
                    }
                }
            }
        }
        CubeSet { cubes }
    }

    /// Difference: subtract every cube of `other` from every cube of
    /// `self` (the expansion the representation pays for).
    pub fn subtract(&self, other: &CubeSet) -> CubeSet {
        let mut current = self.cubes.clone();
        for b in &other.cubes {
            let mut next = Vec::new();
            for a in current {
                next.extend(a.subtract(b));
            }
            current = next;
        }
        // Prune subsumed cubes to keep growth in check.
        let mut pruned: Vec<Cube> = Vec::new();
        for c in current {
            if !pruned.iter().any(|have| c.subset_of(have)) {
                pruned.retain(|have| !have.subset_of(&c));
                pruned.push(c);
            }
        }
        CubeSet { cubes: pruned }
    }

    /// Membership of a concrete flow.
    pub fn matches(&self, f: &Flow) -> bool {
        self.cubes.iter().any(|c| c.matches(f))
    }

    /// Compiles a header space: the product of per-field unions.
    pub fn from_headerspace(hs: &HeaderSpace) -> CubeSet {
        let mut acc = CubeSet::any();
        let field_union = |offset: u32, width: u32, blocks: Vec<(u64, u32)>| -> CubeSet {
            CubeSet {
                cubes: blocks
                    .into_iter()
                    .map(|(value, fixed)| Cube::ANY.with_field(offset, width, value, fixed))
                    .collect(),
            }
        };
        let ip_blocks = |ranges: &[IpRange]| -> Vec<(u64, u32)> {
            ranges
                .iter()
                .flat_map(|r| r.to_prefixes())
                .map(|p| (p.network().0 as u64, p.len() as u32))
                .collect()
        };
        let port_blocks = |ranges: &[PortRange]| -> Vec<(u64, u32)> {
            ranges
                .iter()
                .flat_map(|r| r.to_masked_blocks())
                .map(|(v, l)| (v as u64, l as u32))
                .collect()
        };
        if !hs.dst_ips.is_empty() {
            acc = acc.intersect(&field_union(DST_IP, 32, ip_blocks(&hs.dst_ips)));
        }
        if !hs.src_ips.is_empty() {
            acc = acc.intersect(&field_union(SRC_IP, 32, ip_blocks(&hs.src_ips)));
        }
        if !hs.protocols.is_empty() {
            let blocks = hs.protocols.iter().map(|p| (p.number() as u64, 8)).collect();
            acc = acc.intersect(&field_union(PROTO, 8, blocks));
        }
        if !hs.dst_ports.is_empty() || !hs.src_ports.is_empty() {
            // Ports imply TCP or UDP.
            let tcpudp = field_union(PROTO, 8, vec![(6, 8), (17, 8)]);
            acc = acc.intersect(&tcpudp);
        }
        if !hs.dst_ports.is_empty() {
            acc = acc.intersect(&field_union(DST_PORT, 16, port_blocks(&hs.dst_ports)));
        }
        if !hs.src_ports.is_empty() {
            acc = acc.intersect(&field_union(SRC_PORT, 16, port_blocks(&hs.src_ports)));
        }
        if !hs.icmp_types.is_empty() || !hs.icmp_codes.is_empty() {
            acc = acc.intersect(&field_union(PROTO, 8, vec![(1, 8)]));
        }
        if !hs.icmp_types.is_empty() {
            let blocks = hs.icmp_types.iter().map(|&t| (t as u64, 8)).collect();
            acc = acc.intersect(&field_union(ICMP_TYPE, 8, blocks));
        }
        if !hs.icmp_codes.is_empty() {
            let blocks = hs.icmp_codes.iter().map(|&c| (c as u64, 8)).collect();
            acc = acc.intersect(&field_union(ICMP_CODE, 8, blocks));
        }
        // TCP flag constraints imply TCP; set/unset bits are single-bit
        // constraints; `established` (ACK∨RST) is a two-cube union.
        if hs.tcp_flags_set.is_some() || hs.tcp_flags_unset.is_some() || hs.established {
            acc = acc.intersect(&field_union(PROTO, 8, vec![(6, 8)]));
        }
        if let Some(set) = hs.tcp_flags_set {
            for i in 0..8u32 {
                if set.bit(i as u8) {
                    acc = acc.intersect(&CubeSet {
                        cubes: vec![bit_cube(FLAGS + 7 - i, true)],
                    });
                }
            }
        }
        if let Some(unset) = hs.tcp_flags_unset {
            for i in 0..8u32 {
                if unset.bit(i as u8) {
                    acc = acc.intersect(&CubeSet {
                        cubes: vec![bit_cube(FLAGS + 7 - i, false)],
                    });
                }
            }
        }
        if hs.established {
            // ACK (bit 4) or RST (bit 2) set.
            acc = acc.intersect(&CubeSet {
                cubes: vec![bit_cube(FLAGS + 7 - 4, true), bit_cube(FLAGS + 7 - 2, true)],
            });
        }
        acc
    }

    /// A cube set for a destination prefix.
    pub fn dst_prefix(p: batnet_net::Prefix) -> CubeSet {
        CubeSet {
            cubes: vec![Cube::ANY.with_field(DST_IP, 32, p.network().0 as u64, p.len() as u32)],
        }
    }
}

fn bit_cube(offset_from_msb: u32, set: bool) -> Cube {
    let pos = 127 - offset_from_msb;
    Cube {
        mask: 1 << pos,
        value: if set { 1 << pos } else { 0 },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use batnet_net::{Ip, IpProtocol, Prefix, Rng, TcpFlags};

    #[test]
    fn cube_intersection_and_subset() {
        let a = Cube::ANY.with_field(DST_IP, 32, 0x0a000000, 8); // 10/8
        let b = Cube::ANY.with_field(DST_IP, 32, 0x0a010000, 16); // 10.1/16
        assert!(b.subset_of(&a));
        assert!(!a.subset_of(&b));
        let i = a.intersect(&b).unwrap();
        assert_eq!(i, b);
        let c = Cube::ANY.with_field(DST_IP, 32, 0x0b000000, 8); // 11/8
        assert!(a.intersect(&c).is_none());
    }

    #[test]
    fn cube_subtract_covers_exactly() {
        let a = Cube::ANY.with_field(DST_IP, 32, 0x0a000000, 8); // 10/8
        let b = Cube::ANY.with_field(DST_IP, 32, 0x0a010000, 16); // 10.1/16
        let diff = a.subtract(&b);
        // Every flow in 10/8 but not 10.1/16 is in the diff; nothing else.
        let inside = Flow::icmp_echo(Ip::new(1, 1, 1, 1), Ip::new(10, 2, 0, 1));
        let removed = Flow::icmp_echo(Ip::new(1, 1, 1, 1), Ip::new(10, 1, 0, 1));
        let outside = Flow::icmp_echo(Ip::new(1, 1, 1, 1), Ip::new(11, 0, 0, 1));
        assert!(diff.iter().any(|c| c.matches(&inside)));
        assert!(!diff.iter().any(|c| c.matches(&removed)));
        assert!(!diff.iter().any(|c| c.matches(&outside)));
        // Disjoint subtraction is identity.
        let c = Cube::ANY.with_field(DST_IP, 32, 0x0b000000, 8);
        assert_eq!(a.subtract(&c), vec![a]);
    }

    #[test]
    fn headerspace_compilation_matches_concrete() {
        let hs = HeaderSpace::any()
            .dst_prefix("10.0.3.0/24".parse::<Prefix>().unwrap())
            .protocol(IpProtocol::Tcp)
            .dst_port(80);
        let set = CubeSet::from_headerspace(&hs);
        let hit = Flow::tcp(Ip::new(1, 1, 1, 1), 999, Ip::new(10, 0, 3, 9), 80);
        let miss_port = Flow::tcp(Ip::new(1, 1, 1, 1), 999, Ip::new(10, 0, 3, 9), 81);
        let miss_proto = Flow::udp(Ip::new(1, 1, 1, 1), 999, Ip::new(10, 0, 3, 9), 80);
        assert_eq!(set.matches(&hit), hs.matches(&hit));
        assert_eq!(set.matches(&miss_port), hs.matches(&miss_port));
        assert_eq!(set.matches(&miss_proto), hs.matches(&miss_proto));
    }

    #[test]
    fn established_two_cubes() {
        let hs = HeaderSpace {
            established: true,
            ..HeaderSpace::default()
        };
        let set = CubeSet::from_headerspace(&hs);
        let mut ack = Flow::tcp(Ip::new(1, 1, 1, 1), 1, Ip::new(2, 2, 2, 2), 80);
        ack.tcp_flags = TcpFlags::ACK;
        let syn = Flow::tcp(Ip::new(1, 1, 1, 1), 1, Ip::new(2, 2, 2, 2), 80);
        assert!(set.matches(&ack));
        assert!(!set.matches(&syn));
    }

    /// Set algebra laws checked against concrete membership, over
    /// seeded random prefixes and probe flows.
    #[test]
    fn cube_set_algebra() {
        for case in 0..128u64 {
            let mut rng = Rng::new(0xC0BE_5E7 ^ case);
            let dst = rng.next_u32();
            let p1 = rng.below(25) as u8;
            let p2 = rng.below(25) as u8;
            let probe = rng.next_u32();
            let a = CubeSet::dst_prefix(Prefix::new(Ip(dst), p1));
            let b = CubeSet::dst_prefix(Prefix::new(Ip(dst), p2));
            let f = Flow::icmp_echo(Ip::new(1, 1, 1, 1), Ip(probe));
            let in_a = a.matches(&f);
            let in_b = b.matches(&f);
            assert_eq!(a.union(&b).matches(&f), in_a || in_b, "case {case}");
            assert_eq!(a.intersect(&b).matches(&f), in_a && in_b, "case {case}");
            assert_eq!(a.subtract(&b).matches(&f), in_a && !in_b, "case {case}");
        }
    }
}
