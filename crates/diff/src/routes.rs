//! Layer 2: control-plane diff — per-device RIB and FIB deltas computed
//! from the two simulated data planes.
//!
//! Devices present in only one snapshot are *not* enumerated route by
//! route here (the structural layer already reports the device itself);
//! they still count as changed devices so the data-plane layer explores
//! flows toward them.

use batnet_routing::{DataPlane, FibAction, FibEntry, MainRoute};
use batnet_net::Prefix;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// How a route changed.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RouteChangeKind {
    /// Prefix present only after.
    Added,
    /// Prefix present only before.
    Withdrawn,
    /// Prefix present in both with different routes (next hop, metric,
    /// protocol, or ECMP set).
    Changed,
}

impl fmt::Display for RouteChangeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            RouteChangeKind::Added => "added",
            RouteChangeKind::Withdrawn => "withdrawn",
            RouteChangeKind::Changed => "changed",
        };
        write!(f, "{s}")
    }
}

/// One per-device route delta, in either the RIB or the FIB layer.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct RouteChange {
    /// Device name.
    pub device: String,
    /// `"rib"` or `"fib"`.
    pub layer: &'static str,
    /// Destination prefix.
    pub prefix: Prefix,
    /// Added / withdrawn / changed.
    pub kind: RouteChangeKind,
    /// Rendered before state (absent for additions).
    pub before: Option<String>,
    /// Rendered after state (absent for withdrawals).
    pub after: Option<String>,
}

/// The control-plane layer of a snapshot diff.
#[derive(Clone, Default, Debug)]
pub struct RouteDiff {
    /// Detailed changes (capped; see `truncated`).
    pub changes: Vec<RouteChange>,
    /// Total RIB prefix deltas across devices (uncapped count).
    pub total_rib_changes: usize,
    /// Total FIB prefix deltas across devices (uncapped count).
    pub total_fib_changes: usize,
    /// How many detailed changes were dropped to honor the cap.
    pub truncated: usize,
    /// Every device with any RIB/FIB delta, plus devices present in only
    /// one data plane — the seed set for data-plane cone pruning.
    pub changed_devices: BTreeSet<String>,
}

impl RouteDiff {
    /// No route deltas anywhere?
    pub fn is_empty(&self) -> bool {
        self.total_rib_changes == 0 && self.total_fib_changes == 0 && self.changed_devices.is_empty()
    }

    /// Total delta count across layers.
    pub fn change_count(&self) -> usize {
        self.total_rib_changes + self.total_fib_changes
    }
}

/// Renders the best-route run for one RIB prefix.
fn render_rib(routes: &[MainRoute]) -> String {
    routes.iter().map(MainRoute::to_string).collect::<Vec<_>>().join(" | ")
}

/// Renders one FIB entry (no Display on the routing type; the diff keeps
/// its own stable textual form).
fn render_fib(e: &FibEntry) -> String {
    let action = match &e.action {
        FibAction::Forward(hops) => {
            let rendered: Vec<String> = hops
                .iter()
                .map(|h| match h.gateway {
                    Some(gw) => format!("via {gw} ({})", h.iface),
                    None => format!("directly connected ({})", h.iface),
                })
                .collect();
            rendered.join(", ")
        }
        FibAction::Discard => "discard".to_string(),
        FibAction::Unresolved => "unresolved".to_string(),
    };
    format!("{action} [{}]", e.protocol)
}

/// Merge-joins two prefix-keyed rendered maps into changes.
fn diff_prefix_maps(
    device: &str,
    layer: &'static str,
    before: &BTreeMap<Prefix, String>,
    after: &BTreeMap<Prefix, String>,
    out: &mut Vec<RouteChange>,
) -> usize {
    let mut n = 0;
    for (p, vb) in before {
        match after.get(p) {
            None => {
                n += 1;
                out.push(RouteChange {
                    device: device.to_string(),
                    layer,
                    prefix: *p,
                    kind: RouteChangeKind::Withdrawn,
                    before: Some(vb.clone()),
                    after: None,
                });
            }
            Some(va) if va != vb => {
                n += 1;
                out.push(RouteChange {
                    device: device.to_string(),
                    layer,
                    prefix: *p,
                    kind: RouteChangeKind::Changed,
                    before: Some(vb.clone()),
                    after: Some(va.clone()),
                });
            }
            Some(_) => {}
        }
    }
    for (p, va) in after {
        if !before.contains_key(p) {
            n += 1;
            out.push(RouteChange {
                device: device.to_string(),
                layer,
                prefix: *p,
                kind: RouteChangeKind::Added,
                before: None,
                after: Some(va.clone()),
            });
        }
    }
    n
}

/// Diffs two data planes device by device. `max_changes` caps the
/// *detailed* change list; totals and the changed-device set are always
/// complete.
pub fn diff_routes(before: &DataPlane, after: &DataPlane, max_changes: usize) -> RouteDiff {
    let b: BTreeMap<&str, usize> = before
        .devices
        .iter()
        .enumerate()
        .map(|(i, d)| (d.name.as_str(), i))
        .collect();
    let a: BTreeMap<&str, usize> = after
        .devices
        .iter()
        .enumerate()
        .map(|(i, d)| (d.name.as_str(), i))
        .collect();
    let mut diff = RouteDiff::default();
    let mut detailed: Vec<RouteChange> = Vec::new();
    for (name, &ib) in &b {
        let Some(&ia) = a.get(name) else {
            diff.changed_devices.insert((*name).to_string());
            continue;
        };
        let db = &before.devices[ib];
        let da = &after.devices[ia];
        // RIB layer: the best-route run per prefix.
        let rib_b: BTreeMap<Prefix, String> =
            db.main_rib.iter_best().map(|(p, rs)| (*p, render_rib(rs))).collect();
        let rib_a: BTreeMap<Prefix, String> =
            da.main_rib.iter_best().map(|(p, rs)| (*p, render_rib(rs))).collect();
        let rib_n = diff_prefix_maps(name, "rib", &rib_b, &rib_a, &mut detailed);
        // FIB layer: one rendered action per prefix.
        let fib_b: BTreeMap<Prefix, String> =
            db.fib.entries().iter().map(|e| (e.prefix, render_fib(e))).collect();
        let fib_a: BTreeMap<Prefix, String> =
            da.fib.entries().iter().map(|e| (e.prefix, render_fib(e))).collect();
        let fib_n = diff_prefix_maps(name, "fib", &fib_b, &fib_a, &mut detailed);
        diff.total_rib_changes += rib_n;
        diff.total_fib_changes += fib_n;
        if rib_n + fib_n > 0 {
            diff.changed_devices.insert((*name).to_string());
        }
    }
    for name in a.keys() {
        if !b.contains_key(name) {
            diff.changed_devices.insert((*name).to_string());
        }
    }
    detailed.sort_by(|x, y| {
        (x.device.as_str(), x.layer, x.prefix).cmp(&(y.device.as_str(), y.layer, y.prefix))
    });
    if detailed.len() > max_changes {
        diff.truncated = detailed.len() - max_changes;
        detailed.truncate(max_changes);
    }
    diff.changes = detailed;
    diff
}

#[cfg(test)]
mod tests {
    use super::*;
    use batnet_config::parse_device;
    use batnet_routing::{simulate, Environment, SimOptions};

    fn dp(configs: &[(&str, &str)]) -> DataPlane {
        let devices: Vec<_> = configs.iter().map(|(n, t)| parse_device(n, t).0).collect();
        simulate(&devices, &Environment::none(), &SimOptions::default())
    }

    #[test]
    fn self_diff_is_empty() {
        let d = dp(&[(
            "r1",
            "hostname r1\ninterface e0\n ip address 10.0.0.1/24\nip route 10.9.0.0/24 10.0.0.2\n",
        )]);
        let diff = diff_routes(&d, &d, 100);
        assert!(diff.is_empty(), "{:?}", diff.changes);
    }

    #[test]
    fn static_route_removal_is_withdrawal_both_layers() {
        let before = dp(&[(
            "r1",
            "hostname r1\ninterface e0\n ip address 10.0.0.1/24\nip route 10.9.0.0/24 10.0.0.2\n",
        )]);
        let after = dp(&[("r1", "hostname r1\ninterface e0\n ip address 10.0.0.1/24\n")]);
        let fwd = diff_routes(&before, &after, 100);
        assert_eq!(fwd.total_rib_changes, 1);
        assert_eq!(fwd.total_fib_changes, 1);
        assert!(fwd
            .changes
            .iter()
            .all(|c| c.kind == RouteChangeKind::Withdrawn && c.device == "r1"));
        assert!(fwd.changed_devices.contains("r1"));
        // Swapping sides swaps withdrawn <-> added exactly.
        let rev = diff_routes(&after, &before, 100);
        assert_eq!(rev.change_count(), fwd.change_count());
        assert!(rev.changes.iter().all(|c| c.kind == RouteChangeKind::Added));
    }
}
