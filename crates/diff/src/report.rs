//! Rendering: deterministic text and JSON forms of a [`SnapshotDiff`],
//! plus a minimal validator for the JSON schema (`batnet-diff-1`).
//!
//! Both renderers iterate already-sorted structures and never consult
//! clocks or randomness, so the same diff always renders byte-identical
//! output — the CI determinism gate stands on this.

use crate::{QuarantinedDevice, SnapshotDiff};
use batnet_config::vi::SourceSpan;
use batnet_obs::json::{write_str, Value};
use std::fmt::Write as _;

/// The JSON schema identifier emitted and accepted by this version.
pub const SCHEMA: &str = "batnet-diff-1";

fn render_span(s: &Option<SourceSpan>) -> String {
    match s {
        Some(s) if s.is_known() => format!("{}:{}", s.file, s.line),
        _ => "?".to_string(),
    }
}

fn indent(text: &str, pad: &str) -> String {
    text.lines().map(|l| format!("{pad}{l}\n")).collect()
}

/// Renders the human-readable report.
pub fn render_text(diff: &SnapshotDiff) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "batnet-diff: {} structural, {} route, {} changed-start(s)",
        diff.structural.change_count(),
        diff.routes.change_count(),
        diff.reach.changed_starts,
    );
    if diff.is_empty() {
        let _ = writeln!(out, "no differences");
    }
    if !diff.structural.is_empty() {
        let _ = writeln!(out, "\n== structural ==");
        for d in &diff.structural.devices_removed {
            let _ = writeln!(out, "- device {d}");
        }
        for d in &diff.structural.devices_added {
            let _ = writeln!(out, "+ device {d}");
        }
        for c in &diff.structural.changes {
            let _ = writeln!(
                out,
                "{}: {} {} ({}) [{} -> {}]",
                c.device,
                c.path,
                c.kind,
                c.detail,
                render_span(&c.before_src),
                render_span(&c.after_src),
            );
        }
    }
    if !diff.routes.is_empty() {
        let _ = writeln!(out, "\n== control plane ==");
        let _ = writeln!(
            out,
            "{} RIB / {} FIB prefix deltas across {} device(s)",
            diff.routes.total_rib_changes,
            diff.routes.total_fib_changes,
            diff.routes.changed_devices.len(),
        );
        for c in &diff.routes.changes {
            let detail = match (&c.before, &c.after) {
                (Some(b), Some(a)) => format!("{b}  ->  {a}"),
                (Some(b), None) => b.clone(),
                (None, Some(a)) => a.clone(),
                (None, None) => String::new(),
            };
            let _ = writeln!(out, "{} {} {} {}: {detail}", c.device, c.layer, c.prefix, c.kind);
        }
        if diff.routes.truncated > 0 {
            let _ = writeln!(out, "({} more route deltas not shown)", diff.routes.truncated);
        }
    }
    {
        let r = &diff.reach;
        let _ = writeln!(out, "\n== data plane ==");
        if r.skipped_equivalent {
            let _ = writeln!(
                out,
                "skipped: config and control-plane layers are identical, so the \
                 forwarding graphs are equal by construction"
            );
        } else {
            let _ = writeln!(
                out,
                "{} start location(s), {} compared (cone-pruned), {} changed",
                r.starts_total, r.starts_compared, r.changed_starts
            );
            for d in &r.deltas {
                let _ = writeln!(out, "{}/{} {}: {}", d.device, d.iface, d.direction, d.flow);
                let _ = writeln!(out, "  before: {}", d.before_disposition);
                out.push_str(&indent(&d.before_trace, "    "));
                let _ = writeln!(out, "  after:  {}", d.after_disposition);
                out.push_str(&indent(&d.after_trace, "    "));
            }
            if r.truncated {
                let _ = writeln!(out, "(more changed flows not shown)");
            }
        }
    }
    let quarantined = !diff.quarantined_before.is_empty() || !diff.quarantined_after.is_empty();
    if quarantined {
        let _ = writeln!(out, "\n== quarantined (excluded from the comparison) ==");
        for (side, list) in [("before", &diff.quarantined_before), ("after", &diff.quarantined_after)]
        {
            for q in list.iter() {
                let _ = writeln!(out, "{side}: {} at {} ({})", q.device, q.stage, q.code);
            }
        }
    }
    out
}

fn write_quarantine_list(out: &mut String, list: &[QuarantinedDevice]) {
    out.push('[');
    for (i, q) in list.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"device\":");
        write_str(out, &q.device);
        out.push_str(",\"stage\":");
        write_str(out, &q.stage);
        out.push_str(",\"code\":");
        write_str(out, &q.code);
        out.push('}');
    }
    out.push(']');
}

fn write_opt_str(out: &mut String, v: &Option<String>) {
    match v {
        Some(s) => write_str(out, s),
        None => out.push_str("null"),
    }
}

fn write_opt_span(out: &mut String, v: &Option<SourceSpan>) {
    match v {
        Some(s) => {
            out.push_str("{\"file\":");
            write_str(out, &s.file);
            let _ = write!(out, ",\"line\":{}}}", s.line);
        }
        None => out.push_str("null"),
    }
}

/// Renders the machine-readable report (schema `batnet-diff-1`).
pub fn render_json(diff: &SnapshotDiff) -> String {
    let mut o = String::with_capacity(4096);
    o.push_str("{\"schema\":");
    write_str(&mut o, SCHEMA);
    let _ = write!(
        o,
        ",\"summary\":{{\"empty\":{},\"structural_changes\":{},\"route_changes\":{},\
         \"changed_starts\":{},\"flow_deltas\":{},\"quarantined_before\":{},\
         \"quarantined_after\":{}}}",
        diff.is_empty(),
        diff.structural.change_count(),
        diff.routes.change_count(),
        diff.reach.changed_starts,
        diff.reach.deltas.len(),
        diff.quarantined_before.len(),
        diff.quarantined_after.len(),
    );

    o.push_str(",\"structural\":{\"devices_added\":[");
    for (i, d) in diff.structural.devices_added.iter().enumerate() {
        if i > 0 {
            o.push(',');
        }
        write_str(&mut o, d);
    }
    o.push_str("],\"devices_removed\":[");
    for (i, d) in diff.structural.devices_removed.iter().enumerate() {
        if i > 0 {
            o.push(',');
        }
        write_str(&mut o, d);
    }
    o.push_str("],\"changes\":[");
    for (i, c) in diff.structural.changes.iter().enumerate() {
        if i > 0 {
            o.push(',');
        }
        o.push_str("{\"device\":");
        write_str(&mut o, &c.device);
        o.push_str(",\"path\":");
        write_str(&mut o, &c.path);
        o.push_str(",\"kind\":");
        write_str(&mut o, &c.kind.to_string());
        o.push_str(",\"detail\":");
        write_str(&mut o, &c.detail);
        o.push_str(",\"before_src\":");
        write_opt_span(&mut o, &c.before_src);
        o.push_str(",\"after_src\":");
        write_opt_span(&mut o, &c.after_src);
        o.push('}');
    }
    o.push_str("]}");

    let _ = write!(
        o,
        ",\"routes\":{{\"total_rib_changes\":{},\"total_fib_changes\":{},\"truncated\":{},\
         \"changes\":[",
        diff.routes.total_rib_changes, diff.routes.total_fib_changes, diff.routes.truncated,
    );
    for (i, c) in diff.routes.changes.iter().enumerate() {
        if i > 0 {
            o.push(',');
        }
        o.push_str("{\"device\":");
        write_str(&mut o, &c.device);
        o.push_str(",\"layer\":");
        write_str(&mut o, c.layer);
        o.push_str(",\"prefix\":");
        write_str(&mut o, &c.prefix.to_string());
        o.push_str(",\"kind\":");
        write_str(&mut o, &c.kind.to_string());
        o.push_str(",\"before\":");
        write_opt_str(&mut o, &c.before);
        o.push_str(",\"after\":");
        write_opt_str(&mut o, &c.after);
        o.push('}');
    }
    o.push_str("]}");

    let r = &diff.reach;
    let _ = write!(
        o,
        ",\"reach\":{{\"starts_total\":{},\"starts_compared\":{},\"changed_starts\":{},\
         \"truncated\":{},\"skipped_equivalent\":{},\"deltas\":[",
        r.starts_total, r.starts_compared, r.changed_starts, r.truncated, r.skipped_equivalent,
    );
    for (i, d) in r.deltas.iter().enumerate() {
        if i > 0 {
            o.push(',');
        }
        o.push_str("{\"device\":");
        write_str(&mut o, &d.device);
        o.push_str(",\"iface\":");
        write_str(&mut o, &d.iface);
        o.push_str(",\"direction\":");
        write_str(&mut o, &d.direction.to_string());
        o.push_str(",\"flow\":");
        write_str(&mut o, &d.flow);
        o.push_str(",\"before_disposition\":");
        write_str(&mut o, &d.before_disposition);
        o.push_str(",\"after_disposition\":");
        write_str(&mut o, &d.after_disposition);
        o.push_str(",\"before_trace\":");
        write_str(&mut o, &d.before_trace);
        o.push_str(",\"after_trace\":");
        write_str(&mut o, &d.after_trace);
        o.push('}');
    }
    o.push_str("]}");

    o.push_str(",\"quarantined_before\":");
    write_quarantine_list(&mut o, &diff.quarantined_before);
    o.push_str(",\"quarantined_after\":");
    write_quarantine_list(&mut o, &diff.quarantined_after);
    o.push_str("}\n");
    o
}

/// Validates a parsed `batnet-diff-1` document: schema tag, required
/// sections, and the summary's cross-checks against the section bodies.
pub fn validate(v: &Value) -> Result<(), String> {
    let Value::Obj(top) = v else {
        return Err("top level is not an object".to_string());
    };
    match top.get("schema") {
        Some(Value::Str(s)) if s == SCHEMA => {}
        Some(Value::Str(s)) => return Err(format!("unknown schema {s:?}")),
        _ => return Err("missing schema tag".to_string()),
    }
    for key in ["summary", "structural", "routes", "reach", "quarantined_before", "quarantined_after"]
    {
        if !top.contains_key(key) {
            return Err(format!("missing section {key:?}"));
        }
    }
    let Some(Value::Obj(summary)) = top.get("summary") else {
        return Err("summary is not an object".to_string());
    };
    let Some(Value::Obj(reach)) = top.get("reach") else {
        return Err("reach is not an object".to_string());
    };
    let deltas = match reach.get("deltas") {
        Some(Value::Arr(a)) => a.len(),
        _ => return Err("reach.deltas is not an array".to_string()),
    };
    match summary.get("flow_deltas") {
        Some(Value::Num(n)) if *n as usize == deltas => Ok(()),
        Some(Value::Num(n)) => Err(format!(
            "summary.flow_deltas = {} but reach.deltas has {deltas} entries",
            *n as usize
        )),
        _ => Err("summary.flow_deltas missing".to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_diff_renders_and_validates() {
        let diff = SnapshotDiff::default();
        let text = render_text(&diff);
        assert!(text.contains("no differences"), "{text}");
        let json = render_json(&diff);
        let v = batnet_obs::json::parse(&json).expect("emitted JSON parses");
        validate(&v).expect("emitted JSON validates");
    }
}
