//! # batnet-diff — differential snapshot analysis
//!
//! The workflow Batfish is actually deployed for is validating a
//! *candidate change* against the running network before deployment.
//! This crate compares two snapshots end to end, across all three
//! pipeline layers:
//!
//! 1. **Structural** ([`structural`]) — the VI model, keyed by stable
//!    structure paths with source spans on both sides.
//! 2. **Control plane** ([`routes`]) — per-device RIB/FIB deltas from
//!    the two simulated data planes.
//! 3. **Data plane** ([`reach`]) — symbolic differential reachability:
//!    both forwarding graphs in one shared BDD manager, per-start XOR of
//!    the reachability relations, with a concrete example flow and
//!    before/after traces for every delta.
//!
//! When the first two layers are empty, the forwarding graphs are equal
//! by construction (the graph is a function of devices, FIBs, and the
//! inferred topology — itself a function of the devices), so the
//! symbolic stage is skipped and marked `skipped_equivalent`.
//!
//! Observability: the three stages run under the `diff.configs`,
//! `diff.routes`, and `diff.reach` spans with change-count metrics.

pub mod reach;
pub mod report;
pub mod routes;
pub mod structural;

pub use reach::{FlowDelta, FlowDirection, ReachDiff, ReachInputs};
pub use report::{render_json, render_text, validate, SCHEMA};
pub use routes::{RouteChange, RouteChangeKind, RouteDiff};
pub use structural::{ChangeKind, StructChange, StructuralDiff};

use batnet_config::vi::Device;
use batnet_routing::{simulate, Environment, SimOptions};
use std::collections::BTreeSet;

/// Tuning knobs for a diff run.
#[derive(Clone, Debug)]
pub struct DiffOptions {
    /// Cap on example-flow witnesses in the data-plane layer.
    pub max_flow_deltas: usize,
    /// Cap on start locations actually compared symbolically
    /// (0 = unlimited). Pruned starts do not count.
    pub max_starts: usize,
    /// Cap on the detailed route-change list (totals stay exact).
    pub max_route_changes: usize,
    /// Route-simulation options (shared by both sides).
    pub sim: SimOptions,
}

impl Default for DiffOptions {
    fn default() -> DiffOptions {
        DiffOptions {
            max_flow_deltas: 16,
            max_starts: 0,
            max_route_changes: 200,
            sim: SimOptions::default(),
        }
    }
}

/// A device excluded from the comparison, with its machine-readable
/// quarantine accounting (mirrors `batnet`'s quarantine codes without
/// depending on the facade crate).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct QuarantinedDevice {
    /// Device (or file stem).
    pub device: String,
    /// Pipeline stage ("load", "parse", "route", …).
    pub stage: String,
    /// Stable machine-readable reason code.
    pub code: String,
}

/// One side of a diff: the healthy devices, their environment, and the
/// quarantine accounting for everything that did not make it in.
pub struct DiffSide<'a> {
    /// Healthy parsed devices.
    pub devices: &'a [Device],
    /// External announcements and link state.
    pub env: &'a Environment,
    /// Devices excluded from this side.
    pub quarantined: Vec<QuarantinedDevice>,
}

/// The full three-layer diff of two snapshots.
#[derive(Clone, Default, Debug)]
pub struct SnapshotDiff {
    /// Layer 1: VI-model changes.
    pub structural: StructuralDiff,
    /// Layer 2: RIB/FIB deltas.
    pub routes: RouteDiff,
    /// Layer 3: changed reachability.
    pub reach: ReachDiff,
    /// Before-side quarantine accounting (not a difference per se: these
    /// devices were never compared, and the report must say so).
    pub quarantined_before: Vec<QuarantinedDevice>,
    /// After-side quarantine accounting.
    pub quarantined_after: Vec<QuarantinedDevice>,
}

impl SnapshotDiff {
    /// No behavioral or structural differences? Quarantine lists do not
    /// count: a self-diff of a degraded snapshot is still empty.
    pub fn is_empty(&self) -> bool {
        self.structural.is_empty() && self.routes.is_empty() && self.reach.is_empty()
    }

    /// Total change count across the three layers.
    pub fn change_count(&self) -> usize {
        self.structural.change_count() + self.routes.change_count() + self.reach.changed_starts
    }
}

/// [`diff`] under a [`batnet_net::governor::ResourceGovernor`].
///
/// The governor is consulted at the three layer boundaries
/// (`diff.configs`, `diff.routes`, `diff.reach`) and threaded into the
/// route simulations, which are the only unbounded-iteration stages. A
/// tripped budget returns the layers computed so far — structural-only,
/// or structural + routes — with the uncomputed layers named in
/// `abandoned`. Layer 3 already bounds itself via `opts` caps, so its
/// boundary check is the last one taken.
pub fn diff_governed(
    before: &DiffSide<'_>,
    after: &DiffSide<'_>,
    opts: &DiffOptions,
    gov: &batnet_net::governor::ResourceGovernor,
) -> batnet_net::governor::Outcome<SnapshotDiff> {
    use batnet_net::governor::Outcome;
    let partial = |d: SnapshotDiff, abandoned: &[&str], why| Outcome::Partial {
        completed: d,
        abandoned: abandoned.iter().map(|s| s.to_string()).collect(),
        why,
    };
    let mut out = SnapshotDiff {
        quarantined_before: before.quarantined.clone(),
        quarantined_after: after.quarantined.clone(),
        ..SnapshotDiff::default()
    };
    if let Err(why) = gov.check("diff.configs") {
        return partial(out, &["configs", "routes", "reach"], why);
    }
    let span = batnet_obs::Span::enter("diff.configs");
    out.structural = structural::diff_structural(before.devices, after.devices);
    batnet_obs::counter_add("diff.structural.changes", out.structural.change_count() as u64);
    span.close();

    if let Err(why) = gov.check("diff.routes") {
        return partial(out, &["routes", "reach"], why);
    }
    let span = batnet_obs::Span::enter("diff.routes");
    let sim_before = batnet_routing::simulate_governed(before.devices, before.env, &opts.sim, gov);
    let sim_after = batnet_routing::simulate_governed(after.devices, after.env, &opts.sim, gov);
    let (dp_before, dp_after) = (sim_before.value(), sim_after.value());
    out.routes = routes::diff_routes(dp_before, dp_after, opts.max_route_changes);
    batnet_obs::counter_add("diff.routes.changes", out.routes.change_count() as u64);
    span.close();
    // A partial simulation makes the route delta itself suspect: stop at
    // this layer and say so rather than diffing two half-converged RIBs
    // symbolically.
    if let Some(why) = sim_before.why().or(sim_after.why()) {
        return partial(out, &["reach"], why.clone());
    }

    if let Err(why) = gov.check("diff.reach") {
        return partial(out, &["reach"], why);
    }
    let span = batnet_obs::Span::enter("diff.reach");
    out.reach = if out.structural.is_empty() && out.routes.is_empty() {
        ReachDiff {
            skipped_equivalent: true,
            ..ReachDiff::default()
        }
    } else {
        let mut changed: BTreeSet<String> = out.structural.changed_devices();
        changed.extend(out.routes.changed_devices.iter().cloned());
        reach::diff_reach(
            &ReachInputs {
                devices_before: before.devices,
                dp_before,
                devices_after: after.devices,
                dp_after,
                changed_devices: &changed,
            },
            opts,
        )
    };
    span.close();
    Outcome::Complete(out)
}

/// Compares two snapshot sides across all three layers.
pub fn diff(before: &DiffSide<'_>, after: &DiffSide<'_>, opts: &DiffOptions) -> SnapshotDiff {
    // Layer 1: structural.
    let span = batnet_obs::Span::enter("diff.configs");
    let structural = structural::diff_structural(before.devices, after.devices);
    batnet_obs::counter_add("diff.structural.changes", structural.change_count() as u64);
    span.close();

    // Layer 2: control plane (simulate both sides, then merge-join).
    let span = batnet_obs::Span::enter("diff.routes");
    let dp_before = simulate(before.devices, before.env, &opts.sim);
    let dp_after = simulate(after.devices, after.env, &opts.sim);
    let routes = routes::diff_routes(&dp_before, &dp_after, opts.max_route_changes);
    batnet_obs::counter_add("diff.routes.changes", routes.change_count() as u64);
    span.close();

    // Layer 3: data plane. Equivalence fast path: identical devices and
    // identical RIBs/FIBs make the graphs equal by construction.
    let span = batnet_obs::Span::enter("diff.reach");
    let reach = if structural.is_empty() && routes.is_empty() {
        ReachDiff {
            skipped_equivalent: true,
            ..ReachDiff::default()
        }
    } else {
        let mut changed: BTreeSet<String> = structural.changed_devices();
        changed.extend(routes.changed_devices.iter().cloned());
        reach::diff_reach(
            &ReachInputs {
                devices_before: before.devices,
                dp_before: &dp_before,
                devices_after: after.devices,
                dp_after: &dp_after,
                changed_devices: &changed,
            },
            opts,
        )
    };
    span.close();

    SnapshotDiff {
        structural,
        routes,
        reach,
        quarantined_before: before.quarantined.clone(),
        quarantined_after: after.quarantined.clone(),
    }
}
