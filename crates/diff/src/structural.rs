//! Layer 1: structural diff of the vendor-independent model.
//!
//! Every change is keyed by the same stable structure paths the lint
//! fingerprints use (`interface X`, `acl X`, `route-map X`,
//! `bgp neighbor A.B.C.D`, …), so a behavioral delta downstream can be
//! traced back to the configuration structure that moved. Where the VI
//! model records where a structure was defined, both sides' spans ride
//! along as witnesses.

use batnet_config::vi::{
    Acl, BgpNeighbor, BgpProcess, Device, Interface, NextHop, OspfProcess, RouteMap, SourceSpan,
    StaticRoute, Zone, ZonePolicy,
};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// How a structure changed between the two snapshots.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ChangeKind {
    /// Present only in the after snapshot.
    Added,
    /// Present only in the before snapshot.
    Removed,
    /// Present in both, not equal.
    Modified,
}

impl fmt::Display for ChangeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ChangeKind::Added => "added",
            ChangeKind::Removed => "removed",
            ChangeKind::Modified => "modified",
        };
        write!(f, "{s}")
    }
}

/// One structural change, keyed by a stable structure path.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct StructChange {
    /// Device the structure lives on.
    pub device: String,
    /// Stable structure path (lint-fingerprint style), e.g. `acl SERVERS`.
    pub path: String,
    /// Added / removed / modified.
    pub kind: ChangeKind,
    /// Human-readable field-level summary of what moved.
    pub detail: String,
    /// Where the structure was defined in the before config, when known.
    pub before_src: Option<SourceSpan>,
    /// Where the structure was defined in the after config, when known.
    pub after_src: Option<SourceSpan>,
}

/// The structural layer of a snapshot diff.
#[derive(Clone, Default, Debug)]
pub struct StructuralDiff {
    /// Devices present only in the after snapshot.
    pub devices_added: Vec<String>,
    /// Devices present only in the before snapshot.
    pub devices_removed: Vec<String>,
    /// Per-structure changes on devices present in both.
    pub changes: Vec<StructChange>,
}

impl StructuralDiff {
    /// No device-set changes and no structure changes?
    pub fn is_empty(&self) -> bool {
        self.devices_added.is_empty() && self.devices_removed.is_empty() && self.changes.is_empty()
    }

    /// Total change count (device adds/removes count as one each).
    pub fn change_count(&self) -> usize {
        self.devices_added.len() + self.devices_removed.len() + self.changes.len()
    }

    /// Every device touched by a structural change (including adds and
    /// removes) — the seed set for data-plane cone pruning.
    pub fn changed_devices(&self) -> BTreeSet<String> {
        let mut set: BTreeSet<String> = self.changes.iter().map(|c| c.device.clone()).collect();
        set.extend(self.devices_added.iter().cloned());
        set.extend(self.devices_removed.iter().cloned());
        set
    }
}

/// Diffs two device lists structure by structure.
pub fn diff_structural(before: &[Device], after: &[Device]) -> StructuralDiff {
    let b: BTreeMap<&str, &Device> = before.iter().map(|d| (d.name.as_str(), d)).collect();
    let a: BTreeMap<&str, &Device> = after.iter().map(|d| (d.name.as_str(), d)).collect();
    let mut diff = StructuralDiff::default();
    for name in a.keys() {
        if !b.contains_key(name) {
            diff.devices_added.push((*name).to_string());
        }
    }
    for name in b.keys() {
        if !a.contains_key(name) {
            diff.devices_removed.push((*name).to_string());
        }
    }
    for (name, db) in &b {
        if let Some(da) = a.get(name) {
            diff_device(db, da, &mut diff.changes);
        }
    }
    diff.changes.sort_by(|x, y| {
        (x.device.as_str(), x.path.as_str()).cmp(&(y.device.as_str(), y.path.as_str()))
    });
    diff
}

/// A span worth reporting: known locations only.
fn span(s: &SourceSpan) -> Option<SourceSpan> {
    if s.is_known() {
        Some(s.clone())
    } else {
        None
    }
}

fn push(
    changes: &mut Vec<StructChange>,
    device: &str,
    path: String,
    kind: ChangeKind,
    detail: String,
    before_src: Option<SourceSpan>,
    after_src: Option<SourceSpan>,
) {
    changes.push(StructChange {
        device: device.to_string(),
        path,
        kind,
        detail,
        before_src,
        after_src,
    });
}

/// Generic keyed-map comparison: added / removed / modified entries.
/// `same` is the equivalence test — span-insensitive for structures that
/// record where they were defined, so an unrelated edit shifting line
/// numbers does not read as a semantic change.
fn diff_map<T>(
    changes: &mut Vec<StructChange>,
    device: &str,
    prefix: &str,
    before: &BTreeMap<String, T>,
    after: &BTreeMap<String, T>,
    same: impl Fn(&T, &T) -> bool,
    describe: impl Fn(&T) -> String,
    modified: impl Fn(&T, &T) -> String,
    src_of: impl Fn(&T) -> Option<SourceSpan>,
) {
    for (k, vb) in before {
        match after.get(k) {
            None => push(
                changes,
                device,
                format!("{prefix} {k}"),
                ChangeKind::Removed,
                describe(vb),
                src_of(vb),
                None,
            ),
            Some(va) if !same(vb, va) => push(
                changes,
                device,
                format!("{prefix} {k}"),
                ChangeKind::Modified,
                modified(vb, va),
                src_of(vb),
                src_of(va),
            ),
            Some(_) => {}
        }
    }
    for (k, va) in after {
        if !before.contains_key(k) {
            push(
                changes,
                device,
                format!("{prefix} {k}"),
                ChangeKind::Added,
                describe(va),
                None,
                src_of(va),
            );
        }
    }
}

fn fmt_opt<T: fmt::Display>(v: &Option<T>) -> String {
    match v {
        Some(x) => x.to_string(),
        None => "none".to_string(),
    }
}

/// Appends `field: before -> after` when the two values differ.
fn field_change<T: PartialEq + fmt::Display>(out: &mut Vec<String>, name: &str, b: &T, a: &T) {
    if b != a {
        out.push(format!("{name}: {b} -> {a}"));
    }
}

fn describe_interface(i: &Interface) -> String {
    let mut parts = vec![match i.address {
        Some((ip, len)) => format!("{ip}/{len}"),
        None => "unaddressed".to_string(),
    }];
    if !i.enabled {
        parts.push("shutdown".to_string());
    }
    if let Some(acl) = &i.acl_in {
        parts.push(format!("acl-in {acl}"));
    }
    if let Some(acl) = &i.acl_out {
        parts.push(format!("acl-out {acl}"));
    }
    parts.join(", ")
}

fn modified_interface(b: &Interface, a: &Interface) -> String {
    let addr = |i: &Interface| match i.address {
        Some((ip, len)) => format!("{ip}/{len}"),
        None => "none".to_string(),
    };
    let mut out = Vec::new();
    field_change(&mut out, "address", &addr(b), &addr(a));
    field_change(&mut out, "enabled", &b.enabled, &a.enabled);
    field_change(&mut out, "acl-in", &fmt_opt(&b.acl_in), &fmt_opt(&a.acl_in));
    field_change(&mut out, "acl-out", &fmt_opt(&b.acl_out), &fmt_opt(&a.acl_out));
    field_change(&mut out, "ospf-cost", &fmt_opt(&b.ospf_cost), &fmt_opt(&a.ospf_cost));
    field_change(&mut out, "ospf-area", &fmt_opt(&b.ospf_area), &fmt_opt(&a.ospf_area));
    field_change(&mut out, "ospf-passive", &b.ospf_passive, &a.ospf_passive);
    field_change(&mut out, "zone", &fmt_opt(&b.zone), &fmt_opt(&a.zone));
    field_change(&mut out, "mtu", &b.mtu, &a.mtu);
    if b.secondary_addresses != a.secondary_addresses {
        out.push(format!(
            "secondaries: {} -> {}",
            b.secondary_addresses.len(),
            a.secondary_addresses.len()
        ));
    }
    field_change(
        &mut out,
        "description",
        &fmt_opt(&b.description),
        &fmt_opt(&a.description),
    );
    if out.is_empty() {
        "changed".to_string()
    } else {
        out.join("; ")
    }
}

/// ACL equivalence ignoring the definition span.
fn same_acl(b: &Acl, a: &Acl) -> bool {
    b.name == a.name && b.lines == a.lines
}

/// Route-map equivalence ignoring the definition span.
fn same_route_map(b: &RouteMap, a: &RouteMap) -> bool {
    b.name == a.name && b.clauses == a.clauses
}

/// BGP-neighbor equivalence ignoring the definition span.
fn same_bgp_neighbor(b: &BgpNeighbor, a: &BgpNeighbor) -> bool {
    b.peer_ip == a.peer_ip
        && b.remote_as == a.remote_as
        && b.import_policy == a.import_policy
        && b.export_policy == a.export_policy
        && b.next_hop_self == a.next_hop_self
        && b.send_community == a.send_community
        && b.description == a.description
}

/// Line-level ACL delta: `+`/`-` prefixed config text, capped.
fn modified_acl(b: &Acl, a: &Acl) -> String {
    const MAX_LINES: usize = 8;
    let btexts: Vec<&str> = b.lines.iter().map(|l| l.text.trim()).collect();
    let atexts: Vec<&str> = a.lines.iter().map(|l| l.text.trim()).collect();
    let mut out = Vec::new();
    for t in &atexts {
        if !btexts.contains(t) {
            out.push(format!("+ {t}"));
        }
    }
    for t in &btexts {
        if !atexts.contains(t) {
            out.push(format!("- {t}"));
        }
    }
    if out.is_empty() {
        // Same line texts, different order or metadata.
        return format!("lines reordered ({} -> {})", b.lines.len(), a.lines.len());
    }
    let extra = out.len().saturating_sub(MAX_LINES);
    out.truncate(MAX_LINES);
    if extra > 0 {
        out.push(format!("(+{extra} more)"));
    }
    out.join("; ")
}

fn describe_acl(a: &Acl) -> String {
    format!("{} lines", a.lines.len())
}

fn modified_route_map(b: &RouteMap, a: &RouteMap) -> String {
    let bseqs: BTreeSet<u32> = b.clauses.iter().map(|c| c.seq).collect();
    let aseqs: BTreeSet<u32> = a.clauses.iter().map(|c| c.seq).collect();
    let mut out = Vec::new();
    for seq in aseqs.difference(&bseqs) {
        out.push(format!("+ clause {seq}"));
    }
    for seq in bseqs.difference(&aseqs) {
        out.push(format!("- clause {seq}"));
    }
    for seq in bseqs.intersection(&aseqs) {
        let cb = b.clauses.iter().find(|c| c.seq == *seq);
        let ca = a.clauses.iter().find(|c| c.seq == *seq);
        if cb != ca {
            out.push(format!("~ clause {seq}"));
        }
    }
    if out.is_empty() {
        "changed".to_string()
    } else {
        out.join("; ")
    }
}

fn describe_bgp_neighbor(n: &BgpNeighbor) -> String {
    format!("remote-as {}", n.remote_as)
}

fn modified_bgp_neighbor(b: &BgpNeighbor, a: &BgpNeighbor) -> String {
    let mut out = Vec::new();
    field_change(&mut out, "remote-as", &b.remote_as, &a.remote_as);
    field_change(
        &mut out,
        "import-policy",
        &fmt_opt(&b.import_policy),
        &fmt_opt(&a.import_policy),
    );
    field_change(
        &mut out,
        "export-policy",
        &fmt_opt(&b.export_policy),
        &fmt_opt(&a.export_policy),
    );
    field_change(&mut out, "next-hop-self", &b.next_hop_self, &a.next_hop_self);
    field_change(&mut out, "send-community", &b.send_community, &a.send_community);
    if out.is_empty() {
        "changed".to_string()
    } else {
        out.join("; ")
    }
}

fn static_route_key(r: &StaticRoute) -> String {
    let nh = match r.next_hop {
        NextHop::Ip(ip) => ip.to_string(),
        NextHop::Discard => "discard".to_string(),
    };
    format!("static {} -> {nh}", r.prefix)
}

fn diff_bgp(changes: &mut Vec<StructChange>, device: &str, b: &Option<BgpProcess>, a: &Option<BgpProcess>) {
    match (b, a) {
        (None, None) => {}
        (Some(pb), None) => push(
            changes,
            device,
            "bgp".to_string(),
            ChangeKind::Removed,
            format!("as {}", pb.asn),
            None,
            None,
        ),
        (None, Some(pa)) => push(
            changes,
            device,
            "bgp".to_string(),
            ChangeKind::Added,
            format!("as {}", pa.asn),
            None,
            None,
        ),
        (Some(pb), Some(pa)) => {
            let nb: BTreeMap<String, &BgpNeighbor> =
                pb.neighbors.iter().map(|n| (n.peer_ip.to_string(), n)).collect();
            let na: BTreeMap<String, &BgpNeighbor> =
                pa.neighbors.iter().map(|n| (n.peer_ip.to_string(), n)).collect();
            for (ip, vb) in &nb {
                match na.get(ip) {
                    None => push(
                        changes,
                        device,
                        format!("bgp neighbor {ip}"),
                        ChangeKind::Removed,
                        describe_bgp_neighbor(vb),
                        span(&vb.src),
                        None,
                    ),
                    Some(va) if !same_bgp_neighbor(vb, va) => push(
                        changes,
                        device,
                        format!("bgp neighbor {ip}"),
                        ChangeKind::Modified,
                        modified_bgp_neighbor(vb, va),
                        span(&vb.src),
                        span(&va.src),
                    ),
                    Some(_) => {}
                }
            }
            for (ip, va) in &na {
                if !nb.contains_key(ip) {
                    push(
                        changes,
                        device,
                        format!("bgp neighbor {ip}"),
                        ChangeKind::Added,
                        describe_bgp_neighbor(va),
                        None,
                        span(&va.src),
                    );
                }
            }
            // Process-level attributes.
            let mut out = Vec::new();
            field_change(&mut out, "asn", &pb.asn, &pa.asn);
            field_change(
                &mut out,
                "router-id",
                &fmt_opt(&pb.router_id),
                &fmt_opt(&pa.router_id),
            );
            let bn: BTreeSet<String> = pb.networks.iter().map(|p| p.to_string()).collect();
            let an: BTreeSet<String> = pa.networks.iter().map(|p| p.to_string()).collect();
            for p in an.difference(&bn) {
                out.push(format!("+ network {p}"));
            }
            for p in bn.difference(&an) {
                out.push(format!("- network {p}"));
            }
            field_change(
                &mut out,
                "redistribute-connected",
                &pb.redistribute_connected,
                &pa.redistribute_connected,
            );
            field_change(
                &mut out,
                "redistribute-static",
                &pb.redistribute_static,
                &pa.redistribute_static,
            );
            field_change(
                &mut out,
                "redistribute-ospf",
                &pb.redistribute_ospf,
                &pa.redistribute_ospf,
            );
            if !out.is_empty() {
                push(
                    changes,
                    device,
                    "bgp".to_string(),
                    ChangeKind::Modified,
                    out.join("; "),
                    None,
                    None,
                );
            }
        }
    }
}

fn diff_ospf(changes: &mut Vec<StructChange>, device: &str, b: &Option<OspfProcess>, a: &Option<OspfProcess>) {
    match (b, a) {
        (None, None) => {}
        (Some(_), None) => push(
            changes,
            device,
            "ospf".to_string(),
            ChangeKind::Removed,
            "process removed".to_string(),
            None,
            None,
        ),
        (None, Some(_)) => push(
            changes,
            device,
            "ospf".to_string(),
            ChangeKind::Added,
            "process added".to_string(),
            None,
            None,
        ),
        (Some(pb), Some(pa)) if pb != pa => {
            let mut out = Vec::new();
            field_change(
                &mut out,
                "router-id",
                &fmt_opt(&pb.router_id),
                &fmt_opt(&pa.router_id),
            );
            field_change(
                &mut out,
                "reference-bandwidth",
                &pb.reference_bandwidth_mbps,
                &pa.reference_bandwidth_mbps,
            );
            field_change(
                &mut out,
                "redistribute-connected",
                &pb.redistribute_connected,
                &pa.redistribute_connected,
            );
            field_change(
                &mut out,
                "redistribute-static",
                &pb.redistribute_static,
                &pa.redistribute_static,
            );
            field_change(&mut out, "default-cost", &pb.default_cost, &pa.default_cost);
            push(
                changes,
                device,
                "ospf".to_string(),
                ChangeKind::Modified,
                if out.is_empty() { "changed".to_string() } else { out.join("; ") },
                None,
                None,
            );
        }
        (Some(_), Some(_)) => {}
    }
}

fn describe_zone(z: &Zone) -> String {
    format!("{} interfaces", z.interfaces.len())
}

fn zone_policy_key(p: &ZonePolicy) -> String {
    format!("zone-policy {} -> {}", p.from_zone, p.to_zone)
}

/// Diffs one device present in both snapshots.
fn diff_device(b: &Device, a: &Device, changes: &mut Vec<StructChange>) {
    let dev = b.name.as_str();
    diff_map(
        changes,
        dev,
        "interface",
        &b.interfaces,
        &a.interfaces,
        |x, y| x == y,
        describe_interface,
        modified_interface,
        |_| None,
    );
    diff_map(
        changes,
        dev,
        "acl",
        &b.acls,
        &a.acls,
        same_acl,
        describe_acl,
        modified_acl,
        |acl| span(&acl.src),
    );
    diff_map(
        changes,
        dev,
        "route-map",
        &b.route_maps,
        &a.route_maps,
        same_route_map,
        |rm| format!("{} clauses", rm.clauses.len()),
        modified_route_map,
        |rm| span(&rm.src),
    );
    diff_map(
        changes,
        dev,
        "prefix-list",
        &b.prefix_lists,
        &a.prefix_lists,
        |x, y| x == y,
        |pl| format!("{} entries", pl.entries.len()),
        |pl_b, pl_a| format!("entries: {} -> {}", pl_b.entries.len(), pl_a.entries.len()),
        |_| None,
    );
    diff_map(
        changes,
        dev,
        "community-list",
        &b.community_lists,
        &a.community_lists,
        |x, y| x == y,
        |cl| format!("{} entries", cl.entries.len()),
        |cl_b, cl_a| format!("entries: {} -> {}", cl_b.entries.len(), cl_a.entries.len()),
        |_| None,
    );
    diff_map(
        changes,
        dev,
        "zone",
        &b.zones,
        &a.zones,
        |x, y| x == y,
        describe_zone,
        |zb, za| format!("interfaces: {:?} -> {:?}", zb.interfaces, za.interfaces),
        |_| None,
    );

    // Static routes: set semantics keyed by (prefix, next hop). An
    // admin-distance change shows as remove+add of the same key pair.
    let sb: BTreeMap<String, &StaticRoute> =
        b.static_routes.iter().map(|r| (static_route_key(r), r)).collect();
    let sa: BTreeMap<String, &StaticRoute> =
        a.static_routes.iter().map(|r| (static_route_key(r), r)).collect();
    for (k, rb) in &sb {
        match sa.get(k) {
            None => push(
                changes,
                dev,
                k.clone(),
                ChangeKind::Removed,
                format!("distance {}", rb.admin_distance),
                None,
                None,
            ),
            Some(ra) if ra != rb => push(
                changes,
                dev,
                k.clone(),
                ChangeKind::Modified,
                format!("distance {} -> {}", rb.admin_distance, ra.admin_distance),
                None,
                None,
            ),
            Some(_) => {}
        }
    }
    for (k, ra) in &sa {
        if !sb.contains_key(k) {
            push(
                changes,
                dev,
                k.clone(),
                ChangeKind::Added,
                format!("distance {}", ra.admin_distance),
                None,
                None,
            );
        }
    }

    diff_bgp(changes, dev, &b.bgp, &a.bgp);
    diff_ospf(changes, dev, &b.ospf, &a.ospf);

    // Zone policies: keyed by (from, to) pair.
    let zb: BTreeMap<String, &ZonePolicy> =
        b.zone_policies.iter().map(|p| (zone_policy_key(p), p)).collect();
    let za: BTreeMap<String, &ZonePolicy> =
        a.zone_policies.iter().map(|p| (zone_policy_key(p), p)).collect();
    for (k, pb) in &zb {
        match za.get(k) {
            None => push(
                changes,
                dev,
                k.clone(),
                ChangeKind::Removed,
                format!("acl {}", pb.acl.name),
                span(&pb.acl.src),
                None,
            ),
            Some(pa) if pa.from_zone != pb.from_zone
                || pa.to_zone != pb.to_zone
                || !same_acl(&pb.acl, &pa.acl) =>
            {
                push(
                    changes,
                    dev,
                    k.clone(),
                    ChangeKind::Modified,
                    modified_acl(&pb.acl, &pa.acl),
                    span(&pb.acl.src),
                    span(&pa.acl.src),
                );
            }
            Some(_) => {}
        }
    }
    for (k, pa) in &za {
        if !zb.contains_key(k) {
            push(
                changes,
                dev,
                k.clone(),
                ChangeKind::Added,
                format!("acl {}", pa.acl.name),
                None,
                span(&pa.acl.src),
            );
        }
    }

    // NAT rules: positional (evaluation order is semantic).
    if b.nat_rules != a.nat_rules {
        push(
            changes,
            dev,
            "nat".to_string(),
            ChangeKind::Modified,
            format!("rules: {} -> {}", b.nat_rules.len(), a.nat_rules.len()),
            None,
            None,
        );
    }

    // Device-level scalars.
    let mut out = Vec::new();
    field_change(&mut out, "zone-default-permit", &b.zone_default_permit, &a.zone_default_permit);
    field_change(&mut out, "stateful", &b.stateful, &a.stateful);
    if b.ntp_servers != a.ntp_servers {
        out.push(format!("ntp-servers: {} -> {}", b.ntp_servers.len(), a.ntp_servers.len()));
    }
    if b.dns_servers != a.dns_servers {
        out.push(format!("dns-servers: {} -> {}", b.dns_servers.len(), a.dns_servers.len()));
    }
    if !out.is_empty() {
        push(
            changes,
            dev,
            "device".to_string(),
            ChangeKind::Modified,
            out.join("; "),
            None,
            None,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use batnet_config::parse_device;

    fn dev(name: &str, text: &str) -> Device {
        parse_device(name, text).0
    }

    #[test]
    fn identical_devices_diff_empty() {
        let d = dev("r1", "hostname r1\ninterface e0\n ip address 10.0.0.1/24\n");
        let diff = diff_structural(&[d.clone()], &[d]);
        assert!(diff.is_empty(), "{:?}", diff.changes);
    }

    #[test]
    fn added_acl_line_reported_with_spans() {
        let before = dev(
            "r1",
            "hostname r1\ninterface e0\n ip address 10.0.0.1/24\nip access-list extended A\n 10 permit ip any any\n",
        );
        let after = dev(
            "r1",
            "hostname r1\ninterface e0\n ip address 10.0.0.1/24\nip access-list extended A\n 5 deny tcp any any eq 179\n 10 permit ip any any\n",
        );
        let diff = diff_structural(&[before], &[after]);
        assert_eq!(diff.changes.len(), 1);
        let c = &diff.changes[0];
        assert_eq!(c.path, "acl A");
        assert_eq!(c.kind, ChangeKind::Modified);
        assert!(c.detail.contains("+ 5 deny tcp any any eq 179"), "{}", c.detail);
        assert!(c.before_src.is_some() && c.after_src.is_some());
        assert_eq!(diff.changed_devices().into_iter().collect::<Vec<_>>(), ["r1"]);
    }

    #[test]
    fn device_set_changes_reported() {
        let d1 = dev("r1", "hostname r1\ninterface e0\n ip address 10.0.0.1/24\n");
        let d2 = dev("r2", "hostname r2\ninterface e0\n ip address 10.0.1.1/24\n");
        let diff = diff_structural(&[d1.clone()], &[d1, d2]);
        assert_eq!(diff.devices_added, ["r2"]);
        assert!(diff.devices_removed.is_empty());
        assert!(diff.changes.is_empty());
    }

    #[test]
    fn swap_swaps_added_and_removed() {
        let before = dev("r1", "hostname r1\ninterface e0\n ip address 10.0.0.1/24\n");
        let after = dev(
            "r1",
            "hostname r1\ninterface e0\n ip address 10.0.0.1/24\ninterface e1\n ip address 10.9.0.1/24\n",
        );
        let fwd = diff_structural(std::slice::from_ref(&before), std::slice::from_ref(&after));
        let rev = diff_structural(&[after], &[before]);
        assert_eq!(fwd.changes.len(), 1);
        assert_eq!(rev.changes.len(), 1);
        assert_eq!(fwd.changes[0].kind, ChangeKind::Added);
        assert_eq!(rev.changes[0].kind, ChangeKind::Removed);
        assert_eq!(fwd.changes[0].path, rev.changes[0].path);
    }
}
