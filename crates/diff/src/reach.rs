//! Layer 3: symbolic differential reachability.
//!
//! Both forwarding graphs are encoded in ONE shared BDD manager, so the
//! per-start reachability relations live in the same node space and the
//! delta is a plain XOR (computed as two set differences to keep the
//! lost/gained split). Per changed start location the diff yields a
//! concrete example flow (picked with the §4.4.3-style preferences) and
//! a before/after trace from the concrete tracer.
//!
//! Cost is bounded by *cone pruning*: a start location whose node cannot
//! even topologically reach a changed device — in either graph — is
//! provably unchanged (outside the changed cone, the two graphs are
//! identical by construction), so its fixed point is never computed.

use crate::DiffOptions;
use batnet_bdd::NodeId;
use batnet_config::vi::Device;
use batnet_config::Topology;
use batnet_dataplane::{ForwardingGraph, NodeKind, PacketVars, ReachAnalysis};
use batnet_queries::examples::{pick_flow, Preferences};
use batnet_routing::DataPlane;
use batnet_traceroute::{StartLocation, Trace, Tracer};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Which way a flow's fate changed.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FlowDirection {
    /// Delivered before, not after.
    Lost,
    /// Not delivered before, delivered after.
    Gained,
}

impl fmt::Display for FlowDirection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FlowDirection::Lost => "lost",
            FlowDirection::Gained => "gained",
        };
        write!(f, "{s}")
    }
}

/// One changed-flow witness: a concrete example flow whose delivery fate
/// flipped between the snapshots, with both traces.
#[derive(Clone, Debug)]
pub struct FlowDelta {
    /// Start device.
    pub device: String,
    /// Start (ingress) interface.
    pub iface: String,
    /// Lost or gained.
    pub direction: FlowDirection,
    /// The example flow, rendered.
    pub flow: String,
    /// Dispositions of the before trace, rendered.
    pub before_disposition: String,
    /// Dispositions of the after trace, rendered.
    pub after_disposition: String,
    /// Full before trace (§4.4.3-style annotated paths).
    pub before_trace: String,
    /// Full after trace.
    pub after_trace: String,
}

/// The data-plane layer of a snapshot diff.
#[derive(Clone, Default, Debug)]
pub struct ReachDiff {
    /// Start locations common to both snapshots.
    pub starts_total: usize,
    /// Starts whose fixed point was actually computed (the rest were
    /// pruned as provably unchanged, or dropped by `max_starts`).
    pub starts_compared: usize,
    /// Starts whose five-tuple success set changed.
    pub changed_starts: usize,
    /// Example-flow witnesses (capped; see `truncated`).
    pub deltas: Vec<FlowDelta>,
    /// Witnesses were dropped to honor `max_flow_deltas`.
    pub truncated: bool,
    /// The structural + control-plane layers were both empty, so the
    /// graphs are identical by construction and the symbolic stage was
    /// skipped outright.
    pub skipped_equivalent: bool,
}

impl ReachDiff {
    /// No changed flows?
    pub fn is_empty(&self) -> bool {
        self.changed_starts == 0
    }
}

/// Everything the symbolic stage needs from the two snapshots.
pub struct ReachInputs<'a> {
    /// Before devices (healthy subset).
    pub devices_before: &'a [Device],
    /// Before data plane.
    pub dp_before: &'a DataPlane,
    /// After devices.
    pub devices_after: &'a [Device],
    /// After data plane.
    pub dp_after: &'a DataPlane,
    /// Devices touched by the structural or control-plane layers — the
    /// seed of the changed cone.
    pub changed_devices: &'a BTreeSet<String>,
}

/// Expands the changed-device set with every device adjacent to it in
/// `graph` (cross-device edges carry neighbor-dependent labels, so the
/// frontier devices' subgraphs are not provably identical).
fn expand_adjacent(graph: &ForwardingGraph, changed: &mut BTreeSet<String>) {
    let mut frontier: Vec<String> = Vec::new();
    for e in &graph.edges {
        let (df, dt) = (graph.nodes[e.from].device(), graph.nodes[e.to].device());
        if df != dt {
            if changed.contains(df) && !changed.contains(dt) {
                frontier.push(dt.to_string());
            } else if changed.contains(dt) && !changed.contains(df) {
                frontier.push(df.to_string());
            }
        }
    }
    changed.extend(frontier);
}

/// Node-level reverse BFS: which nodes can (topologically) reach any
/// node of a changed device? Starts outside this set are unchanged.
fn cone_of(graph: &ForwardingGraph, changed: &BTreeSet<String>) -> Vec<bool> {
    let mut in_cone = vec![false; graph.nodes.len()];
    let mut work: Vec<usize> = Vec::new();
    for (i, k) in graph.nodes.iter().enumerate() {
        if changed.contains(k.device()) {
            in_cone[i] = true;
            work.push(i);
        }
    }
    while let Some(n) = work.pop() {
        for &ei in &graph.in_edges[n] {
            let from = graph.edges[ei].from;
            if !in_cone[from] {
                in_cone[from] = true;
                work.push(from);
            }
        }
    }
    in_cone
}

/// `(device, iface) -> node id` for every ingress start location.
fn start_map(graph: &ForwardingGraph) -> BTreeMap<(String, String), usize> {
    let mut map = BTreeMap::new();
    for (i, k) in graph.nodes.iter().enumerate() {
        if let NodeKind::IfaceSrc(d, ifc) = k {
            map.insert((d.clone(), ifc.clone()), i);
        }
    }
    map
}

fn dispositions_of(trace: &Trace) -> String {
    let ds: Vec<String> = trace.dispositions().iter().map(|d| d.to_string()).collect();
    if ds.is_empty() {
        "no path".to_string()
    } else {
        ds.join("; ")
    }
}

/// Runs the symbolic differential-reachability stage.
pub fn diff_reach(inputs: &ReachInputs<'_>, opts: &DiffOptions) -> ReachDiff {
    let topo_b = Topology::infer(inputs.devices_before);
    let topo_a = Topology::infer(inputs.devices_after);
    // One shared manager: both graphs' edge predicates and both sides'
    // reach sets live in the same node space, so set algebra across the
    // snapshots is direct.
    let (mut bdd, vars) = PacketVars::new(0);
    let graph_b =
        ForwardingGraph::build(&mut bdd, &vars, inputs.devices_before, inputs.dp_before, &topo_b);
    let graph_a =
        ForwardingGraph::build(&mut bdd, &vars, inputs.devices_after, inputs.dp_after, &topo_a);

    let mut changed = inputs.changed_devices.clone();
    expand_adjacent(&graph_b, &mut changed);
    expand_adjacent(&graph_a, &mut changed);
    let cone_b = cone_of(&graph_b, &changed);
    let cone_a = cone_of(&graph_a, &changed);

    let starts_b = start_map(&graph_b);
    let starts_a = start_map(&graph_a);
    let common: Vec<(&(String, String), usize, usize)> = starts_b
        .iter()
        .filter_map(|(k, &nb)| starts_a.get(k).map(|&na| (k, nb, na)))
        .collect();

    let mut diff = ReachDiff {
        starts_total: common.len(),
        ..ReachDiff::default()
    };
    let analysis_b = ReachAnalysis::new(&graph_b);
    let analysis_a = ReachAnalysis::new(&graph_a);
    let tracer_b = Tracer::new(inputs.devices_before, inputs.dp_before, &topo_b);
    let tracer_a = Tracer::new(inputs.devices_after, inputs.dp_after, &topo_a);
    let prefs = Preferences::likely(&mut bdd, &vars);

    let mut compared = 0usize;
    for ((dev, ifc), nb, na) in common.into_iter().map(|(k, nb, na)| (k.clone(), nb, na)) {
        // Cone pruning: a start that cannot reach the changed region in
        // either graph is provably unchanged.
        if !cone_b[nb] && !cone_a[na] {
            continue;
        }
        if opts.max_starts != 0 && compared >= opts.max_starts {
            diff.truncated = true;
            break;
        }
        compared += 1;
        let rb = analysis_b.forward(&mut bdd, &[(nb, NodeId::TRUE)]);
        let ra = analysis_a.forward(&mut bdd, &[(na, NodeId::TRUE)]);
        let sb = analysis_b.success_set(&mut bdd, &rb);
        let sa = analysis_a.success_set(&mut bdd, &ra);
        // Project away TCP flags / ICMP codes / zone & waypoint
        // bookkeeping bits before comparing: deltas must be about the
        // five-tuple, not internal encoding state.
        let pb = vars.project_five_tuple(&mut bdd, sb);
        let pa = vars.project_five_tuple(&mut bdd, sa);
        if pb == pa {
            continue;
        }
        diff.changed_starts += 1;
        let lost = bdd.diff(pb, pa);
        let gained = bdd.diff(pa, pb);
        for (set, direction) in [(lost, FlowDirection::Lost), (gained, FlowDirection::Gained)] {
            if set == NodeId::FALSE || diff.deltas.len() >= opts.max_flow_deltas {
                if set != NodeId::FALSE {
                    diff.truncated = true;
                }
                continue;
            }
            let Some(flow) = pick_flow(&mut bdd, &vars, set, &prefs) else {
                continue;
            };
            let start = StartLocation::ingress(&dev, &ifc);
            let before_trace = tracer_b.trace(&start, &flow);
            let after_trace = tracer_a.trace(&start, &flow);
            diff.deltas.push(FlowDelta {
                device: dev.clone(),
                iface: ifc.clone(),
                direction,
                flow: flow.to_string(),
                before_disposition: dispositions_of(&before_trace),
                after_disposition: dispositions_of(&after_trace),
                before_trace: before_trace.to_string(),
                after_trace: after_trace.to_string(),
            });
        }
    }
    diff.starts_compared = compared;
    batnet_obs::gauge_set("diff.reach.starts", diff.starts_total as f64);
    batnet_obs::gauge_set("diff.reach.compared", diff.starts_compared as f64);
    batnet_obs::counter_add("diff.reach.changed-starts", diff.changed_starts as u64);
    diff
}
