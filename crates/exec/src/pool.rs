//! The pool itself: workers, per-worker deques, stealing, and the
//! deterministic map job.
//!
//! Scheduling shape: submitters push tasks round-robin onto per-worker
//! deques; a worker pops its own deque from the front and, when empty,
//! steals from a sibling's back (classic work-stealing ends). A map
//! call submits one *ticket* per worker; tickets claim item indices
//! from a shared atomic cursor, so granularity is per item while queue
//! traffic stays per worker. The joining thread claims items from the
//! same cursor (help-first join), which is what makes nested maps from
//! tasks already running on the pool deadlock-free: the joiner can
//! always finish its own job single-handedly.
//!
//! Memory safety of the borrowed-payload job: tickets are `'static`
//! closures holding an `Arc<Job>`; the job holds raw pointers into the
//! joiner's stack frame. A ticket may touch those pointers only between
//! `running += 1` and `running -= 1`, and only after re-checking that
//! the job is not closed; the joiner closes the job and then waits for
//! `running == 0` before its frame (items, closure, result slots) is
//! allowed to die. Late tickets see `closed` and retire without ever
//! dereferencing the payload.

use std::cell::UnsafeCell;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering::SeqCst};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::Duration;

use batnet_obs::SpanContext;

/// A contained panic from one map item: the payload rendered to a
/// string the same way the quarantine layer renders it.
#[derive(Clone, Debug)]
pub struct TaskPanic {
    /// Human-readable panic payload (`&str`/`String` payloads verbatim).
    pub detail: String,
}

impl TaskPanic {
    fn from_payload(payload: Box<dyn std::any::Any + Send>) -> TaskPanic {
        let detail = if let Some(s) = payload.downcast_ref::<&str>() {
            (*s).to_string()
        } else if let Some(s) = payload.downcast_ref::<String>() {
            s.clone()
        } else {
            "non-string panic payload".to_string()
        };
        TaskPanic { detail }
    }
}

/// Options for one map call.
#[derive(Clone, Copy, Default)]
pub struct MapOptions {
    /// When set, every *worker* that participates opens one span with
    /// this name, parented under the given context, for the duration of
    /// its share of the job — per-worker timelines in traces without a
    /// span per item. The joining thread opens no span (its work is
    /// already covered by the caller's enclosing span), and a 1-thread
    /// pool opens none (inline execution *is* the caller).
    pub span: Option<(&'static str, SpanContext)>,
}

/// A snapshot of pool counters for `/metricsz` and tests.
#[derive(Clone, Copy, Debug)]
pub struct PoolStats {
    /// Worker threads alive.
    pub workers: usize,
    /// Tasks a worker took from a sibling's deque.
    pub steals: u64,
    /// Tasks executed by workers (tickets + spawned tasks).
    pub executed: u64,
    /// Tasks currently queued, not yet picked up.
    pub queue_depth: usize,
    /// Every panic the pool contained: per-item map panics (reported to
    /// the caller as [`TaskPanic`]s) and panics from raw `spawn` tasks
    /// (swallowed by the worker backstop).
    pub panics_contained: u64,
}

type Task = Box<dyn FnOnce() + Send + 'static>;

/// Locks recovering from poisoning: one contained panic on a worker
/// must not poison scheduling for the rest of the process.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

struct Inner {
    queues: Vec<Mutex<VecDeque<Task>>>,
    sleep: Mutex<()>,
    wake: Condvar,
    pending: AtomicUsize,
    steals: AtomicU64,
    executed: AtomicU64,
    panics: AtomicU64,
    shutdown: AtomicBool,
    cursor: AtomicUsize,
}

impl Inner {
    fn push(&self, task: Task) {
        // `pending` goes up before the task is visible so a concurrent
        // pop can never drive it below zero; sleepers re-check it under
        // the sleep mutex, so the increment-then-notify order closes
        // the lost-wakeup window.
        self.pending.fetch_add(1, SeqCst);
        let q = self.cursor.fetch_add(1, SeqCst) % self.queues.len();
        lock(&self.queues[q]).push_back(task);
        let _g = lock(&self.sleep);
        self.wake.notify_all();
    }

    fn grab(&self, me: usize) -> Option<(Task, bool)> {
        if let Some(t) = lock(&self.queues[me]).pop_front() {
            self.pending.fetch_sub(1, SeqCst);
            return Some((t, false));
        }
        let n = self.queues.len();
        for k in 1..n {
            let victim = (me + k) % n;
            if let Some(t) = lock(&self.queues[victim]).pop_back() {
                self.pending.fetch_sub(1, SeqCst);
                return Some((t, true));
            }
        }
        None
    }

    fn worker(self: Arc<Self>, me: usize) {
        loop {
            match self.grab(me) {
                Some((task, stolen)) => {
                    if stolen {
                        self.steals.fetch_add(1, SeqCst);
                    }
                    if catch_unwind(AssertUnwindSafe(task)).is_err() {
                        self.panics.fetch_add(1, SeqCst);
                    }
                    self.executed.fetch_add(1, SeqCst);
                }
                None => {
                    if self.shutdown.load(SeqCst) {
                        return;
                    }
                    let g = lock(&self.sleep);
                    if self.pending.load(SeqCst) == 0 && !self.shutdown.load(SeqCst) {
                        let _ = self.wake.wait_timeout(g, Duration::from_millis(50));
                    }
                }
            }
        }
    }
}

/// Tells workers to exit once the last external `Pool` handle drops
/// (workers hold only the `Inner` Arc, so this fires exactly when no
/// caller can submit work anymore).
struct ShutdownOnDrop {
    inner: Arc<Inner>,
}

impl Drop for ShutdownOnDrop {
    fn drop(&mut self) {
        self.inner.shutdown.store(true, SeqCst);
        let _g = lock(&self.inner.sleep);
        self.inner.wake.notify_all();
    }
}

/// A work-stealing thread pool. Cheap to clone (shared handle); worker
/// threads exit when the last handle drops.
#[derive(Clone)]
pub struct Pool {
    inner: Arc<Inner>,
    _shutdown: Arc<ShutdownOnDrop>,
    threads: usize,
}

impl Pool {
    /// Builds a pool with `threads` workers (`0` is treated as 1). A
    /// 1-thread pool still has one real worker for detached
    /// [`Pool::spawn`] tasks, but runs maps inline on the caller.
    pub fn new(threads: usize) -> Pool {
        let threads = threads.max(1);
        let inner = Arc::new(Inner {
            queues: (0..threads).map(|_| Mutex::new(VecDeque::new())).collect(),
            sleep: Mutex::new(()),
            wake: Condvar::new(),
            pending: AtomicUsize::new(0),
            steals: AtomicU64::new(0),
            executed: AtomicU64::new(0),
            panics: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
            cursor: AtomicUsize::new(0),
        });
        let mut spawned = 0usize;
        for i in 0..threads {
            let inner = Arc::clone(&inner);
            let ok = std::thread::Builder::new()
                .name(format!("exec-worker-{i}"))
                .spawn(move || inner.worker(i))
                .is_ok();
            if ok {
                spawned += 1;
            }
        }
        Pool {
            _shutdown: Arc::new(ShutdownOnDrop {
                inner: Arc::clone(&inner),
            }),
            inner,
            // If the OS refused us threads, degrade to inline execution
            // rather than queueing work nobody will run.
            threads: if spawned == 0 { 1 } else { spawned },
        }
    }

    /// Worker count this pool was built with.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Counter snapshot.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            workers: self.threads,
            steals: self.inner.steals.load(SeqCst),
            executed: self.inner.executed.load(SeqCst),
            queue_depth: self.inner.pending.load(SeqCst),
            panics_contained: self.inner.panics.load(SeqCst),
        }
    }

    /// Runs a detached task on a worker. A panic inside the task is
    /// contained by the worker backstop and counted in
    /// [`PoolStats::panics_contained`].
    pub fn spawn(&self, f: impl FnOnce() + Send + 'static) {
        self.inner.push(Box::new(f));
    }

    /// Maps `f` over `items`, returning results in input order.
    /// Panicking items are contained per task; after every item has
    /// run, the first panic (in input order) is re-raised on the
    /// caller, mirroring `std::thread::scope`.
    pub fn map<T: Sync, R: Send>(&self, items: &[T], f: impl Fn(&T) -> R + Sync) -> Vec<R> {
        self.map_opts(items, MapOptions::default(), f)
    }

    /// [`Pool::map`] with explicit [`MapOptions`] (worker spans).
    pub fn map_opts<T: Sync, R: Send>(
        &self,
        items: &[T],
        opts: MapOptions,
        f: impl Fn(&T) -> R + Sync,
    ) -> Vec<R> {
        let mut out = Vec::with_capacity(items.len());
        for r in self.try_map(items, opts, f) {
            match r {
                Ok(v) => out.push(v),
                // A re-raise of the already-contained panic, payload
                // preserved — not a fresh panic site.
                Err(p) => std::panic::resume_unwind(Box::new(p.detail)),
            }
        }
        out
    }

    /// Like [`Pool::map`] but panics stay contained: each slot is
    /// `Ok(result)` or `Err(TaskPanic)` for that item alone. This is
    /// the quarantine-friendly entry point.
    pub fn try_map<T: Sync, R: Send>(
        &self,
        items: &[T],
        opts: MapOptions,
        f: impl Fn(&T) -> R + Sync,
    ) -> Vec<Result<R, TaskPanic>> {
        // The sequential path, by construction: one worker (or nothing
        // to share) means inline execution on the caller, no tickets,
        // no extra spans — byte-identical to the pre-pool engine.
        if self.threads == 1 || items.len() <= 1 {
            return items
                .iter()
                .map(|it| {
                    catch_unwind(AssertUnwindSafe(|| f(it)))
                        .map_err(TaskPanic::from_payload)
                        .inspect_err(|_| {
                            self.inner.panics.fetch_add(1, SeqCst);
                        })
                })
                .collect();
        }
        self.map_tickets(items, opts, f)
    }

    fn map_tickets<T: Sync, R: Send, F: Fn(&T) -> R + Sync>(
        &self,
        items: &[T],
        opts: MapOptions,
        f: F,
    ) -> Vec<Result<R, TaskPanic>> {
        let total = items.len();
        let slots: Vec<Slot<R>> = (0..total).map(|_| Slot(UnsafeCell::new(None))).collect();
        let payload: Payload<T, R, F> = Payload {
            items: items.as_ptr(),
            f: &f,
            slots: slots.as_ptr(),
            span: opts.span,
        };
        let job = Arc::new(Job {
            closed: AtomicBool::new(false),
            running: AtomicUsize::new(0),
            next: AtomicUsize::new(0),
            done: AtomicUsize::new(0),
            panics: AtomicU64::new(0),
            total,
            payload: (&payload as *const Payload<T, R, F>).cast(),
            run: run_items::<T, R, F>,
            lock: Mutex::new(()),
            cv: Condvar::new(),
        });
        let tickets = self.threads.min(total);
        for _ in 0..tickets {
            let job = Arc::clone(&job);
            self.inner.push(Box::new(move || job.ticket()));
        }
        // Help-first join: claim items from the same cursor as the
        // workers. The joiner opens no span of its own — the caller's
        // enclosing span already covers this thread's share.
        // SAFETY: the payload outlives this call; we are on the owning
        // frame.
        unsafe { claim_items::<T, R, _>(&payload, &job, false) };
        // All items are claimed; refuse late tickets the payload, then
        // wait for claimed items to finish and running tickets to
        // retire before the payload's frame may die.
        job.closed.store(true, SeqCst);
        {
            let mut g = lock(&job.lock);
            while job.done.load(SeqCst) < total || job.running.load(SeqCst) != 0 {
                let (g2, _) = job
                    .cv
                    .wait_timeout(g, Duration::from_millis(50))
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                g = g2;
            }
        }
        // Fold the job's contained-panic count into the pool's books
        // once, after every claimant has retired.
        let contained = job.panics.load(SeqCst);
        if contained > 0 {
            self.inner.panics.fetch_add(contained, SeqCst);
        }
        slots
            .into_iter()
            .map(|s| {
                s.0.into_inner().unwrap_or_else(|| {
                    Err(TaskPanic {
                        detail: "map slot lost (pool bug)".to_string(),
                    })
                })
            })
            .collect()
    }
}

/// One result slot, written by exactly one claimant (the atomic item
/// cursor hands each index out once).
struct Slot<R>(UnsafeCell<Option<Result<R, TaskPanic>>>);

// SAFETY: distinct indices are written by distinct claimants with no
// aliasing; the joiner reads only after `done == total && running == 0`.
unsafe impl<R: Send> Sync for Slot<R> {}

struct Payload<T, R, F> {
    items: *const T,
    f: *const F,
    slots: *const Slot<R>,
    span: Option<(&'static str, SpanContext)>,
}

struct Job {
    closed: AtomicBool,
    running: AtomicUsize,
    next: AtomicUsize,
    done: AtomicUsize,
    /// Items whose closure panicked (folded into the pool's
    /// `panics_contained` by the joiner once the job is over).
    panics: AtomicU64,
    total: usize,
    payload: *const (),
    run: unsafe fn(*const (), &Job),
    lock: Mutex<()>,
    cv: Condvar,
}

// SAFETY: the raw payload pointer is only dereferenced under the
// running/closed protocol documented on the module; all other fields
// are Sync primitives.
unsafe impl Send for Job {}
unsafe impl Sync for Job {}

impl Job {
    fn ticket(&self) {
        if self.closed.load(SeqCst) {
            return;
        }
        self.running.fetch_add(1, SeqCst);
        // Re-check after registering: the joiner orders `closed = true`
        // strictly before its running == 0 check, so either we see
        // `closed` here and back out, or the joiner sees our increment
        // and waits for us.
        if self.closed.load(SeqCst) {
            self.retire();
            return;
        }
        // SAFETY: running was registered above and the job is open, so
        // the joiner keeps the payload frame alive until we retire.
        unsafe { (self.run)(self.payload, self) };
        self.retire();
    }

    fn retire(&self) {
        let _g = lock(&self.lock);
        self.running.fetch_sub(1, SeqCst);
        self.cv.notify_all();
    }

    fn mark_done(&self) {
        if self.done.fetch_add(1, SeqCst) + 1 == self.total {
            let _g = lock(&self.lock);
            self.cv.notify_all();
        }
    }
}

/// Monomorphized ticket body: recover the typed payload and claim items.
///
/// # Safety
/// `payload` must point at a live `Payload<T, R, F>` (guaranteed by the
/// job's running/closed protocol).
unsafe fn run_items<T: Sync, R: Send, F: Fn(&T) -> R + Sync>(payload: *const (), job: &Job) {
    let payload = &*payload.cast::<Payload<T, R, F>>();
    claim_items::<T, R, F>(payload, job, true);
}

/// The shared claim loop for workers (`as_worker`) and the joiner.
///
/// # Safety
/// Caller guarantees `payload` outlives the loop (workers via the
/// running protocol, the joiner by owning the frame).
unsafe fn claim_items<T: Sync, R: Send, F: Fn(&T) -> R + Sync>(
    payload: &Payload<T, R, F>,
    job: &Job,
    as_worker: bool,
) {
    let mut span = None;
    let f = &*payload.f;
    loop {
        let i = job.next.fetch_add(1, SeqCst);
        if i >= job.total {
            break;
        }
        if as_worker && span.is_none() {
            if let Some((name, ctx)) = payload.span {
                span = Some(batnet_obs::Span::enter_with_parent(name, ctx));
            }
        }
        let item = &*payload.items.add(i);
        let out = catch_unwind(AssertUnwindSafe(|| f(item))).map_err(TaskPanic::from_payload);
        if out.is_err() {
            job.panics.fetch_add(1, SeqCst);
        }
        *(*payload.slots.add(i)).0.get() = Some(out);
        job.mark_done();
    }
    drop(span);
}
