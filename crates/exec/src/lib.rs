//! `batnet-exec`: the in-tree work-stealing execution subsystem.
//!
//! A zero-dependency thread pool over `std::thread` with hand-rolled
//! per-worker deques (`Mutex`/`Condvar` — no lock-free crates), built
//! for one job: letting the analysis pipeline saturate every core
//! **without changing a single output byte**. The contract every caller
//! leans on:
//!
//! - **Deterministic merge.** [`Pool::map`]/[`Pool::try_map`] return
//!   results in input order, written into pre-sized slots by whichever
//!   worker claims each index. Scheduling order never leaks into
//!   results.
//! - **Sequential-by-construction at one thread.** A 1-thread pool runs
//!   `map` inline on the calling thread — literally the sequential code
//!   path — so "parallel at `--threads 1`" and "the old engine" are the
//!   same program, not two programs that happen to agree.
//! - **Panic containment per task.** A panicking item becomes an
//!   [`Err(TaskPanic)`](TaskPanic) in that item's slot ([`Pool::try_map`])
//!   or a deferred re-panic after every other item finished
//!   ([`Pool::map`]); a worker thread never dies and the run is never
//!   torn down by one poisoned device.
//! - **Help-first join.** The thread that submits a map also executes
//!   items from its own job while waiting, so a handler already running
//!   *on* the pool can submit nested maps without deadlocking even when
//!   every worker is busy.
//!
//! Workers register with `batnet_obs` implicitly (per-thread telemetry
//! shards are created on first use) and parent their spans under the
//! submitting stage via [`batnet_obs::SpanContext`], so per-worker
//! timelines show up in Chrome traces and the sampling profiler sees
//! every worker.

mod pool;

pub use pool::{MapOptions, Pool, PoolStats, TaskPanic};

use std::cell::RefCell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

static GLOBAL: OnceLock<Pool> = OnceLock::new();
static REQUESTED: AtomicUsize = AtomicUsize::new(0);

/// The number of workers a `0`/unspecified thread request resolves to:
/// every core the OS reports.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Requests `threads` workers for the process-global pool (`0` = all
/// cores). Must be called before the first [`global`] use to take
/// effect; returns `false` when the global pool was already built with
/// a different size (the request is recorded but ignored).
pub fn configure_threads(threads: usize) -> bool {
    let want = if threads == 0 { default_threads() } else { threads };
    REQUESTED.store(want, Ordering::SeqCst);
    match GLOBAL.get() {
        Some(p) => p.threads() == want,
        None => true,
    }
}

/// The process-global pool, built on first use from the last
/// [`configure_threads`] request (default: all cores).
pub fn global() -> &'static Pool {
    GLOBAL.get_or_init(|| {
        let want = REQUESTED.load(Ordering::SeqCst);
        Pool::new(if want == 0 { default_threads() } else { want })
    })
}

thread_local! {
    static OVERRIDE: RefCell<Vec<Pool>> = const { RefCell::new(Vec::new()) };
}

/// Runs `f` with `pool` installed as the calling thread's pool:
/// [`current`] inside `f` (same thread) resolves to it instead of the
/// global pool. Overrides nest and restore on unwind. This is how the
/// determinism tests sweep thread counts inside one process.
pub fn with_pool<R>(pool: &Pool, f: impl FnOnce() -> R) -> R {
    struct Restore;
    impl Drop for Restore {
        fn drop(&mut self) {
            OVERRIDE.with(|o| {
                o.borrow_mut().pop();
            });
        }
    }
    OVERRIDE.with(|o| o.borrow_mut().push(pool.clone()));
    let _restore = Restore;
    f()
}

/// The pool the calling thread should use: the innermost [`with_pool`]
/// override, else the process-global pool. Cheap (an `Arc` clone).
pub fn current() -> Pool {
    OVERRIDE
        .with(|o| o.borrow().last().cloned())
        .unwrap_or_else(|| global().clone())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_input_order_across_thread_counts() {
        let items: Vec<u64> = (0..57).collect();
        let expect: Vec<u64> = items.iter().map(|x| x * 3 + 1).collect();
        for threads in [1, 2, 4, 7] {
            let pool = Pool::new(threads);
            let got = pool.map(&items, |x| x * 3 + 1);
            assert_eq!(got, expect, "threads={threads}");
        }
    }

    #[test]
    fn try_map_contains_panics_per_item() {
        let pool = Pool::new(4);
        let items: Vec<u32> = (0..16).collect();
        let out = pool.try_map(&items, MapOptions::default(), |&x| {
            assert!(x != 7, "poisoned item 7");
            x * 2
        });
        for (i, r) in out.iter().enumerate() {
            if i == 7 {
                let e = r.as_ref().err().expect("item 7 panicked");
                assert!(e.detail.contains("poisoned item 7"), "{}", e.detail);
            } else {
                assert_eq!(*r.as_ref().ok().expect("ok"), i as u32 * 2);
            }
        }
        // The pool survives: a fresh map still works and no worker died.
        assert_eq!(pool.map(&items, |&x| x + 1)[15], 16);
    }

    #[test]
    fn map_repanics_after_all_items_finish() {
        let pool = Pool::new(2);
        let items: Vec<u32> = (0..8).collect();
        let hits = std::sync::atomic::AtomicUsize::new(0);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.map(&items, |&x| {
                hits.fetch_add(1, Ordering::SeqCst);
                assert!(x != 3, "boom at 3");
                x
            })
        }));
        assert!(r.is_err());
        // Every item ran even though one panicked (no torn run).
        assert_eq!(hits.load(Ordering::SeqCst), 8);
    }

    #[test]
    fn one_thread_runs_inline_on_the_caller() {
        let pool = Pool::new(1);
        let caller = std::thread::current().id();
        let ids = pool.map(&[0u8, 1, 2], |_| std::thread::current().id());
        assert!(ids.iter().all(|id| *id == caller));
        assert_eq!(pool.stats().steals, 0);
    }

    #[test]
    fn nested_map_from_a_pool_task_completes() {
        let pool = Pool::new(2);
        let inner = pool.clone();
        let (tx, rx) = std::sync::mpsc::channel();
        // Submit enough outer tasks to occupy every worker; each runs a
        // nested map on the same pool. Help-first join must drain them.
        for _ in 0..4 {
            let p = inner.clone();
            let tx = tx.clone();
            pool.spawn(move || {
                let v: Vec<u32> = p.map(&[1u32, 2, 3, 4, 5], |x| x * x);
                let _ = tx.send(v.iter().sum::<u32>());
            });
        }
        drop(tx);
        let sums: Vec<u32> = rx.iter().collect();
        assert_eq!(sums, vec![55, 55, 55, 55]);
    }

    #[test]
    fn with_pool_overrides_current_and_restores() {
        let a = Pool::new(1);
        let b = Pool::new(3);
        assert_eq!(with_pool(&a, || current().threads()), 1);
        let nested = with_pool(&a, || with_pool(&b, || current().threads()));
        assert_eq!(nested, 3);
        assert_eq!(with_pool(&a, || current().threads()), 1);
    }

    #[test]
    fn stats_account_for_work_and_queue_drains() {
        let pool = Pool::new(3);
        let items: Vec<u64> = (0..200).collect();
        let sum: u64 = pool.map(&items, |x| x + 1).into_iter().sum();
        assert_eq!(sum, (1..=200).sum::<u64>());
        let stats = pool.stats();
        assert_eq!(stats.workers, 3);
        assert_eq!(stats.panics_contained, 0);
        // All tickets eventually execute or retire; nothing is left queued.
        for _ in 0..200 {
            if pool.stats().queue_depth == 0 {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        assert_eq!(pool.stats().queue_depth, 0);
    }

    #[test]
    fn spawn_runs_detached_tasks() {
        let pool = Pool::new(2);
        let (tx, rx) = std::sync::mpsc::channel();
        for i in 0..10u32 {
            let tx = tx.clone();
            pool.spawn(move || {
                let _ = tx.send(i);
            });
        }
        drop(tx);
        let mut got: Vec<u32> = rx.iter().collect();
        got.sort_unstable();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn configure_is_sticky_once_global_exists() {
        // The global pool may already exist (test order is arbitrary);
        // all we assert is the documented contract shape.
        let n = global().threads();
        assert!(n >= 1);
        assert_eq!(configure_threads(n), true);
    }
}
