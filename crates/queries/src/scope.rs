//! Default search-space scoping (§4.4.2).
//!
//! *"We limit the search space of starting and end locations (interfaces)
//! to those that face hosts or the external world because inter-router
//! interfaces are commonly not of interest … We identify host-facing
//! interfaces using heuristics based on interface IP address and
//! prefix-length, configured protocols, and whether we have the remote
//! end of the link. We also limit the set of source and destination IPs
//! to those that can likely originate or sink at those interfaces."*

use batnet_config::vi::Device;
use batnet_config::{InterfaceRef, Topology};
use batnet_net::Prefix;

/// A host-facing (or external-facing) interface.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct HostIface {
    /// Device name.
    pub device: String,
    /// Interface name.
    pub interface: String,
    /// The connected subnet hosts live on.
    pub subnet: Prefix,
    /// True when the interface faces the outside world rather than hosts
    /// (uplink shape: tiny subnet, no remote end in the snapshot).
    pub external: bool,
}

/// The scoping heuristics. An active interface is host-facing when:
///
/// * its remote end is not in the snapshot (no inferred L3 neighbor), and
/// * its subnet is big enough to hold hosts (`/29` or shorter — /30, /31
///   and /32 are link or loopback shapes), and
/// * it does not run a routing protocol actively (a passive OSPF subnet
///   is fine — that's the classic host VLAN shape).
///
/// Interfaces failing only the subnet-size test are *external*-facing
/// (uplinks to providers).
pub fn host_facing_interfaces(devices: &[Device], topo: &Topology) -> Vec<HostIface> {
    let mut out = Vec::new();
    for d in devices {
        for iface in d.active_interfaces() {
            let Some(subnet) = iface.connected_prefix() else { continue };
            let has_remote = topo.has_neighbor(&InterfaceRef::new(&d.name, &iface.name));
            if has_remote {
                continue; // inter-router link
            }
            let runs_igp_actively = iface.ospf_area.is_some() && !iface.ospf_passive;
            if runs_igp_actively {
                continue; // expects a router on the other side
            }
            if subnet.len() >= 32 {
                continue; // loopback
            }
            if subnet.len() <= 29 {
                out.push(HostIface {
                    device: d.name.clone(),
                    interface: iface.name.clone(),
                    subnet,
                    external: false,
                });
            } else {
                out.push(HostIface {
                    device: d.name.clone(),
                    interface: iface.name.clone(),
                    subnet,
                    external: true,
                });
            }
        }
    }
    out
}

/// The default source-IP scope for packets entering at a host-facing
/// interface: the hosts on its subnet, minus the router's own address.
/// This silences the spoofed-source class of uninteresting violations
/// (§3 Lesson 4, case (a)).
pub fn scoped_sources(iface: &HostIface) -> Prefix {
    iface.subnet
}

#[cfg(test)]
mod tests {
    use super::*;
    use batnet_config::parse_device;

    #[test]
    fn classification() {
        let devices: Vec<Device> = [
            (
                "r1",
                "hostname r1\n\
                 interface hosts\n ip address 10.1.0.1/24\n ip ospf area 0\n ip ospf passive\n\
                 interface core\n ip address 172.16.0.0/31\n ip ospf area 0\n\
                 interface uplink\n ip address 203.0.113.2/31\n\
                 interface lo0\n ip address 192.168.0.1/32\n",
            ),
            (
                "r2",
                "hostname r2\ninterface core\n ip address 172.16.0.1/31\n ip ospf area 0\nrouter ospf 1\n",
            ),
        ]
        .iter()
        .map(|(n, t)| parse_device(n, t).0)
        .collect();
        let topo = Topology::infer(&devices);
        let found = host_facing_interfaces(&devices, &topo);
        // hosts → host-facing; uplink → external; core (has remote) and
        // lo0 (a /32) excluded; r2's core link excluded.
        assert_eq!(found.len(), 2, "{found:?}");
        let hosts = found.iter().find(|h| h.interface == "hosts").unwrap();
        assert!(!hosts.external);
        assert_eq!(hosts.subnet.to_string(), "10.1.0.0/24");
        let uplink = found.iter().find(|h| h.interface == "uplink").unwrap();
        assert!(uplink.external);
    }

    #[test]
    fn active_ospf_excluded_even_without_neighbor() {
        let devices: Vec<Device> = [(
            "r1",
            "hostname r1\ninterface stub\n ip address 10.1.0.1/24\n ip ospf area 0\n",
        )]
        .iter()
        .map(|(n, t)| parse_device(n, t).0)
        .collect();
        let topo = Topology::infer(&devices);
        assert!(host_facing_interfaces(&devices, &topo).is_empty());
    }
}
