//! Example selection (§4.4.3): pick packets users will recognize.
//!
//! *"Batfish picks examples (positive or negative) carefully to match
//! what is likely for the network … common protocols (e.g., TCP) and
//! applications (e.g., HTTP) are prioritized. BDDs help to select
//! positive and negative examples quickly by intersecting the answer
//! space with preferences constraints (also encoded as BDDs)."*

use batnet_bdd::{Bdd, NodeId};
use batnet_dataplane::vars::Field;
use batnet_dataplane::PacketVars;
use batnet_net::{Flow, PortRange, TcpFlags};

/// The preference ladder, applied greedily in order (each kept only if
/// the candidate set stays non-empty).
pub struct Preferences {
    prefs: Vec<NodeId>,
}

impl Preferences {
    /// The default likelihood preferences: TCP; then HTTPS, HTTP, SSH
    /// destination ports; an ephemeral source port; a SYN-only flag set.
    pub fn likely(bdd: &mut Bdd, vars: &PacketVars) -> Preferences {
        let mut prefs = Vec::new();
        prefs.push(vars.field_value(bdd, Field::Protocol, 6));
        let mut port_pref = NodeId::FALSE;
        for port in [443u64, 80, 22] {
            let p = vars.field_value(bdd, Field::DstPort, port);
            port_pref = bdd.or(port_pref, p);
        }
        prefs.push(port_pref);
        // Specific well-known port, most preferred first.
        for port in [443u64, 80, 22] {
            let p = vars.field_value(bdd, Field::DstPort, port);
            prefs.push(p);
        }
        prefs.push(vars.port_range(bdd, Field::SrcPort, PortRange::new(49152, u16::MAX)));
        // SYN set, ACK clear — a fresh connection attempt.
        let syn = vars.tcp_flag(bdd, 1);
        let ack = vars.tcp_flag(bdd, 4);
        let nack = bdd.not(ack);
        let fresh = bdd.and(syn, nack);
        prefs.push(fresh);
        Preferences { prefs }
    }

    /// Access to the raw preference BDDs (priority order).
    pub fn as_slice(&self) -> &[NodeId] {
        &self.prefs
    }
}

/// Picks a concrete flow from a packet set, steered by preferences.
/// Returns `None` only for the empty set.
pub fn pick_flow(
    bdd: &mut Bdd,
    vars: &PacketVars,
    set: NodeId,
    prefs: &Preferences,
) -> Option<Flow> {
    let cube = bdd.pick_with_prefs(set, prefs.as_slice())?;
    let mut flow = vars.cube_to_flow(&cube);
    // Cosmetic clean-up of don't-care fields: a TCP flow with no flag
    // bits constrained reads better as a SYN.
    if flow.protocol == batnet_net::IpProtocol::Tcp && flow.tcp_flags == TcpFlags::EMPTY {
        let syn = vars.tcp_flag(bdd, 1);
        let fset = vars.flow(bdd, &flow);
        let with_syn = bdd.and(fset, syn);
        // Only if the set actually allows SYN for this 5-tuple.
        let mut candidate = flow;
        candidate.tcp_flags = TcpFlags::SYN;
        let cs = vars.flow(bdd, &candidate);
        if bdd.and(cs, set) != NodeId::FALSE && with_syn != NodeId::FALSE {
            flow = candidate;
        }
    }
    Some(flow)
}

#[cfg(test)]
mod tests {
    use super::*;
    use batnet_net::{HeaderSpace, IpProtocol, Prefix};

    #[test]
    fn preferences_steer_towards_http() {
        let (mut bdd, vars) = PacketVars::new(0);
        // The answer space: anything to 10.0.0.0/8.
        let hs = HeaderSpace::any().dst_prefix("10.0.0.0/8".parse::<Prefix>().unwrap());
        let set = vars.headerspace(&mut bdd, &hs);
        let prefs = Preferences::likely(&mut bdd, &vars);
        let flow = pick_flow(&mut bdd, &vars, set, &prefs).unwrap();
        assert_eq!(flow.protocol, IpProtocol::Tcp);
        assert_eq!(flow.dst_port, 443, "HTTPS preferred");
        assert!(flow.src_port >= 49152, "ephemeral source port");
        assert!(flow.tcp_flags.contains(TcpFlags::SYN));
        assert!(hs.matches(&flow), "example must be inside the set");
    }

    #[test]
    fn constrained_set_overrides_preferences() {
        let (mut bdd, vars) = PacketVars::new(0);
        // Only UDP/53 allowed: preferences must yield, not fail.
        let hs = HeaderSpace::any().protocol(IpProtocol::Udp).dst_port(53);
        let set = vars.headerspace(&mut bdd, &hs);
        let prefs = Preferences::likely(&mut bdd, &vars);
        let flow = pick_flow(&mut bdd, &vars, set, &prefs).unwrap();
        assert_eq!(flow.protocol, IpProtocol::Udp);
        assert_eq!(flow.dst_port, 53);
        assert!(hs.matches(&flow));
    }

    #[test]
    fn empty_set_yields_none() {
        let (mut bdd, vars) = PacketVars::new(0);
        let prefs = Preferences::likely(&mut bdd, &vars);
        assert!(pick_flow(&mut bdd, &vars, NodeId::FALSE, &prefs).is_none());
    }
}
