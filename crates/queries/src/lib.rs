//! # batnet-queries — the usability layer (§4.4)
//!
//! Lesson 4: verification's raw power (first-order formulas, complete
//! header spaces) is unusable without careful packaging. This crate wraps
//! the symbolic engine with the paper's three techniques:
//!
//! * **Specialized queries** (§4.4.1) — "is this service reachable from
//!   its clients" and "is this service blocked" are *separate* queries
//!   with separate defaults, not parameterizations of one generic check.
//! * **Default search-space scoping** (§4.4.2) — start locations default
//!   to host-facing interfaces (heuristics over addressing, prefix
//!   length, and whether the remote end of the link is in the snapshot),
//!   and source IPs default to the subnets that can legitimately
//!   originate there, silencing the spoofed-source class of uninteresting
//!   violations.
//! * **Examples and annotation** (§4.4.3) — every violation comes with a
//!   *negative* example (a packet that fails), a contrasting *positive*
//!   example when one exists, both chosen against likelihood preferences
//!   (TCP before other protocols, well-known destination ports, ephemeral
//!   source ports), and a concrete trace annotated with the routes and
//!   ACL lines on the path.

pub mod examples;
pub mod scope;
pub mod service;

pub use examples::{pick_flow, Preferences};
pub use scope::{host_facing_interfaces, scoped_sources, HostIface};
pub use service::{
    QueryContext,
    service_blocked, service_reachable, waypoint_enforced, QueryReport, ServiceSpec, Violation,
};
