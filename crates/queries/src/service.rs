//! Specialized reachability queries (§4.4.1) with scoped defaults and
//! annotated examples.

use crate::examples::{pick_flow, Preferences};
use crate::scope::{host_facing_interfaces, HostIface};
use batnet_bdd::{Bdd, NodeId};
use batnet_config::vi::Device;
use batnet_config::Topology;
use batnet_dataplane::vars::Field;
use batnet_dataplane::{ForwardingGraph, NodeKind, PacketVars, ReachAnalysis};
use batnet_net::{Flow, IpProtocol, Prefix};
use batnet_routing::DataPlane;
use batnet_traceroute::{StartLocation, Tracer};
use std::fmt;

/// The service being checked.
#[derive(Clone, Debug)]
pub struct ServiceSpec {
    /// Where the service lives.
    pub prefix: Prefix,
    /// Service port.
    pub port: u16,
    /// Protocol (TCP unless stated).
    pub protocol: IpProtocol,
}

impl ServiceSpec {
    /// A TCP service.
    pub fn tcp(prefix: Prefix, port: u16) -> ServiceSpec {
        ServiceSpec {
            prefix,
            port,
            protocol: IpProtocol::Tcp,
        }
    }
}

/// One violation of a query, with the §4.4.3 trimmings.
pub struct Violation {
    /// Where the offending traffic starts.
    pub start: HostIface,
    /// A packet exhibiting the violation.
    pub example: Flow,
    /// A contrasting packet that behaves correctly from the same start,
    /// when one exists.
    pub positive_example: Option<Flow>,
    /// The concrete trace of the violating packet, annotated with routes
    /// and ACL lines (rendered text).
    pub trace: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "from {}[{}]: {}",
            self.start.device, self.start.interface, self.example
        )?;
        if let Some(p) = &self.positive_example {
            writeln!(f, "  contrast (works): {p}")?;
        }
        write!(f, "{}", self.trace)
    }
}

/// The outcome of a query.
pub struct QueryReport {
    /// Query name.
    pub query: &'static str,
    /// Violations found (empty = property holds).
    pub violations: Vec<Violation>,
    /// Number of start locations examined.
    pub starts_checked: usize,
}

impl QueryReport {
    /// Did the property hold everywhere?
    pub fn holds(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Everything a query needs, borrowed together.
pub struct QueryContext<'a> {
    /// The VI devices.
    pub devices: &'a [Device],
    /// The simulated data plane.
    pub dp: &'a DataPlane,
    /// The inferred topology.
    pub topo: &'a Topology,
    /// The BDD manager shared with the graph.
    pub bdd: &'a mut Bdd,
    /// The packet variable layout.
    pub vars: &'a PacketVars,
    /// The dataflow graph.
    pub graph: &'a ForwardingGraph,
}

impl QueryContext<'_> {
    /// The symbolic service traffic: dst in the service prefix, service
    /// port/protocol.
    fn service_traffic(&mut self, service: &ServiceSpec) -> NodeId {
        let dst = self.vars.ip_prefix(self.bdd, Field::DstIp, service.prefix);
        let port = self
            .vars
            .field_value(self.bdd, Field::DstPort, service.port as u64);
        let proto = self
            .vars
            .field_value(self.bdd, Field::Protocol, service.protocol.number() as u64);
        let a = self.bdd.and(dst, port);
        self.bdd.and(a, proto)
    }

    /// The scoped seed set for traffic entering at one host interface:
    /// service traffic with legitimate (on-subnet) sources, bookkeeping
    /// bits initialized.
    fn seed(&mut self, iface: &HostIface, traffic: NodeId) -> NodeId {
        let src = self
            .vars
            .ip_prefix(self.bdd, Field::SrcIp, crate::scope::scoped_sources(iface));
        let init = self.vars.initial_bits(self.bdd);
        let a = self.bdd.and(traffic, src);
        self.bdd.and(a, init)
    }

    /// Success sinks that deliver into the service prefix.
    fn service_sinks(&self, service: &ServiceSpec) -> Vec<usize> {
        self.graph.nodes_where(|k| match k {
            NodeKind::DeliveredToSubnet(d, i) => self
                .devices
                .iter()
                .find(|dev| dev.name == *d)
                .and_then(|dev| dev.interfaces.get(i))
                .and_then(|iface| iface.connected_prefix())
                .is_some_and(|p| p.overlaps(&service.prefix)),
            NodeKind::Accept(d) => self
                .devices
                .iter()
                .find(|dev| dev.name == *d)
                .is_some_and(|dev| {
                    dev.active_interfaces()
                        .filter_map(|i| i.ip())
                        .any(|ip| service.prefix.contains(ip))
                }),
            _ => false,
        })
    }

    fn annotate(&self, start: &HostIface, flow: &Flow) -> String {
        let tracer = Tracer::new(self.devices, self.dp, self.topo);
        let trace = tracer.trace(
            &StartLocation::ingress(start.device.clone(), start.interface.clone()),
            flow,
        );
        trace.to_string()
    }
}

/// "Clients should reach the service": from every (non-external)
/// host-facing interface, *all* scoped service traffic must arrive.
/// Violations report the packets that do not.
pub fn service_reachable(ctx: &mut QueryContext<'_>, service: &ServiceSpec) -> QueryReport {
    let traffic = ctx.service_traffic(service);
    let sinks = ctx.service_sinks(service);
    let starts: Vec<HostIface> = host_facing_interfaces(ctx.devices, ctx.topo)
        .into_iter()
        .filter(|h| !h.external && !h.subnet.overlaps(&service.prefix))
        .collect();
    let prefs = Preferences::likely(ctx.bdd, ctx.vars);
    let analysis = ReachAnalysis::new(ctx.graph);
    let mut violations = Vec::new();
    for start in &starts {
        let Some(src_node) = ctx.graph.node(&NodeKind::IfaceSrc(
            start.device.clone(),
            start.interface.clone(),
        )) else {
            continue;
        };
        let seed = ctx.seed(start, traffic);
        if seed == NodeId::FALSE {
            continue;
        }
        let r = analysis.forward(ctx.bdd, &[(src_node, seed)]);
        let mut delivered = NodeId::FALSE;
        for &s in &sinks {
            delivered = ctx.bdd.or(delivered, r.at(s));
        }
        // Compare at the source: which seeded packets never arrive?
        // (Delivered sets are post-transform; here the service traffic's
        // 5-tuple is what matters and NAT towards an internal service is
        // out of the query's default scope.)
        let arrived_src = backproject(ctx, &analysis, src_node, &sinks, seed);
        let failed = ctx.bdd.diff(seed, arrived_src);
        if failed != NodeId::FALSE {
            let example = pick_flow(ctx.bdd, ctx.vars, failed, &prefs).expect("non-empty");
            let positive = if arrived_src != NodeId::FALSE {
                pick_flow(ctx.bdd, ctx.vars, arrived_src, &prefs)
            } else {
                None
            };
            let trace = ctx.annotate(start, &example);
            violations.push(Violation {
                start: start.clone(),
                example,
                positive_example: positive,
                trace,
            });
        }
    }
    QueryReport {
        query: "service-reachable",
        violations,
        starts_checked: starts.len(),
    }
}

/// "The service must NOT be reachable" (e.g. from external interfaces):
/// violations are packets that do arrive.
pub fn service_blocked(
    ctx: &mut QueryContext<'_>,
    service: &ServiceSpec,
    from_external_only: bool,
) -> QueryReport {
    let traffic = ctx.service_traffic(service);
    let sinks = ctx.service_sinks(service);
    let starts: Vec<HostIface> = host_facing_interfaces(ctx.devices, ctx.topo)
        .into_iter()
        .filter(|h| (!from_external_only || h.external) && !h.subnet.overlaps(&service.prefix))
        .collect();
    let prefs = Preferences::likely(ctx.bdd, ctx.vars);
    let analysis = ReachAnalysis::new(ctx.graph);
    let mut violations = Vec::new();
    for start in &starts {
        let Some(src_node) = ctx.graph.node(&NodeKind::IfaceSrc(
            start.device.clone(),
            start.interface.clone(),
        )) else {
            continue;
        };
        // A blocked-query's default scope is wider: external attackers
        // spoof, so sources are unconstrained (§4.4.2: defaults differ
        // between reachability- and security-oriented queries).
        let init = ctx.vars.initial_bits(ctx.bdd);
        let seed = ctx.bdd.and(traffic, init);
        let reached_src = backproject(ctx, &analysis, src_node, &sinks, seed);
        if reached_src != NodeId::FALSE {
            let example = pick_flow(ctx.bdd, ctx.vars, reached_src, &prefs).expect("non-empty");
            let trace = ctx.annotate(start, &example);
            // The contrasting positive example for a blocked query is a
            // packet that is correctly dropped.
            let blocked = ctx.bdd.diff(seed, reached_src);
            let positive = if blocked != NodeId::FALSE {
                pick_flow(ctx.bdd, ctx.vars, blocked, &prefs)
            } else {
                None
            };
            violations.push(Violation {
                start: start.clone(),
                example,
                positive_example: positive,
                trace,
            });
        }
    }
    QueryReport {
        query: "service-blocked",
        violations,
        starts_checked: starts.len(),
    }
}

/// Back-projects sink reachability onto one source node: the subset of
/// `seed` (injected at `src_node`) that can reach any of `sinks`. Runs
/// backward propagation from each sink (§4.2.3's backward walk) and
/// intersects at the start.
fn backproject(
    ctx: &mut QueryContext<'_>,
    analysis: &ReachAnalysis<'_>,
    src_node: usize,
    sinks: &[usize],
    seed: NodeId,
) -> NodeId {
    let mut acc = NodeId::FALSE;
    for &s in sinks {
        let b = analysis.backward(ctx.bdd, ctx.vars, s, NodeId::TRUE);
        let hit = ctx.bdd.and(seed, b.reach[src_node]);
        acc = ctx.bdd.or(acc, hit);
    }
    acc
}

/// Waypoint enforcement: all `service` traffic from host-facing
/// interfaces that reaches the service must traverse `waypoint_device`.
/// The graph must have been built with ≥1 waypoint variable and
/// instrumented by the caller via
/// [`ForwardingGraph::instrument_waypoint`] on waypoint bit 0.
pub fn waypoint_enforced(
    ctx: &mut QueryContext<'_>,
    service: &ServiceSpec,
) -> QueryReport {
    let traffic = ctx.service_traffic(service);
    let sinks = ctx.service_sinks(service);
    let starts: Vec<HostIface> = host_facing_interfaces(ctx.devices, ctx.topo)
        .into_iter()
        .filter(|h| !h.subnet.overlaps(&service.prefix))
        .collect();
    let prefs = Preferences::likely(ctx.bdd, ctx.vars);
    let analysis = ReachAnalysis::new(ctx.graph);
    let wp = ctx.bdd.var(ctx.vars.waypoint_var(0));
    let no_wp = ctx.bdd.not(wp);
    let mut violations = Vec::new();
    for start in &starts {
        let Some(src_node) = ctx.graph.node(&NodeKind::IfaceSrc(
            start.device.clone(),
            start.interface.clone(),
        )) else {
            continue;
        };
        let seed = ctx.seed(start, traffic);
        if seed == NodeId::FALSE {
            continue;
        }
        let r = analysis.forward(ctx.bdd, &[(src_node, seed)]);
        let mut arrived_bypassing = NodeId::FALSE;
        for &s in &sinks {
            let at = r.at(s);
            let bypass = ctx.bdd.and(at, no_wp);
            arrived_bypassing = ctx.bdd.or(arrived_bypassing, bypass);
        }
        if arrived_bypassing != NodeId::FALSE {
            let example =
                pick_flow(ctx.bdd, ctx.vars, arrived_bypassing, &prefs).expect("non-empty");
            let trace = ctx.annotate(start, &example);
            violations.push(Violation {
                start: start.clone(),
                example,
                positive_example: None,
                trace,
            });
        }
    }
    QueryReport {
        query: "waypoint-enforced",
        violations,
        starts_checked: starts.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use batnet_config::parse_device;
    use batnet_routing::{simulate, Environment, SimOptions};

    struct World {
        devices: Vec<Device>,
        dp: DataPlane,
        topo: Topology,
        bdd: Bdd,
        vars: PacketVars,
        graph: ForwardingGraph,
    }

    fn build(configs: &[(&str, &str)]) -> World {
        let devices: Vec<Device> = configs.iter().map(|(n, t)| parse_device(n, t).0).collect();
        let topo = Topology::infer(&devices);
        let dp = simulate(&devices, &Environment::none(), &SimOptions::default());
        assert!(dp.convergence.converged);
        let (mut bdd, vars) = PacketVars::new(1);
        let graph = ForwardingGraph::build(&mut bdd, &vars, &devices, &dp, &topo);
        World { devices, dp, topo, bdd, vars, graph }
    }

    /// Clients on r1, servers behind r2; r1's EDGE ACL permits only web
    /// traffic towards the servers.
    fn web_world() -> World {
        build(&[
            (
                "r1",
                "hostname r1\ninterface hosts\n ip address 10.1.0.1/24\n ip access-group EDGE in\ninterface core\n ip address 172.16.0.1/31\nip route 10.2.0.0/24 172.16.0.0\nip access-list extended EDGE\n 10 permit tcp 10.1.0.0 0.0.0.255 10.2.0.0 0.0.0.255 eq 443\n 20 deny ip any any\n",
            ),
            (
                "r2",
                "hostname r2\ninterface core\n ip address 172.16.0.0/31\ninterface servers\n ip address 10.2.0.1/24\nip route 10.1.0.0/24 172.16.0.1\n",
            ),
        ])
    }

    #[test]
    fn reachable_service_passes() {
        let mut w = web_world();
        let mut ctx = QueryContext {
            devices: &w.devices,
            dp: &w.dp,
            topo: &w.topo,
            bdd: &mut w.bdd,
            vars: &w.vars,
            graph: &w.graph,
        };
        let service = ServiceSpec::tcp("10.2.0.0/24".parse().unwrap(), 443);
        let report = service_reachable(&mut ctx, &service);
        assert!(report.holds(), "{}", report.violations[0]);
        assert_eq!(report.starts_checked, 1);
    }

    #[test]
    fn blocked_port_violates_reachability_with_examples() {
        let mut w = web_world();
        let mut ctx = QueryContext {
            devices: &w.devices,
            dp: &w.dp,
            topo: &w.topo,
            bdd: &mut w.bdd,
            vars: &w.vars,
            graph: &w.graph,
        };
        // Port 80 is not in the ACL: reachability must fail with a
        // violation example on port 80 and no positive example (no 80
        // traffic gets through at all).
        let service = ServiceSpec::tcp("10.2.0.0/24".parse().unwrap(), 80);
        let report = service_reachable(&mut ctx, &service);
        assert!(!report.holds());
        let v = &report.violations[0];
        assert_eq!(v.example.dst_port, 80);
        assert!(v.example.src_ip.to_string().starts_with("10.1.0."), "scoped source");
        assert!(v.trace.contains("EDGE"), "trace annotated with the ACL:\n{}", v.trace);
    }

    #[test]
    fn service_blocked_query() {
        let mut w = web_world();
        let mut ctx = QueryContext {
            devices: &w.devices,
            dp: &w.dp,
            topo: &w.topo,
            bdd: &mut w.bdd,
            vars: &w.vars,
            graph: &w.graph,
        };
        // SSH to the servers must be blocked — and it is (ACL).
        let ssh = ServiceSpec::tcp("10.2.0.0/24".parse().unwrap(), 22);
        let report = service_blocked(&mut ctx, &ssh, false);
        assert!(report.holds());
        // HTTPS is open: the blocked query must flag it.
        let https = ServiceSpec::tcp("10.2.0.0/24".parse().unwrap(), 443);
        let report = service_blocked(&mut ctx, &https, false);
        assert!(!report.holds());
        assert_eq!(report.violations[0].example.dst_port, 443);
    }

    #[test]
    fn waypoint_query_detects_bypass() {
        // Two paths from clients to servers: via fw (r3) and via a direct
        // backdoor link r1–r2. The waypoint query must catch the bypass.
        let mut w = build(&[
            (
                "r1",
                "hostname r1\ninterface hosts\n ip address 10.1.0.1/24\ninterface viafw\n ip address 172.16.0.1/31\ninterface direct\n ip address 172.16.1.1/31\nip route 10.2.0.0/24 172.16.0.0\nip route 10.2.0.0/24 172.16.1.0\n",
            ),
            (
                "fw",
                "hostname fw\ninterface a\n ip address 172.16.0.0/31\ninterface b\n ip address 172.16.2.1/31\nip route 10.2.0.0/24 172.16.2.0\nip route 10.1.0.0/24 172.16.0.1\n",
            ),
            (
                "r2",
                "hostname r2\ninterface direct\n ip address 172.16.1.0/31\ninterface fromfw\n ip address 172.16.2.0/31\ninterface servers\n ip address 10.2.0.1/24\nip route 10.1.0.0/24 172.16.1.1\n",
            ),
        ]);
        w.graph.instrument_waypoint(&mut w.bdd, &w.vars, "fw", 0);
        let mut ctx = QueryContext {
            devices: &w.devices,
            dp: &w.dp,
            topo: &w.topo,
            bdd: &mut w.bdd,
            vars: &w.vars,
            graph: &w.graph,
        };
        let service = ServiceSpec::tcp("10.2.0.0/24".parse().unwrap(), 443);
        let report = waypoint_enforced(&mut ctx, &service);
        assert!(!report.holds(), "direct path bypasses the firewall");
    }
}
